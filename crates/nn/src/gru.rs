//! A GRU (gated recurrent unit) forecaster — the main "LSTM-variant" of
//! the paper's Section VI related work (Cho et al. 2014's cell, as used by
//! several of the cited deep workload predictors).
//!
//! ```text
//! z_t = sigma(W_z x_t + U_z h_{t-1} + b_z)      (update gate)
//! r_t = sigma(W_r x_t + U_r h_{t-1} + b_r)      (reset gate)
//! n_t = tanh (W_n x_t + U_n (r_t . h_{t-1}) + b_n)
//! h_t = (1 - z_t) . n_t + z_t . h_{t-1}
//! ```
//!
//! The layer mirrors [`crate::lstm::LstmLayer`]'s interface (flat strided
//! [`GruCache`], allocation-free `forward_into` / `backward_into`, packed
//! `[z, r, n]` gate blocks) and the [`GruForecaster`] mirrors
//! [`crate::forecaster::LstmForecaster`], so the shared
//! [`crate::trainer::Trainer`] drives both — which is what the
//! `ablation_lstm_vs_gru` experiment needs. Unlike the original
//! implementation, the reset-scaled state `r . h_{t-1}` is cached during the
//! forward unroll instead of being recomputed by the backward pass.

use ld_linalg::{vecops, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::activation::{sigmoid, sigmoid_deriv_from_output, tanh_deriv_from_output};
use crate::dense::{Dense, DenseGrads};
use crate::loss::squared_error_grad;
use crate::workspace::{self, Workspace};

/// One GRU layer with gate blocks packed `[z, r, n]`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GruLayer {
    input_dim: usize,
    hidden: usize,
    /// Input weights, `3H x input_dim`.
    w: Matrix,
    /// Recurrent weights, `3H x H`.
    u: Matrix,
    /// Bias, `3H x 1`.
    b: Matrix,
}

/// Gradients for one [`GruLayer`].
#[derive(Debug, Clone)]
pub struct GruGrads {
    /// Input-weight gradient.
    pub dw: Matrix,
    /// Recurrent-weight gradient.
    pub du: Matrix,
    /// Bias gradient.
    pub db: Matrix,
}

impl GruGrads {
    /// Zeroed gradients.
    pub fn zeros(input_dim: usize, hidden: usize) -> Self {
        GruGrads {
            dw: Matrix::zeros(3 * hidden, input_dim),
            du: Matrix::zeros(3 * hidden, hidden),
            db: Matrix::zeros(3 * hidden, 1),
        }
    }

    /// `self += other`.
    pub fn accumulate(&mut self, other: &GruGrads) {
        crate::accumulate_matrix(&mut self.dw, &other.dw);
        crate::accumulate_matrix(&mut self.du, &other.du);
        crate::accumulate_matrix(&mut self.db, &other.db);
    }

    /// Scales all tensors.
    pub fn scale(&mut self, alpha: f64) {
        self.dw.scale(alpha);
        self.du.scale(alpha);
        self.db.scale(alpha);
    }
}

/// Forward-pass record for backprop, stored as flat strided buffers so a
/// reused cache performs zero allocations once grown.
#[derive(Debug, Clone, Default)]
pub struct GruCache {
    steps: usize,
    input_dim: usize,
    hidden: usize,
    /// Inputs, `T x input_dim`, row-major.
    xs: Vec<f64>,
    /// Hidden states, `(T + 1) x H`; row 0 is the zero initial state.
    hs: Vec<f64>,
    /// Post-activation gates per step, `T x 3H`, blocks `[z | r | n]`.
    gates: Vec<f64>,
    /// Reset-scaled state `r_t . h_{t-1}` per step, `T x H` (cached so the
    /// backward pass does not recompute it).
    rh: Vec<f64>,
}

impl GruCache {
    /// Hidden states `h_1..h_T` as one flat `T x H` row-major slice.
    pub fn hidden_sequence(&self) -> &[f64] {
        &self.hs[self.hidden..]
    }

    /// Final hidden state (the zero initial state for an empty cache).
    pub fn last_hidden(&self) -> &[f64] {
        &self.hs[self.steps * self.hidden..]
    }

    /// Unrolled length.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Hidden width `H` of the recorded unroll.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Resizes buffers for a `steps`-long unroll, reusing capacity, and
    /// zeroes the initial-state row.
    fn reset(&mut self, steps: usize, input_dim: usize, hidden: usize) {
        self.steps = steps;
        self.input_dim = input_dim;
        self.hidden = hidden;
        self.xs.resize(steps * input_dim, 0.0);
        self.hs.resize((steps + 1) * hidden, 0.0);
        self.gates.resize(steps * 3 * hidden, 0.0);
        self.rh.resize(steps * hidden, 0.0);
        self.hs[..hidden].fill(0.0);
    }
}

impl GruLayer {
    /// Xavier-initialized layer.
    pub fn new(input_dim: usize, hidden: usize, rng: &mut impl Rng) -> Self {
        assert!(input_dim > 0 && hidden > 0);
        GruLayer {
            input_dim,
            hidden,
            w: Matrix::xavier_uniform(3 * hidden, input_dim, rng),
            u: Matrix::xavier_uniform(3 * hidden, hidden, rng),
            b: Matrix::zeros(3 * hidden, 1),
        }
    }

    /// Hidden width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Input width.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Trainable scalar count.
    pub fn param_count(&self) -> usize {
        3 * self.hidden * (self.input_dim + self.hidden + 1)
    }

    /// Visits `(param, grad)` pairs in fixed order.
    pub fn visit_params<'a>(
        &'a mut self,
        grads: &'a GruGrads,
        f: &mut impl FnMut(&mut Matrix, &Matrix),
    ) {
        f(&mut self.w, &grads.dw);
        f(&mut self.u, &grads.du);
        f(&mut self.b, &grads.db);
    }

    /// Unrolls the layer over a flat `steps x input_dim` row-major input
    /// from zero state, recording into a caller-owned cache.
    /// Allocation-free once the cache has grown to size.
    ///
    /// # Panics
    /// Panics if `xs.len() != steps * input_dim`.
    pub fn forward_into(&self, xs: &[f64], steps: usize, cache: &mut GruCache) {
        let h = self.hidden;
        let i_dim = self.input_dim;
        assert_eq!(xs.len(), steps * i_dim, "GRU input dim mismatch");
        cache.reset(steps, i_dim, h);
        cache.xs.copy_from_slice(xs);
        let GruCache {
            xs: cxs,
            hs,
            gates,
            rh,
            ..
        } = cache;
        for t in 0..steps {
            let x = &cxs[t * i_dim..(t + 1) * i_dim];
            let (hs_head, hs_tail) = hs.split_at_mut((t + 1) * h);
            let h_prev = &hs_head[t * h..];
            let h_t = &mut hs_tail[..h];
            let g_row = &mut gates[t * 3 * h..(t + 1) * 3 * h];
            let rh_row = &mut rh[t * h..(t + 1) * h];

            // Update and reset gates read h_prev directly.
            for k in 0..h {
                g_row[k] = sigmoid(
                    vecops::dot4(self.w.row(k), x)
                        + vecops::dot4(self.u.row(k), h_prev)
                        + self.b[(k, 0)],
                );
                g_row[h + k] = sigmoid(
                    vecops::dot4(self.w.row(h + k), x)
                        + vecops::dot4(self.u.row(h + k), h_prev)
                        + self.b[(h + k, 0)],
                );
            }
            // Candidate uses the reset-scaled state, cached for backward.
            for k in 0..h {
                rh_row[k] = g_row[h + k] * h_prev[k];
            }
            for k in 0..h {
                g_row[2 * h + k] = crate::activation::tanh(
                    vecops::dot4(self.w.row(2 * h + k), x)
                        + vecops::dot4(self.u.row(2 * h + k), rh_row)
                        + self.b[(2 * h + k, 0)],
                );
                h_t[k] = (1.0 - g_row[k]) * g_row[2 * h + k] + g_row[k] * h_prev[k];
            }
        }
    }

    /// Exact backward pass without allocating. `dh_seq` is the flat
    /// `steps x H` gradient flowing into `h_1..h_T` from above. Parameter
    /// gradients are *accumulated* into `grads`; `dxs` (flat
    /// `steps x input_dim`) is overwritten. `dzrn` (`3H`, blocks
    /// `[dz | dr | dn]`), `dh_next`, `dh_prev` and `drh` (`H` each) are
    /// scratch buffers sized on entry.
    ///
    /// # Panics
    /// Panics on mismatched `cache`, `dh_seq` or `dxs` shapes.
    #[allow(clippy::too_many_arguments)]
    pub fn backward_into(
        &self,
        cache: &GruCache,
        dh_seq: &[f64],
        grads: &mut GruGrads,
        dxs: &mut [f64],
        dzrn: &mut Vec<f64>,
        dh_next: &mut Vec<f64>,
        dh_prev: &mut Vec<f64>,
        drh: &mut Vec<f64>,
    ) {
        let h = self.hidden;
        let i_dim = self.input_dim;
        let steps = cache.steps;
        assert_eq!(cache.hidden, h, "cache hidden width mismatch");
        assert_eq!(cache.input_dim, i_dim, "cache input dim mismatch");
        assert_eq!(dh_seq.len(), steps * h, "dh sequence length mismatch");
        assert_eq!(dxs.len(), steps * i_dim, "dxs length mismatch");
        dzrn.clear();
        dzrn.resize(3 * h, 0.0);
        dh_next.clear();
        dh_next.resize(h, 0.0);
        dh_prev.clear();
        dh_prev.resize(h, 0.0);
        drh.clear();
        drh.resize(h, 0.0);

        for t in (0..steps).rev() {
            let g_row = &cache.gates[t * 3 * h..(t + 1) * 3 * h];
            let (z_gate, rest) = g_row.split_at(h);
            let (r_gate, n_gate) = rest.split_at(h);
            // Row `t` of hs is the *previous* state (row 0 is h_0).
            let h_prev = &cache.hs[t * h..(t + 1) * h];
            let x_t = &cache.xs[t * i_dim..(t + 1) * i_dim];
            let rh_row = &cache.rh[t * h..(t + 1) * h];
            let dh_row = &dh_seq[t * h..(t + 1) * h];
            let (dz, rest_d) = dzrn.split_at_mut(h);
            let (dr, dn) = rest_d.split_at_mut(h);

            // h_t = (1-z) n + z h_prev
            // dn_pre, dz_pre; dh_prev gets the direct z-path plus gate paths.
            for k in 0..h {
                let dhk = dh_row[k] + dh_next[k];
                let dzk = dhk * (h_prev[k] - n_gate[k]);
                let dnk = dhk * (1.0 - z_gate[k]);
                dz[k] = dzk * sigmoid_deriv_from_output(z_gate[k]);
                dn[k] = dnk * tanh_deriv_from_output(n_gate[k]);
                dh_prev[k] = dhk * z_gate[k];
            }
            // dL/d(rh) = U_n^T dn_pre
            drh.fill(0.0);
            for (k, &dnk) in dn.iter().enumerate() {
                if dnk == 0.0 {
                    continue;
                }
                vecops::axpy(dnk, self.u.row(2 * h + k), drh);
            }
            // rh = r . h_prev
            for k in 0..h {
                dr[k] = drh[k] * h_prev[k] * sigmoid_deriv_from_output(r_gate[k]);
                dh_prev[k] += drh[k] * r_gate[k];
            }

            // Parameter grads and remaining dh_prev contributions from the
            // z and r pre-activations; the n block's recurrent part uses
            // the cached reset-scaled state.
            let dx = &mut dxs[t * i_dim..(t + 1) * i_dim];
            dx.fill(0.0);
            for k in 0..h {
                // z block (rows 0..h)
                if dz[k] != 0.0 {
                    vecops::axpy(dz[k], x_t, grads.dw.row_mut(k));
                    vecops::axpy(dz[k], h_prev, grads.du.row_mut(k));
                    grads.db[(k, 0)] += dz[k];
                    vecops::axpy(dz[k], self.w.row(k), dx);
                    vecops::axpy(dz[k], self.u.row(k), dh_prev);
                }
                // r block (rows h..2h)
                if dr[k] != 0.0 {
                    vecops::axpy(dr[k], x_t, grads.dw.row_mut(h + k));
                    vecops::axpy(dr[k], h_prev, grads.du.row_mut(h + k));
                    grads.db[(h + k, 0)] += dr[k];
                    vecops::axpy(dr[k], self.w.row(h + k), dx);
                    vecops::axpy(dr[k], self.u.row(h + k), dh_prev);
                }
                // n block (rows 2h..3h); recurrent part uses rh.
                if dn[k] != 0.0 {
                    vecops::axpy(dn[k], x_t, grads.dw.row_mut(2 * h + k));
                    vecops::axpy(dn[k], rh_row, grads.du.row_mut(2 * h + k));
                    grads.db[(2 * h + k, 0)] += dn[k];
                    vecops::axpy(dn[k], self.w.row(2 * h + k), dx);
                }
            }
            std::mem::swap(dh_next, dh_prev);
        }
    }

    /// Convenience wrapper over [`Self::forward_into`] for nested-`Vec`
    /// callers that do not reuse buffers (tests, one-off evaluations).
    ///
    /// # Panics
    /// Panics if any input vector has the wrong dimension.
    pub fn forward(&self, xs: &[Vec<f64>]) -> GruCache {
        let mut flat = Vec::with_capacity(xs.len() * self.input_dim);
        for x in xs {
            assert_eq!(x.len(), self.input_dim, "GRU input dim");
            flat.extend_from_slice(x);
        }
        let mut cache = GruCache::default();
        self.forward_into(&flat, xs.len(), &mut cache);
        cache
    }

    /// Convenience wrapper over [`Self::backward_into`]; `dh_seq[t]` is the
    /// gradient flowing into `h_{t+1}` from above. Returns parameter grads
    /// and input grads.
    pub fn backward(&self, cache: &GruCache, dh_seq: &[Vec<f64>]) -> (GruGrads, Vec<Vec<f64>>) {
        let h = self.hidden;
        assert_eq!(dh_seq.len(), cache.steps(), "dh sequence length mismatch");
        let mut flat = Vec::with_capacity(dh_seq.len() * h);
        for d in dh_seq {
            assert_eq!(d.len(), h, "dh width mismatch");
            flat.extend_from_slice(d);
        }
        let mut grads = GruGrads::zeros(self.input_dim, h);
        let mut dxs_flat = vec![0.0; cache.steps() * self.input_dim];
        let (mut dzrn, mut dh_next, mut dh_prev, mut drh) =
            (Vec::new(), Vec::new(), Vec::new(), Vec::new());
        self.backward_into(
            cache,
            &flat,
            &mut grads,
            &mut dxs_flat,
            &mut dzrn,
            &mut dh_next,
            &mut dh_prev,
            &mut drh,
        );
        let dxs = dxs_flat
            .chunks(self.input_dim)
            .map(<[f64]>::to_vec)
            .collect();
        (grads, dxs)
    }
}

/// Architecture config for [`GruForecaster`] (same knobs as the LSTM's).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GruConfig {
    /// Input window length.
    pub history_len: usize,
    /// Hidden width per layer.
    pub hidden_size: usize,
    /// Stacked layers.
    pub num_layers: usize,
    /// Init seed.
    pub seed: u64,
}

/// Gradients for the whole GRU forecaster.
#[derive(Debug, Clone)]
pub struct GruForecasterGrads {
    /// Per-layer gradients, bottom first.
    pub layers: Vec<GruGrads>,
    /// Head gradients.
    pub head: DenseGrads,
}

impl GruForecasterGrads {
    /// `self += other`.
    pub fn accumulate(&mut self, other: &GruForecasterGrads) {
        for (a, b) in self.layers.iter_mut().zip(&other.layers) {
            a.accumulate(b);
        }
        self.head.accumulate(&other.head);
    }

    /// Scales everything.
    pub fn scale(&mut self, alpha: f64) {
        for g in &mut self.layers {
            g.scale(alpha);
        }
        self.head.scale(alpha);
    }

    /// Global L2 norm.
    pub fn global_norm(&self) -> f64 {
        let mut ss = 0.0;
        for g in &self.layers {
            ss += g.dw.sum_squares() + g.du.sum_squares() + g.db.sum_squares();
        }
        ss += self.head.dw.sum_squares() + self.head.db.sum_squares();
        ss.sqrt()
    }

    /// Global-norm clip. Returns whether clipping actually fired.
    pub fn clip_global_norm(&mut self, max_norm: f64) -> bool {
        let n = self.global_norm();
        if n > max_norm && n > 0.0 {
            self.scale(max_norm / n);
            return true;
        }
        false
    }
}

/// Stacked-GRU scalar forecaster with a linear head.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GruForecaster {
    config: GruConfig,
    layers: Vec<GruLayer>,
    head: Dense,
}

impl GruForecaster {
    /// Fresh forecaster.
    pub fn new(config: GruConfig) -> Self {
        assert!(config.history_len > 0 && config.hidden_size > 0 && config.num_layers > 0);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut layers = Vec::with_capacity(config.num_layers);
        for l in 0..config.num_layers {
            let input_dim = if l == 0 { 1 } else { config.hidden_size };
            layers.push(GruLayer::new(input_dim, config.hidden_size, &mut rng));
        }
        let head = Dense::new(config.hidden_size, 1, &mut rng);
        GruForecaster {
            config,
            layers,
            head,
        }
    }

    /// Architecture config.
    pub fn config(&self) -> &GruConfig {
        &self.config
    }

    /// Trainable scalar count.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum::<usize>() + self.head.param_count()
    }

    /// Allocation-free forward pass through the stack; layer 0 reads the
    /// window directly (`input_dim == 1`).
    fn forward_ws(&self, window: &[f64], ws: &mut Workspace) -> f64 {
        assert_eq!(window.len(), self.config.history_len, "window length");
        let steps = self.config.history_len;
        let n = self.layers.len();
        ws.ensure_gru_caches(n);
        for (idx, layer) in self.layers.iter().enumerate() {
            let (done, rest) = ws.gru_caches.split_at_mut(idx);
            let cache = &mut rest[0];
            if idx == 0 {
                layer.forward_into(window, steps, cache);
            } else {
                layer.forward_into(done[idx - 1].hidden_sequence(), steps, cache);
            }
        }
        let mut out = [0.0f64; 1];
        self.head.forward_into(ws.gru_caches[n - 1].last_hidden(), &mut out);
        out[0]
    }

    /// Point prediction.
    pub fn predict(&self, window: &[f64]) -> f64 {
        workspace::with_thread_workspace(|ws| self.forward_ws(window, ws))
    }

    /// Computes the loss for one sample and *accumulates* its gradients
    /// into `grads`, reusing this thread's workspace.
    ///
    /// # Panics
    /// Panics if `grads` does not match this model's layer structure.
    pub fn sample_grads_into(
        &self,
        window: &[f64],
        target: f64,
        grads: &mut GruForecasterGrads,
    ) -> f64 {
        workspace::with_thread_workspace(|ws| self.sample_grads_ws(window, target, grads, ws))
    }

    /// Per-sample loss and gradients.
    pub fn sample_grads(&self, window: &[f64], target: f64) -> (f64, GruForecasterGrads) {
        let mut grads = self.zero_grads();
        let loss = self.sample_grads_into(window, target, &mut grads);
        (loss, grads)
    }

    fn sample_grads_ws(
        &self,
        window: &[f64],
        target: f64,
        grads: &mut GruForecasterGrads,
        ws: &mut Workspace,
    ) -> f64 {
        let n = self.layers.len();
        assert_eq!(grads.layers.len(), n, "grads layer count mismatch");
        let pred = self.forward_ws(window, ws);
        let loss = (pred - target) * (pred - target);
        let dpred = squared_error_grad(pred, target);

        let steps = self.config.history_len;
        let hidden = self.config.hidden_size;

        ws.head_dh.clear();
        ws.head_dh.resize(hidden, 0.0);
        self.head.backward_into(
            ws.gru_caches[n - 1].last_hidden(),
            &[dpred],
            &mut grads.head,
            &mut ws.head_dh,
        );

        ws.dseq_a.clear();
        ws.dseq_a.resize(steps * hidden, 0.0);
        ws.dseq_a[(steps - 1) * hidden..].copy_from_slice(&ws.head_dh);

        for idx in (0..n).rev() {
            let layer = &self.layers[idx];
            ws.dseq_b.clear();
            ws.dseq_b.resize(steps * layer.input_dim(), 0.0);
            layer.backward_into(
                &ws.gru_caches[idx],
                &ws.dseq_a,
                &mut grads.layers[idx],
                &mut ws.dseq_b,
                &mut ws.dz,
                &mut ws.dh_next,
                &mut ws.dc_next,
                &mut ws.drh,
            );
            std::mem::swap(&mut ws.dseq_a, &mut ws.dseq_b);
        }
        loss
    }

    /// Zeroed gradient container.
    pub fn zero_grads(&self) -> GruForecasterGrads {
        GruForecasterGrads {
            layers: self
                .layers
                .iter()
                .map(|l| GruGrads::zeros(l.input_dim(), l.hidden()))
                .collect(),
            head: DenseGrads::zeros(1, self.config.hidden_size),
        }
    }

    /// Visits `(param, grad)` pairs in fixed order.
    pub fn visit_params(
        &mut self,
        grads: &GruForecasterGrads,
        f: &mut impl FnMut(&mut Matrix, &Matrix),
    ) {
        for (layer, g) in self.layers.iter_mut().zip(&grads.layers) {
            layer.visit_params(g, f);
        }
        self.head.visit_params(&grads.head, f);
    }
}

impl crate::trainer::Trainable for GruForecaster {
    type Grads = GruForecasterGrads;

    fn zero_grads(&self) -> Self::Grads {
        GruForecaster::zero_grads(self)
    }
    fn sample_grads(&self, window: &[f64], target: f64) -> (f64, Self::Grads) {
        GruForecaster::sample_grads(self, window, target)
    }
    fn sample_grads_into(&self, window: &[f64], target: f64, grads: &mut Self::Grads) -> f64 {
        GruForecaster::sample_grads_into(self, window, target, grads)
    }
    fn accumulate(into: &mut Self::Grads, other: &Self::Grads) {
        into.accumulate(other);
    }
    fn scale(grads: &mut Self::Grads, alpha: f64) {
        grads.scale(alpha);
    }
    fn clip(grads: &mut Self::Grads, max_norm: f64) -> bool {
        grads.clip_global_norm(max_norm)
    }
    fn apply(&mut self, grads: &Self::Grads, opt: &mut dyn crate::optim::Optimizer) {
        opt.begin_step();
        let mut slot = 0usize;
        self.visit_params(grads, &mut |p, g| {
            opt.update(slot, p, g);
            slot += 1;
        });
    }
    fn predict(&self, window: &[f64]) -> f64 {
        GruForecaster::predict(self, window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{make_windows, Adam, TrainOptions, Trainer};

    fn tiny() -> GruConfig {
        GruConfig {
            history_len: 4,
            hidden_size: 3,
            num_layers: 2,
            seed: 11,
        }
    }

    #[test]
    fn deterministic_and_bounded_hidden() {
        let m = GruForecaster::new(tiny());
        let w = [0.2, -0.5, 0.8, 0.1];
        assert_eq!(m.predict(&w), m.predict(&w));
        // h is a convex combination of tanh outputs and previous h, so
        // every hidden unit stays in [-1, 1].
        let layer = &m.layers[0];
        let cache = layer.forward(&w.iter().map(|&v| vec![v]).collect::<Vec<_>>());
        for hs in cache.hidden_sequence().chunks(layer.hidden()) {
            assert!(hs.iter().all(|v| v.abs() <= 1.0 + 1e-12));
        }
    }

    #[test]
    fn param_count_formula() {
        let m = GruForecaster::new(tiny());
        // layer0: 3*3*(1+3+1), layer1: 3*3*(3+3+1), head: 4.
        assert_eq!(m.param_count(), 45 + 63 + 4);
    }

    /// `sample_grads_into` accumulates on top of existing contents.
    #[test]
    fn sample_grads_into_accumulates() {
        let model = GruForecaster::new(tiny());
        let w1 = [0.3, -0.2, 0.6, -0.4];
        let w2 = [0.0, 0.9, -0.5, 0.2];
        let (l1, g1) = model.sample_grads(&w1, 0.35);
        let (l2, g2) = model.sample_grads(&w2, -0.1);
        let mut acc = model.zero_grads();
        assert_eq!(model.sample_grads_into(&w1, 0.35, &mut acc), l1);
        assert_eq!(model.sample_grads_into(&w2, -0.1, &mut acc), l2);
        let mut expect = g1;
        expect.accumulate(&g2);
        for (a, b) in acc.layers.iter().zip(&expect.layers) {
            assert!(a.dw.max_abs_diff(&b.dw) <= 1e-12 * (1.0 + b.dw.frobenius_norm()));
            assert!(a.du.max_abs_diff(&b.du) <= 1e-12 * (1.0 + b.du.frobenius_norm()));
            assert!(a.db.max_abs_diff(&b.db) <= 1e-12 * (1.0 + b.db.frobenius_norm()));
        }
    }

    /// Full finite-difference gradient check through the stacked GRU —
    /// the reset-gate coupling (`U_n (r . h)`) is the easiest term to get
    /// wrong, so every parameter is checked.
    #[test]
    fn gradients_match_finite_differences() {
        let model = GruForecaster::new(tiny());
        let window = [0.3, -0.2, 0.6, -0.4];
        let target = 0.35;
        let (_, grads) = model.sample_grads(&window, target);

        let mut analytic = Vec::new();
        let mut m = model.clone();
        m.visit_params(&grads, &mut |_p, g| analytic.extend_from_slice(g.as_slice()));

        let zero = model.zero_grads();
        let eps = 1e-5;
        for slot in 0..model.param_count() {
            let perturb = |dir: f64| {
                let mut p = model.clone();
                let mut seen = 0usize;
                p.visit_params(&zero, &mut |t, _| {
                    let len = t.as_slice().len();
                    if slot >= seen && slot < seen + len {
                        t.as_mut_slice()[slot - seen] += dir * eps;
                    }
                    seen += len;
                });
                let pred = p.predict(&window);
                (pred - target) * (pred - target)
            };
            let fd = (perturb(1.0) - perturb(-1.0)) / (2.0 * eps);
            assert!(
                (fd - analytic[slot]).abs() < 1e-5,
                "slot {slot}: fd {fd} vs analytic {}",
                analytic[slot]
            );
        }
    }

    #[test]
    fn gru_learns_a_sine_wave() {
        let series: Vec<f64> = (0..200)
            .map(|i| 0.5 + 0.4 * (i as f64 * 0.3).sin())
            .collect();
        let samples = make_windows(&series, 8);
        let (train, val) = samples.split_at(150);
        let mut model = GruForecaster::new(GruConfig {
            history_len: 8,
            hidden_size: 8,
            num_layers: 1,
            seed: 1,
        });
        let before = Trainer::evaluate(&model, val);
        let trainer = Trainer::new(TrainOptions {
            batch_size: 16,
            max_epochs: 40,
            patience: 10,
            ..TrainOptions::default()
        });
        let mut opt = Adam::with_lr(5e-3);
        trainer.fit(&mut model, &mut opt, train, val);
        let after = Trainer::evaluate(&model, val);
        assert!(after < before * 0.2, "{before} -> {after}");
    }

    #[test]
    fn gru_has_three_quarters_of_lstm_parameters() {
        let gru = GruForecaster::new(GruConfig {
            history_len: 8,
            hidden_size: 10,
            num_layers: 1,
            seed: 0,
        });
        let lstm = crate::forecaster::LstmForecaster::new(crate::ForecasterConfig {
            history_len: 8,
            hidden_size: 10,
            num_layers: 1,
            seed: 0,
        });
        let gru_recurrent = gru.param_count() - 11; // minus head
        let lstm_recurrent = lstm.param_count() - 11;
        assert_eq!(gru_recurrent * 4, lstm_recurrent * 3);
    }
}
