//! A GRU (gated recurrent unit) forecaster — the main "LSTM-variant" of
//! the paper's Section VI related work (Cho et al. 2014's cell, as used by
//! several of the cited deep workload predictors).
//!
//! ```text
//! z_t = sigma(W_z x_t + U_z h_{t-1} + b_z)      (update gate)
//! r_t = sigma(W_r x_t + U_r h_{t-1} + b_r)      (reset gate)
//! n_t = tanh (W_n x_t + U_n (r_t . h_{t-1}) + b_n)
//! h_t = (1 - z_t) . n_t + z_t . h_{t-1}
//! ```
//!
//! The layer mirrors [`crate::lstm::LstmLayer`]'s interface (forward with
//! cache, exact backward, packed `[z, r, n]` gate blocks) and the
//! [`GruForecaster`] mirrors [`crate::forecaster::LstmForecaster`], so the
//! shared [`crate::trainer::Trainer`] drives both — which is what the
//! `ablation_lstm_vs_gru` experiment needs.

use ld_linalg::{vecops, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::activation::{sigmoid, sigmoid_deriv_from_output, tanh_deriv_from_output};
use crate::dense::{Dense, DenseGrads};
use crate::loss::squared_error_grad;

/// One GRU layer with gate blocks packed `[z, r, n]`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GruLayer {
    input_dim: usize,
    hidden: usize,
    /// Input weights, `3H x input_dim`.
    w: Matrix,
    /// Recurrent weights, `3H x H`.
    u: Matrix,
    /// Bias, `3H x 1`.
    b: Matrix,
}

/// Gradients for one [`GruLayer`].
#[derive(Debug, Clone)]
pub struct GruGrads {
    /// Input-weight gradient.
    pub dw: Matrix,
    /// Recurrent-weight gradient.
    pub du: Matrix,
    /// Bias gradient.
    pub db: Matrix,
}

impl GruGrads {
    /// Zeroed gradients.
    pub fn zeros(input_dim: usize, hidden: usize) -> Self {
        GruGrads {
            dw: Matrix::zeros(3 * hidden, input_dim),
            du: Matrix::zeros(3 * hidden, hidden),
            db: Matrix::zeros(3 * hidden, 1),
        }
    }

    /// `self += other`.
    pub fn accumulate(&mut self, other: &GruGrads) {
        self.dw.add_assign(&other.dw).expect("dw shape");
        self.du.add_assign(&other.du).expect("du shape");
        self.db.add_assign(&other.db).expect("db shape");
    }

    /// Scales all tensors.
    pub fn scale(&mut self, alpha: f64) {
        self.dw.scale(alpha);
        self.du.scale(alpha);
        self.db.scale(alpha);
    }
}

/// Forward-pass record for backprop.
#[derive(Debug, Clone)]
pub struct GruCache {
    xs: Vec<Vec<f64>>,
    /// `hs[0]` is the zero initial state.
    hs: Vec<Vec<f64>>,
    /// Per step: `[z, r, n]` post-activation.
    gates: Vec<[Vec<f64>; 3]>,
}

impl GruCache {
    /// Hidden states `h_1..h_T`.
    pub fn hidden_sequence(&self) -> &[Vec<f64>] {
        &self.hs[1..]
    }

    /// Final hidden state.
    pub fn last_hidden(&self) -> &[f64] {
        self.hs.last().expect("non-empty")
    }

    /// Unrolled length.
    pub fn steps(&self) -> usize {
        self.xs.len()
    }
}

impl GruLayer {
    /// Xavier-initialized layer.
    pub fn new(input_dim: usize, hidden: usize, rng: &mut impl Rng) -> Self {
        assert!(input_dim > 0 && hidden > 0);
        GruLayer {
            input_dim,
            hidden,
            w: Matrix::xavier_uniform(3 * hidden, input_dim, rng),
            u: Matrix::xavier_uniform(3 * hidden, hidden, rng),
            b: Matrix::zeros(3 * hidden, 1),
        }
    }

    /// Hidden width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Input width.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Trainable scalar count.
    pub fn param_count(&self) -> usize {
        3 * self.hidden * (self.input_dim + self.hidden + 1)
    }

    /// Visits `(param, grad)` pairs in fixed order.
    pub fn visit_params<'a>(
        &'a mut self,
        grads: &'a GruGrads,
        f: &mut impl FnMut(&mut Matrix, &Matrix),
    ) {
        f(&mut self.w, &grads.dw);
        f(&mut self.u, &grads.du);
        f(&mut self.b, &grads.db);
    }

    /// Unrolls over `xs` from zero state.
    pub fn forward(&self, xs: &[Vec<f64>]) -> GruCache {
        let h = self.hidden;
        let mut cache = GruCache {
            xs: xs.to_vec(),
            hs: Vec::with_capacity(xs.len() + 1),
            gates: Vec::with_capacity(xs.len()),
        };
        cache.hs.push(vec![0.0; h]);
        for x in xs {
            assert_eq!(x.len(), self.input_dim, "GRU input dim");
            let h_prev = cache.hs.last().unwrap().clone();
            // Pre-activations for z and r use h_prev directly.
            let mut z_gate = vec![0.0; h];
            let mut r_gate = vec![0.0; h];
            for k in 0..h {
                z_gate[k] = sigmoid(
                    vecops::dot(self.w.row(k), x)
                        + vecops::dot(self.u.row(k), &h_prev)
                        + self.b[(k, 0)],
                );
                r_gate[k] = sigmoid(
                    vecops::dot(self.w.row(h + k), x)
                        + vecops::dot(self.u.row(h + k), &h_prev)
                        + self.b[(h + k, 0)],
                );
            }
            // Candidate uses the reset-scaled state.
            let rh: Vec<f64> = r_gate.iter().zip(&h_prev).map(|(r, hp)| r * hp).collect();
            let mut n_gate = vec![0.0; h];
            let mut h_t = vec![0.0; h];
            for k in 0..h {
                n_gate[k] = (vecops::dot(self.w.row(2 * h + k), x)
                    + vecops::dot(self.u.row(2 * h + k), &rh)
                    + self.b[(2 * h + k, 0)])
                .tanh();
                h_t[k] = (1.0 - z_gate[k]) * n_gate[k] + z_gate[k] * h_prev[k];
            }
            cache.gates.push([z_gate, r_gate, n_gate]);
            cache.hs.push(h_t);
        }
        cache
    }

    /// Exact backward pass; `dh_seq[t]` is the gradient flowing into
    /// `h_{t+1}` from above. Returns parameter grads and input grads.
    pub fn backward(&self, cache: &GruCache, dh_seq: &[Vec<f64>]) -> (GruGrads, Vec<Vec<f64>>) {
        let h = self.hidden;
        let t_len = cache.steps();
        assert_eq!(dh_seq.len(), t_len);
        let mut grads = GruGrads::zeros(self.input_dim, h);
        let mut dxs = vec![vec![0.0; self.input_dim]; t_len];
        let mut dh_next = vec![0.0; h];
        // Pre-activation grads for the three blocks.
        let mut dz = vec![0.0; h];
        let mut dr = vec![0.0; h];
        let mut dn = vec![0.0; h];

        for t in (0..t_len).rev() {
            let [z_gate, r_gate, n_gate] = &cache.gates[t];
            let h_prev = &cache.hs[t];
            let x_t = &cache.xs[t];

            // dL/dh_t from above plus recurrence.
            let dh: Vec<f64> = dh_seq[t]
                .iter()
                .zip(&dh_next)
                .map(|(a, b)| a + b)
                .collect();

            // h_t = (1-z) n + z h_prev
            // dn_pre, dz_pre; dh_prev gets the direct z-path plus gate paths.
            let mut dh_prev = vec![0.0; h];
            let mut du_n_dot_hprev = vec![0.0; h]; // dL/d(rh) accumulated below
            for k in 0..h {
                let dhk = dh[k];
                let dzk = dhk * (h_prev[k] - n_gate[k]);
                let dnk = dhk * (1.0 - z_gate[k]);
                dz[k] = dzk * sigmoid_deriv_from_output(z_gate[k]);
                dn[k] = dnk * tanh_deriv_from_output(n_gate[k]);
                dh_prev[k] = dhk * z_gate[k];
            }
            // dL/d(rh) = U_n^T dn_pre
            for (k, &dnk) in dn.iter().enumerate().take(h) {
                if dnk == 0.0 {
                    continue;
                }
                vecops::axpy(dnk, self.u.row(2 * h + k), &mut du_n_dot_hprev);
            }
            // rh = r . h_prev
            for k in 0..h {
                let drh = du_n_dot_hprev[k];
                dr[k] = drh * h_prev[k] * sigmoid_deriv_from_output(r_gate[k]);
                dh_prev[k] += drh * r_gate[k];
            }

            // Parameter grads and remaining dh_prev contributions from the
            // z and r pre-activations.
            let rh: Vec<f64> = r_gate.iter().zip(h_prev).map(|(r, hp)| r * hp).collect();
            for k in 0..h {
                // z block (rows 0..h)
                if dz[k] != 0.0 {
                    vecops::axpy(dz[k], x_t, grads.dw.row_mut(k));
                    vecops::axpy(dz[k], h_prev, grads.du.row_mut(k));
                    grads.db[(k, 0)] += dz[k];
                    vecops::axpy(dz[k], self.w.row(k), &mut dxs[t]);
                    vecops::axpy(dz[k], self.u.row(k), &mut dh_prev);
                }
                // r block (rows h..2h)
                if dr[k] != 0.0 {
                    vecops::axpy(dr[k], x_t, grads.dw.row_mut(h + k));
                    vecops::axpy(dr[k], h_prev, grads.du.row_mut(h + k));
                    grads.db[(h + k, 0)] += dr[k];
                    vecops::axpy(dr[k], self.w.row(h + k), &mut dxs[t]);
                    vecops::axpy(dr[k], self.u.row(h + k), &mut dh_prev);
                }
                // n block (rows 2h..3h); recurrent part uses rh.
                if dn[k] != 0.0 {
                    vecops::axpy(dn[k], x_t, grads.dw.row_mut(2 * h + k));
                    vecops::axpy(dn[k], &rh, grads.du.row_mut(2 * h + k));
                    grads.db[(2 * h + k, 0)] += dn[k];
                    vecops::axpy(dn[k], self.w.row(2 * h + k), &mut dxs[t]);
                }
            }
            dh_next = dh_prev;
        }
        (grads, dxs)
    }
}

/// Architecture config for [`GruForecaster`] (same knobs as the LSTM's).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GruConfig {
    /// Input window length.
    pub history_len: usize,
    /// Hidden width per layer.
    pub hidden_size: usize,
    /// Stacked layers.
    pub num_layers: usize,
    /// Init seed.
    pub seed: u64,
}

/// Gradients for the whole GRU forecaster.
#[derive(Debug, Clone)]
pub struct GruForecasterGrads {
    /// Per-layer gradients, bottom first.
    pub layers: Vec<GruGrads>,
    /// Head gradients.
    pub head: DenseGrads,
}

impl GruForecasterGrads {
    /// `self += other`.
    pub fn accumulate(&mut self, other: &GruForecasterGrads) {
        for (a, b) in self.layers.iter_mut().zip(&other.layers) {
            a.accumulate(b);
        }
        self.head.accumulate(&other.head);
    }

    /// Scales everything.
    pub fn scale(&mut self, alpha: f64) {
        for g in &mut self.layers {
            g.scale(alpha);
        }
        self.head.scale(alpha);
    }

    /// Global L2 norm.
    pub fn global_norm(&self) -> f64 {
        let mut ss = 0.0;
        for g in &self.layers {
            ss += g.dw.sum_squares() + g.du.sum_squares() + g.db.sum_squares();
        }
        ss += self.head.dw.sum_squares() + self.head.db.sum_squares();
        ss.sqrt()
    }

    /// Global-norm clip. Returns whether clipping actually fired.
    pub fn clip_global_norm(&mut self, max_norm: f64) -> bool {
        let n = self.global_norm();
        if n > max_norm && n > 0.0 {
            self.scale(max_norm / n);
            return true;
        }
        false
    }
}

/// Stacked-GRU scalar forecaster with a linear head.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GruForecaster {
    config: GruConfig,
    layers: Vec<GruLayer>,
    head: Dense,
}

impl GruForecaster {
    /// Fresh forecaster.
    pub fn new(config: GruConfig) -> Self {
        assert!(config.history_len > 0 && config.hidden_size > 0 && config.num_layers > 0);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut layers = Vec::with_capacity(config.num_layers);
        for l in 0..config.num_layers {
            let input_dim = if l == 0 { 1 } else { config.hidden_size };
            layers.push(GruLayer::new(input_dim, config.hidden_size, &mut rng));
        }
        let head = Dense::new(config.hidden_size, 1, &mut rng);
        GruForecaster {
            config,
            layers,
            head,
        }
    }

    /// Architecture config.
    pub fn config(&self) -> &GruConfig {
        &self.config
    }

    /// Trainable scalar count.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum::<usize>() + self.head.param_count()
    }

    fn forward_cached(&self, window: &[f64]) -> (f64, Vec<GruCache>) {
        assert_eq!(window.len(), self.config.history_len, "window length");
        let mut caches = Vec::with_capacity(self.layers.len());
        let mut seq: Vec<Vec<f64>> = window.iter().map(|&v| vec![v]).collect();
        for layer in &self.layers {
            let cache = layer.forward(&seq);
            seq = cache.hidden_sequence().to_vec();
            caches.push(cache);
        }
        let pred = self.head.forward(caches.last().unwrap().last_hidden())[0];
        (pred, caches)
    }

    /// Point prediction.
    pub fn predict(&self, window: &[f64]) -> f64 {
        self.forward_cached(window).0
    }

    /// Per-sample loss and gradients.
    pub fn sample_grads(&self, window: &[f64], target: f64) -> (f64, GruForecasterGrads) {
        let (pred, caches) = self.forward_cached(window);
        let loss = (pred - target) * (pred - target);
        let dpred = squared_error_grad(pred, target);
        let (head_grads, dh_last) = self
            .head
            .backward(caches.last().unwrap().last_hidden(), &[dpred]);
        let steps = self.config.history_len;
        let hidden = self.config.hidden_size;
        let mut layer_grads: Vec<Option<GruGrads>> = vec![None; self.layers.len()];
        let mut dh_seq = vec![vec![0.0; hidden]; steps];
        dh_seq[steps - 1] = dh_last;
        for (idx, layer) in self.layers.iter().enumerate().rev() {
            let (grads, dxs) = layer.backward(&caches[idx], &dh_seq);
            layer_grads[idx] = Some(grads);
            dh_seq = dxs;
        }
        (
            loss,
            GruForecasterGrads {
                layers: layer_grads.into_iter().map(|g| g.unwrap()).collect(),
                head: head_grads,
            },
        )
    }

    /// Zeroed gradient container.
    pub fn zero_grads(&self) -> GruForecasterGrads {
        GruForecasterGrads {
            layers: self
                .layers
                .iter()
                .map(|l| GruGrads::zeros(l.input_dim(), l.hidden()))
                .collect(),
            head: DenseGrads::zeros(1, self.config.hidden_size),
        }
    }

    /// Visits `(param, grad)` pairs in fixed order.
    pub fn visit_params(
        &mut self,
        grads: &GruForecasterGrads,
        f: &mut impl FnMut(&mut Matrix, &Matrix),
    ) {
        for (layer, g) in self.layers.iter_mut().zip(&grads.layers) {
            layer.visit_params(g, f);
        }
        self.head.visit_params(&grads.head, f);
    }
}

impl crate::trainer::Trainable for GruForecaster {
    type Grads = GruForecasterGrads;

    fn zero_grads(&self) -> Self::Grads {
        GruForecaster::zero_grads(self)
    }
    fn sample_grads(&self, window: &[f64], target: f64) -> (f64, Self::Grads) {
        GruForecaster::sample_grads(self, window, target)
    }
    fn accumulate(into: &mut Self::Grads, other: &Self::Grads) {
        into.accumulate(other);
    }
    fn scale(grads: &mut Self::Grads, alpha: f64) {
        grads.scale(alpha);
    }
    fn clip(grads: &mut Self::Grads, max_norm: f64) -> bool {
        grads.clip_global_norm(max_norm)
    }
    fn apply(&mut self, grads: &Self::Grads, opt: &mut dyn crate::optim::Optimizer) {
        opt.begin_step();
        let mut slot = 0usize;
        self.visit_params(grads, &mut |p, g| {
            opt.update(slot, p, g);
            slot += 1;
        });
    }
    fn predict(&self, window: &[f64]) -> f64 {
        GruForecaster::predict(self, window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{make_windows, Adam, TrainOptions, Trainer};

    fn tiny() -> GruConfig {
        GruConfig {
            history_len: 4,
            hidden_size: 3,
            num_layers: 2,
            seed: 11,
        }
    }

    #[test]
    fn deterministic_and_bounded_hidden() {
        let m = GruForecaster::new(tiny());
        let w = [0.2, -0.5, 0.8, 0.1];
        assert_eq!(m.predict(&w), m.predict(&w));
        // h is a convex combination of tanh outputs and previous h, so
        // every hidden unit stays in [-1, 1].
        let layer = &m.layers[0];
        let cache = layer.forward(&w.iter().map(|&v| vec![v]).collect::<Vec<_>>());
        for hs in cache.hidden_sequence() {
            assert!(hs.iter().all(|v| v.abs() <= 1.0 + 1e-12));
        }
    }

    #[test]
    fn param_count_formula() {
        let m = GruForecaster::new(tiny());
        // layer0: 3*3*(1+3+1), layer1: 3*3*(3+3+1), head: 4.
        assert_eq!(m.param_count(), 45 + 63 + 4);
    }

    /// Full finite-difference gradient check through the stacked GRU —
    /// the reset-gate coupling (`U_n (r . h)`) is the easiest term to get
    /// wrong, so every parameter is checked.
    #[test]
    fn gradients_match_finite_differences() {
        let model = GruForecaster::new(tiny());
        let window = [0.3, -0.2, 0.6, -0.4];
        let target = 0.35;
        let (_, grads) = model.sample_grads(&window, target);

        let mut analytic = Vec::new();
        let mut m = model.clone();
        m.visit_params(&grads, &mut |_p, g| analytic.extend_from_slice(g.as_slice()));

        let zero = model.zero_grads();
        let eps = 1e-5;
        for slot in 0..model.param_count() {
            let perturb = |dir: f64| {
                let mut p = model.clone();
                let mut seen = 0usize;
                p.visit_params(&zero, &mut |t, _| {
                    let len = t.as_slice().len();
                    if slot >= seen && slot < seen + len {
                        t.as_mut_slice()[slot - seen] += dir * eps;
                    }
                    seen += len;
                });
                let pred = p.predict(&window);
                (pred - target) * (pred - target)
            };
            let fd = (perturb(1.0) - perturb(-1.0)) / (2.0 * eps);
            assert!(
                (fd - analytic[slot]).abs() < 1e-5,
                "slot {slot}: fd {fd} vs analytic {}",
                analytic[slot]
            );
        }
    }

    #[test]
    fn gru_learns_a_sine_wave() {
        let series: Vec<f64> = (0..200)
            .map(|i| 0.5 + 0.4 * (i as f64 * 0.3).sin())
            .collect();
        let samples = make_windows(&series, 8);
        let (train, val) = samples.split_at(150);
        let mut model = GruForecaster::new(GruConfig {
            history_len: 8,
            hidden_size: 8,
            num_layers: 1,
            seed: 1,
        });
        let before = Trainer::evaluate(&model, val);
        let trainer = Trainer::new(TrainOptions {
            batch_size: 16,
            max_epochs: 40,
            patience: 10,
            ..TrainOptions::default()
        });
        let mut opt = Adam::with_lr(5e-3);
        trainer.fit(&mut model, &mut opt, train, val);
        let after = Trainer::evaluate(&model, val);
        assert!(after < before * 0.2, "{before} -> {after}");
    }

    #[test]
    fn gru_has_three_quarters_of_lstm_parameters() {
        let gru = GruForecaster::new(GruConfig {
            history_len: 8,
            hidden_size: 10,
            num_layers: 1,
            seed: 0,
        });
        let lstm = crate::forecaster::LstmForecaster::new(crate::ForecasterConfig {
            history_len: 8,
            hidden_size: 10,
            num_layers: 1,
            seed: 0,
        });
        let gru_recurrent = gru.param_count() - 11; // minus head
        let lstm_recurrent = lstm.param_count() - 11;
        assert_eq!(gru_recurrent * 4, lstm_recurrent * 3);
    }
}
