//! Pre-change reference model for equivalence gating and benchmarking.
//!
//! [`ReferenceLstmForecaster`] wraps an [`LstmForecaster`] but routes every
//! [`Trainable`] call through the retained pre-change implementations
//! (`predict_reference` / `sample_grads_reference`, nested-`Vec` caches,
//! sequential dots) and inherits the trait's *default*
//! `sample_grads_into` — allocate a fresh gradient set per sample, then
//! `accumulate` — which reproduces the original trainer's batch
//! floating-point accumulation order exactly. Training one of these against
//! the optimized fast path is how `ld-perfbench` measures the "before"
//! train-epoch cost and how the `kernel_equivalence` suite checks that
//! `TrainReport` losses agree within tolerance.

use crate::forecaster::{ForecasterGrads, LstmForecaster};
use crate::optim::Optimizer;
use crate::trainer::Trainable;

/// An [`LstmForecaster`] trained exclusively through the pre-change slow
/// paths. Construct one from the same config/seed as the fast model to get
/// bit-identical initial weights.
#[derive(Debug, Clone)]
pub struct ReferenceLstmForecaster(pub LstmForecaster);

impl Trainable for ReferenceLstmForecaster {
    type Grads = ForecasterGrads;

    fn zero_grads(&self) -> Self::Grads {
        self.0.zero_grads()
    }
    fn sample_grads(&self, window: &[f64], target: f64) -> (f64, Self::Grads) {
        self.0.sample_grads_reference(window, target)
    }
    // sample_grads_into deliberately NOT overridden: the trait default
    // (fresh grads + accumulate) is the pre-change batch semantics.
    fn accumulate(into: &mut Self::Grads, other: &Self::Grads) {
        into.accumulate(other);
    }
    fn scale(grads: &mut Self::Grads, alpha: f64) {
        grads.scale(alpha);
    }
    fn clip(grads: &mut Self::Grads, max_norm: f64) -> bool {
        grads.clip_global_norm(max_norm)
    }
    fn apply(&mut self, grads: &Self::Grads, opt: &mut dyn Optimizer) {
        opt.begin_step();
        let mut slot = 0usize;
        self.0.visit_params(grads, &mut |p, g| {
            opt.update(slot, p, g);
            slot += 1;
        });
    }
    fn predict(&self, window: &[f64]) -> f64 {
        self.0.predict_reference(window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forecaster::ForecasterConfig;
    use crate::optim::Adam;
    use crate::trainer::{TrainOptions, Trainer};
    use crate::make_windows;

    /// Training the reference wrapper and the fast model from identical
    /// seeds yields matching loss trajectories within the documented
    /// tolerance (the fast kernels reorder FP sums; they are not bitwise).
    #[test]
    fn reference_and_fast_training_agree() {
        let series: Vec<f64> = (0..90)
            .map(|i| 0.5 + 0.4 * (i as f64 * 0.3).sin())
            .collect();
        let samples = make_windows(&series, 6);
        let (train, val) = samples.split_at(60);
        let cfg = ForecasterConfig {
            history_len: 6,
            hidden_size: 5,
            num_layers: 1,
            seed: 21,
        };
        let opts = TrainOptions {
            batch_size: 16,
            max_epochs: 4,
            patience: 0,
            ..TrainOptions::default()
        };

        let mut fast = LstmForecaster::new(cfg);
        let mut opt = Adam::with_lr(2e-3);
        let fast_report = Trainer::new(opts).fit(&mut fast, &mut opt, train, val);

        let mut slow = ReferenceLstmForecaster(LstmForecaster::new(cfg));
        let mut opt = Adam::with_lr(2e-3);
        let slow_report = Trainer::new(opts).fit(&mut slow, &mut opt, train, val);

        assert_eq!(fast_report.epochs_run, slow_report.epochs_run);
        for (a, b) in fast_report
            .train_losses
            .iter()
            .zip(&slow_report.train_losses)
        {
            assert!((a - b).abs() <= 1e-7 * (1.0 + b.abs()), "{a} vs {b}");
        }
    }
}
