//! Mini-batch training loop: shuffling, rayon-parallel gradient
//! accumulation, global-norm clipping, and early stopping on a validation
//! split.
//!
//! The loop is generic over [`Trainable`] so the stacked-LSTM forecaster and
//! the feed-forward ablation baseline share one implementation. Per-batch
//! gradients are computed sample-parallel with rayon (each worker folds its
//! chunk into a local gradient accumulator, then accumulators reduce
//! pairwise), which is the dominant cost of the whole framework — the
//! Bayesian-optimization loop above trains hundreds of these models.

use ld_linalg::Matrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rayon::prelude::*;

use crate::loss::mse;
use crate::optim::Optimizer;
use crate::Sample;

/// A model the [`Trainer`] can fit: cloneable (snapshots for early
/// stopping), thread-safe for parallel gradient evaluation, with an
/// associated gradient type that can be summed.
pub trait Trainable: Clone + Send + Sync {
    /// Gradient container matching the model structure.
    type Grads: Send;

    /// Zeroed gradients.
    fn zero_grads(&self) -> Self::Grads;
    /// Loss and gradients for a single sample.
    fn sample_grads(&self, window: &[f64], target: f64) -> (f64, Self::Grads);
    /// Loss for a single sample with its gradients *accumulated* into an
    /// existing container, returning the loss. Workspace-backed models
    /// override this to skip the per-sample gradient allocation; the
    /// default delegates to [`Self::sample_grads`].
    fn sample_grads_into(&self, window: &[f64], target: f64, grads: &mut Self::Grads) -> f64 {
        let (loss, g) = self.sample_grads(window, target);
        Self::accumulate(grads, &g);
        loss
    }
    /// `into += other`.
    fn accumulate(into: &mut Self::Grads, other: &Self::Grads);
    /// Scales gradients in place.
    fn scale(grads: &mut Self::Grads, alpha: f64);
    /// Clips the global gradient norm in place. Returns whether clipping
    /// actually rescaled the gradients (telemetry counts activations).
    fn clip(grads: &mut Self::Grads, max_norm: f64) -> bool;
    /// Applies one optimizer step with the given (already averaged) grads.
    fn apply(&mut self, grads: &Self::Grads, opt: &mut dyn Optimizer);
    /// Point prediction for a window.
    fn predict(&self, window: &[f64]) -> f64;
}

impl Trainable for crate::forecaster::LstmForecaster {
    type Grads = crate::forecaster::ForecasterGrads;

    fn zero_grads(&self) -> Self::Grads {
        crate::forecaster::LstmForecaster::zero_grads(self)
    }
    fn sample_grads(&self, window: &[f64], target: f64) -> (f64, Self::Grads) {
        crate::forecaster::LstmForecaster::sample_grads(self, window, target)
    }
    fn sample_grads_into(&self, window: &[f64], target: f64, grads: &mut Self::Grads) -> f64 {
        crate::forecaster::LstmForecaster::sample_grads_into(self, window, target, grads)
    }
    fn accumulate(into: &mut Self::Grads, other: &Self::Grads) {
        into.accumulate(other);
    }
    fn scale(grads: &mut Self::Grads, alpha: f64) {
        grads.scale(alpha);
    }
    fn clip(grads: &mut Self::Grads, max_norm: f64) -> bool {
        grads.clip_global_norm(max_norm)
    }
    fn apply(&mut self, grads: &Self::Grads, opt: &mut dyn Optimizer) {
        opt.begin_step();
        let mut slot = 0usize;
        self.visit_params(grads, &mut |p: &mut Matrix, g: &Matrix| {
            opt.update(slot, p, g);
            slot += 1;
        });
    }
    fn predict(&self, window: &[f64]) -> f64 {
        crate::forecaster::LstmForecaster::predict(self, window)
    }
}

impl Trainable for crate::mlp::MlpForecaster {
    type Grads = crate::mlp::MlpGrads;

    fn zero_grads(&self) -> Self::Grads {
        crate::mlp::MlpForecaster::zero_grads(self)
    }
    fn sample_grads(&self, window: &[f64], target: f64) -> (f64, Self::Grads) {
        crate::mlp::MlpForecaster::sample_grads(self, window, target)
    }
    fn sample_grads_into(&self, window: &[f64], target: f64, grads: &mut Self::Grads) -> f64 {
        crate::mlp::MlpForecaster::sample_grads_into(self, window, target, grads)
    }
    fn accumulate(into: &mut Self::Grads, other: &Self::Grads) {
        into.accumulate(other);
    }
    fn scale(grads: &mut Self::Grads, alpha: f64) {
        grads.scale(alpha);
    }
    fn clip(grads: &mut Self::Grads, max_norm: f64) -> bool {
        grads.clip_global_norm(max_norm)
    }
    fn apply(&mut self, grads: &Self::Grads, opt: &mut dyn Optimizer) {
        opt.begin_step();
        let mut slot = 0usize;
        self.visit_params(grads, &mut |p: &mut Matrix, g: &Matrix| {
            opt.update(slot, p, g);
            slot += 1;
        });
    }
    fn predict(&self, window: &[f64]) -> f64 {
        crate::mlp::MlpForecaster::predict(self, window)
    }
}

/// Knobs for one training run.
#[derive(Debug, Clone, Copy)]
pub struct TrainOptions {
    /// Mini-batch size — the fourth hyperparameter LoadDynamics tunes.
    pub batch_size: usize,
    /// Maximum number of passes over the training data.
    pub max_epochs: usize,
    /// Early-stopping patience: stop after this many epochs without
    /// validation improvement. `0` disables early stopping.
    pub patience: usize,
    /// Minimum validation-MSE improvement that resets patience.
    pub min_delta: f64,
    /// Global gradient-norm clip (`f64::INFINITY` disables clipping).
    pub clip_norm: f64,
    /// Seed for epoch shuffling.
    pub shuffle_seed: u64,
    /// Multiplicative learning-rate decay applied per epoch via gradient
    /// rescaling (`1.0` = constant rate). Values slightly below 1 (e.g.
    /// `0.97`) trade early progress for a finer-grained endgame.
    pub lr_decay: f64,
    /// Divergence-watchdog budget: how many times a non-finite epoch may be
    /// rolled back (restore best weights, reset optimizer state, halve the
    /// learning rate) before the run is declared diverged. `0` disables
    /// recovery — the first non-finite epoch is terminal.
    pub max_divergence_retries: usize,
}

impl Default for TrainOptions {
    fn default() -> Self {
        TrainOptions {
            batch_size: 32,
            max_epochs: 60,
            patience: 8,
            min_delta: 1e-6,
            clip_norm: 5.0,
            shuffle_seed: 0,
            lr_decay: 1.0,
            max_divergence_retries: 3,
        }
    }
}

/// Outcome of a training run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Epochs actually executed (may be fewer than `max_epochs`).
    pub epochs_run: usize,
    /// Training MSE at the end of each epoch.
    pub train_losses: Vec<f64>,
    /// Validation MSE at the end of each epoch (empty when no val set).
    pub val_losses: Vec<f64>,
    /// Best validation MSE observed (train MSE when no val set).
    pub best_loss: f64,
    /// True if early stopping fired.
    pub early_stopped: bool,
    /// Number of watchdog rollbacks performed (non-finite epochs recovered
    /// by restoring the best snapshot and halving the learning rate).
    pub rollbacks: usize,
    /// True if the run exhausted its divergence retries and was aborted.
    /// The model still holds the best finite weights observed (the initial
    /// weights when no epoch ever finished finite), but callers should
    /// treat the trial as failed.
    pub diverged: bool,
}

/// The mini-batch trainer.
#[derive(Debug, Clone, Default)]
pub struct Trainer {
    opts: TrainOptions,
    telemetry: ld_telemetry::Telemetry,
    scope: String,
    tracer: ld_telemetry::Tracer,
    /// Deterministic key for the fault-injection `nan_loss` site; `None`
    /// leaves injection off for this trainer even when the harness is
    /// active.
    fault_key: Option<u64>,
}

impl Trainer {
    /// Trainer with the given options.
    pub fn new(opts: TrainOptions) -> Self {
        assert!(opts.batch_size > 0, "batch_size must be >= 1");
        assert!(opts.max_epochs > 0, "max_epochs must be >= 1");
        Trainer {
            opts,
            telemetry: ld_telemetry::Telemetry::disabled(),
            scope: String::new(),
            tracer: ld_telemetry::Tracer::disabled(),
            fault_key: None,
        }
    }

    /// Arms the deterministic `nan_loss` fault-injection site for this
    /// trainer. Whether this particular run is afflicted is a pure function
    /// of `key` and the installed harness config, so searches replay
    /// identically. A no-op while the harness is inactive.
    pub fn with_fault_key(mut self, key: u64) -> Self {
        self.fault_key = Some(key);
        self
    }

    /// Attaches a telemetry handle; per-epoch events are recorded under
    /// `scope` (e.g. a hyperparameter fingerprint, so concurrent candidate
    /// trainings stay distinguishable and deterministically ordered).
    pub fn with_telemetry(
        mut self,
        telemetry: ld_telemetry::Telemetry,
        scope: impl Into<String>,
    ) -> Self {
        self.telemetry = telemetry;
        self.scope = scope.into();
        self
    }

    /// Attaches a span tracer (usually already scoped to the candidate's
    /// trial span). Each [`Trainer::fit`] records `epoch#e` spans with
    /// `batch#b` / `validate` children; batches additionally carry
    /// synthetic `forward` / `bptt` leaves attributed from the kernel
    /// section counters (approximate under concurrent candidate trainings,
    /// which share the process-global counters).
    pub fn with_tracer(mut self, tracer: ld_telemetry::Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// The options in use.
    pub fn options(&self) -> &TrainOptions {
        &self.opts
    }

    /// Mean squared error of `model` over `samples`.
    pub fn evaluate<M: Trainable>(model: &M, samples: &[Sample]) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        let preds: Vec<f64> = samples
            .par_iter()
            .map(|s| model.predict(&s.window))
            .collect();
        let targets: Vec<f64> = samples.iter().map(|s| s.target).collect();
        mse(&preds, &targets)
    }

    /// Fits `model` on `train`, early-stopping on `val` (if non-empty).
    /// On return the model holds the weights of the best validation epoch.
    pub fn fit<M: Trainable>(
        &self,
        model: &mut M,
        opt: &mut dyn Optimizer,
        train: &[Sample],
        val: &[Sample],
    ) -> TrainReport {
        assert!(!train.is_empty(), "empty training set");
        let mut order: Vec<usize> = (0..train.len()).collect();
        let mut rng = StdRng::seed_from_u64(self.opts.shuffle_seed);

        let mut best_loss = f64::INFINITY;
        let mut best_model = model.clone();
        let mut since_best = 0usize;
        let mut train_losses = Vec::new();
        let mut val_losses = Vec::new();
        let mut early_stopped = false;
        let mut epochs_run = 0usize;
        // Watchdog state: each rollback halves the effective learning rate
        // on top of the configured decay schedule.
        let mut lr_retreat = 1.0f64;
        let mut rollbacks = 0usize;
        let mut diverged = false;
        // Deterministic per-run fault decision: an afflicted run reports a
        // non-finite loss every epoch, so it exercises the full
        // rollback-then-give-up path of the watchdog.
        let inject_nan = self.fault_key.is_some_and(|k| {
            ld_faultinject::is_active()
                && ld_faultinject::fault_hit(ld_faultinject::FaultSite::NanLoss, k)
        });

        let telemetry_on = self.telemetry.is_enabled();
        let trace_on = self.tracer.is_enabled();
        // ld-lint: allow(determinism, "opt-in telemetry timer; timing is observed, never fed back into training")
        let fit_start = telemetry_on.then(std::time::Instant::now);
        // Arm the kernel section timers (gate-matmul / bptt nanos) for the
        // duration of this fit; snapshots are diffed at the end (telemetry)
        // and per batch (trace forward/bptt leaves).
        let _sections_guard = (telemetry_on || trace_on).then(crate::sections::activate);
        let sections_before = telemetry_on.then(crate::sections::totals);

        for epoch in 0..self.opts.max_epochs {
            let epoch_guard = self.tracer.span_at("epoch", epoch as u64);
            let epoch_tracer = epoch_guard.tracer();
            epochs_run += 1;
            if self.opts.lr_decay != 1.0 || lr_retreat != 1.0 {
                opt.set_lr_scale(self.opts.lr_decay.powi(epoch as i32) * lr_retreat);
            }
            order.shuffle(&mut rng);
            let mut epoch_loss_sum = 0.0;
            let mut batches = 0u64;
            let mut clipped_batches = 0u64;
            // ld-lint: allow(determinism, "opt-in telemetry timer; timing is observed, never fed back into training")
            let epoch_start = telemetry_on.then(std::time::Instant::now);

            for (b, chunk) in order.chunks(self.opts.batch_size).enumerate() {
                let batch_guard = epoch_tracer.span_at("batch", b as u64);
                let batch_sections = trace_on.then(crate::sections::totals);
                let (loss_sum, mut grads) = chunk
                    .par_iter()
                    .fold(
                        || (0.0f64, model.zero_grads()),
                        |(mut ls, mut acc), &idx| {
                            let s = &train[idx];
                            // Accumulate straight into the worker-local
                            // batch gradients: no per-sample allocation.
                            ls += model.sample_grads_into(&s.window, s.target, &mut acc);
                            (ls, acc)
                        },
                    )
                    .reduce(
                        || (0.0f64, model.zero_grads()),
                        |(l1, mut g1), (l2, g2)| {
                            M::accumulate(&mut g1, &g2);
                            (l1 + l2, g1)
                        },
                    );
                if !loss_sum.is_finite() {
                    // Bail before applying: gradients from a non-finite
                    // batch would poison the weights and optimizer moments
                    // the watchdog is about to restore anyway.
                    epoch_loss_sum = f64::NAN;
                    break;
                }
                epoch_loss_sum += loss_sum;
                batches += 1;
                M::scale(&mut grads, 1.0 / chunk.len() as f64);
                if self.opts.clip_norm.is_finite() && M::clip(&mut grads, self.opts.clip_norm) {
                    clipped_batches += 1;
                }
                model.apply(&grads, opt);
                // Attribute the batch's kernel time to synthetic
                // forward/bptt leaves (approximate: the counters are
                // process-global, so concurrent trainings interleave).
                if let Some((gate0, bptt0)) = batch_sections {
                    let (gate1, bptt1) = crate::sections::totals();
                    let gate = gate1.saturating_sub(gate0);
                    let bptt = bptt1.saturating_sub(bptt0);
                    let inside = batch_guard.tracer();
                    inside.record_span("forward", 0, gate, bptt);
                    inside.record_span("bptt", 0, bptt, 0);
                }
            }

            let train_mse = if inject_nan {
                f64::NAN
            } else {
                epoch_loss_sum / train.len() as f64
            };
            train_losses.push(train_mse);
            let monitored = if val.is_empty() {
                train_mse
            } else {
                let validate_guard = epoch_tracer.span("validate");
                let v = Self::evaluate(model, val);
                drop(validate_guard);
                val_losses.push(v);
                v
            };

            if !train_mse.is_finite() || !monitored.is_finite() {
                if telemetry_on {
                    self.telemetry.incr("trainer.divergence_events");
                    self.telemetry
                        .record_with(&self.scope, "divergence", epoch as u64, |e| {
                            e.int("rollbacks_used", rollbacks as u64).flag(
                                "retry",
                                rollbacks < self.opts.max_divergence_retries,
                            );
                        });
                }
                if rollbacks >= self.opts.max_divergence_retries {
                    diverged = true;
                    break;
                }
                rollbacks += 1;
                if telemetry_on {
                    self.telemetry.incr("trainer.watchdog_rollbacks");
                }
                // Restore the last known-good weights (the initial ones if
                // no epoch finished finite yet), drop moment estimates that
                // may have absorbed non-finite gradients, and retreat the
                // learning rate. Patience is deliberately not charged for a
                // recovered epoch.
                *model = best_model.clone();
                opt.reset();
                lr_retreat *= 0.5;
                continue;
            }

            if telemetry_on {
                self.telemetry.incr("trainer.epochs");
                self.telemetry.add("trainer.clip_activations", clipped_batches);
                self.telemetry
                    .record_with(&self.scope, "epoch", epoch as u64, |e| {
                        e.num("train_mse", train_mse)
                            .int("batches", batches)
                            .int("clipped_batches", clipped_batches)
                            .num(
                                "wall_secs",
                                epoch_start.map_or(0.0, |s| s.elapsed().as_secs_f64()),
                            );
                        if !val.is_empty() {
                            e.num("val_mse", monitored);
                        }
                    });
            }

            if monitored + self.opts.min_delta < best_loss {
                best_loss = monitored;
                best_model = model.clone();
                since_best = 0;
            } else {
                since_best += 1;
                if self.opts.patience > 0 && since_best >= self.opts.patience {
                    early_stopped = true;
                    break;
                }
            }
        }

        *model = best_model;
        if let Some(start) = fit_start {
            let wall = start.elapsed().as_secs_f64();
            self.telemetry.observe_secs("trainer.fit", wall);
            if let Some((gate0, bptt0)) = sections_before {
                let (gate1, bptt1) = crate::sections::totals();
                self.telemetry
                    .observe_secs("nn.gate_matmul", gate1.saturating_sub(gate0) as f64 / 1e9);
                self.telemetry
                    .observe_secs("nn.bptt", bptt1.saturating_sub(bptt0) as f64 / 1e9);
            }
            if diverged {
                self.telemetry.incr("trainer.diverged_runs");
            }
            self.telemetry.record_with(&self.scope, "fit", 0, |e| {
                e.int("epochs_run", epochs_run as u64)
                    .num("best_loss", best_loss)
                    .flag("early_stopped", early_stopped)
                    .int("rollbacks", rollbacks as u64)
                    .flag("diverged", diverged)
                    .text(
                        "stop_reason",
                        if diverged {
                            "diverged"
                        } else if early_stopped {
                            "patience"
                        } else {
                            "max_epochs"
                        },
                    )
                    .num("wall_secs", wall);
            });
        }
        TrainReport {
            epochs_run,
            train_losses,
            val_losses,
            best_loss,
            early_stopped,
            rollbacks,
            diverged,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forecaster::{ForecasterConfig, LstmForecaster};
    use crate::mlp::{MlpConfig, MlpForecaster};
    use crate::optim::Adam;
    use crate::make_windows;

    fn sine_series(len: usize) -> Vec<f64> {
        (0..len)
            .map(|i| 0.5 + 0.4 * (i as f64 * 0.3).sin())
            .collect()
    }

    #[test]
    fn lstm_learns_a_sine_wave() {
        let series = sine_series(220);
        let n = 8;
        let samples = make_windows(&series, n);
        let (train, val) = samples.split_at(160);
        let mut model = LstmForecaster::new(ForecasterConfig {
            history_len: n,
            hidden_size: 8,
            num_layers: 1,
            seed: 1,
        });
        let before = Trainer::evaluate(&model, val);
        let trainer = Trainer::new(TrainOptions {
            batch_size: 16,
            max_epochs: 40,
            patience: 10,
            ..TrainOptions::default()
        });
        let mut opt = Adam::with_lr(5e-3);
        let report = trainer.fit(&mut model, &mut opt, train, val);
        let after = Trainer::evaluate(&model, val);
        assert!(
            after < before * 0.2,
            "val MSE did not drop enough: {before} -> {after}"
        );
        assert!(report.best_loss <= before);
        assert_eq!(report.train_losses.len(), report.epochs_run);
    }

    #[test]
    fn mlp_learns_linear_map() {
        // target = mean of window: trivially learnable by a linear model.
        let series: Vec<f64> = (0..200).map(|i| ((i * 37) % 100) as f64 / 100.0).collect();
        let n = 4;
        let samples: Vec<Sample> = make_windows(&series, n)
            .into_iter()
            .map(|mut s| {
                s.target = s.window.iter().sum::<f64>() / n as f64;
                s
            })
            .collect();
        let (train, val) = samples.split_at(150);
        let mut model = MlpForecaster::new(MlpConfig {
            history_len: n,
            hidden_size: 8,
            seed: 3,
        });
        let before = Trainer::evaluate(&model, val);
        let trainer = Trainer::new(TrainOptions {
            batch_size: 16,
            max_epochs: 80,
            patience: 20,
            ..TrainOptions::default()
        });
        let mut opt = Adam::with_lr(1e-2);
        trainer.fit(&mut model, &mut opt, train, val);
        let after = Trainer::evaluate(&model, val);
        assert!(after < before * 0.1, "{before} -> {after}");
    }

    #[test]
    fn early_stopping_fires_on_plateau() {
        // Constant series: converges immediately, then plateaus.
        let series = vec![0.5; 80];
        let samples = make_windows(&series, 4);
        let (train, val) = samples.split_at(50);
        let mut model = LstmForecaster::new(ForecasterConfig {
            history_len: 4,
            hidden_size: 4,
            num_layers: 1,
            seed: 2,
        });
        let trainer = Trainer::new(TrainOptions {
            batch_size: 8,
            max_epochs: 200,
            patience: 3,
            ..TrainOptions::default()
        });
        let mut opt = Adam::with_lr(5e-3);
        let report = trainer.fit(&mut model, &mut opt, train, val);
        assert!(report.early_stopped);
        assert!(report.epochs_run < 200);
    }

    #[test]
    fn training_is_deterministic_given_seeds() {
        let series = sine_series(120);
        let samples = make_windows(&series, 6);
        let (train, val) = samples.split_at(80);
        let run = || {
            let mut model = LstmForecaster::new(ForecasterConfig {
                history_len: 6,
                hidden_size: 5,
                num_layers: 1,
                seed: 9,
            });
            let trainer = Trainer::new(TrainOptions {
                batch_size: 100_000, // single full batch: order-independent sum
                max_epochs: 5,
                patience: 0,
                ..TrainOptions::default()
            });
            let mut opt = Adam::with_lr(1e-3);
            trainer.fit(&mut model, &mut opt, train, val);
            Trainer::evaluate(&model, val)
        };
        // Full-batch accumulation is still floating-point order dependent
        // under rayon, so compare within a tight tolerance rather than bitwise.
        let (a, b) = (run(), run());
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    #[test]
    fn lr_decay_schedule_still_learns() {
        let series = sine_series(160);
        let samples = make_windows(&series, 6);
        let (train, val) = samples.split_at(120);
        let mut model = LstmForecaster::new(ForecasterConfig {
            history_len: 6,
            hidden_size: 6,
            num_layers: 1,
            seed: 4,
        });
        let before = Trainer::evaluate(&model, val);
        let trainer = Trainer::new(TrainOptions {
            batch_size: 16,
            max_epochs: 30,
            patience: 10,
            lr_decay: 0.95,
            ..TrainOptions::default()
        });
        let mut opt = Adam::with_lr(8e-3);
        trainer.fit(&mut model, &mut opt, train, val);
        let after = Trainer::evaluate(&model, val);
        assert!(after < before * 0.3, "{before} -> {after}");
        // The schedule actually moved the optimizer's effective rate.
        assert!(opt.learning_rate() < 8e-3);
    }

    /// A scalar model whose first `nan_first_calls` gradient evaluations
    /// return non-finite loss/gradients; clones share the call counter so
    /// snapshots taken by the trainer do not reset the fault schedule.
    #[derive(Clone)]
    struct FlakyModel {
        w: Matrix,
        calls: std::sync::Arc<std::sync::atomic::AtomicU64>,
        nan_first_calls: u64,
    }

    impl FlakyModel {
        fn new(nan_first_calls: u64) -> Self {
            FlakyModel {
                w: Matrix::zeros(1, 1),
                calls: std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0)),
                nan_first_calls,
            }
        }
    }

    impl Trainable for FlakyModel {
        type Grads = Matrix;

        fn zero_grads(&self) -> Matrix {
            Matrix::zeros(1, 1)
        }
        fn sample_grads(&self, _window: &[f64], target: f64) -> (f64, Matrix) {
            let n = self.calls.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            if n < self.nan_first_calls {
                return (f64::NAN, Matrix::filled(1, 1, f64::NAN));
            }
            let d = self.w[(0, 0)] - target;
            (d * d, Matrix::filled(1, 1, 2.0 * d))
        }
        fn accumulate(into: &mut Matrix, other: &Matrix) {
            into.axpy(1.0, other).unwrap();
        }
        fn scale(grads: &mut Matrix, alpha: f64) {
            for v in grads.as_mut_slice() {
                *v *= alpha;
            }
        }
        fn clip(_grads: &mut Matrix, _max_norm: f64) -> bool {
            false
        }
        fn apply(&mut self, grads: &Matrix, opt: &mut dyn Optimizer) {
            opt.begin_step();
            opt.update(0, &mut self.w, grads);
        }
        fn predict(&self, _window: &[f64]) -> f64 {
            self.w[(0, 0)]
        }
    }

    fn flaky_samples(n: usize) -> Vec<Sample> {
        (0..n)
            .map(|_| Sample {
                window: vec![0.0],
                target: 0.5,
            })
            .collect()
    }

    #[test]
    fn watchdog_recovers_from_one_bad_epoch() {
        let train = flaky_samples(32);
        // Exactly the first epoch's gradient calls are non-finite.
        let mut model = FlakyModel::new(32);
        let trainer = Trainer::new(TrainOptions {
            batch_size: 32,
            max_epochs: 40,
            patience: 0,
            ..TrainOptions::default()
        });
        let mut opt = Adam::with_lr(0.2);
        let report = trainer.fit(&mut model, &mut opt, &train, &[]);
        assert_eq!(report.rollbacks, 1);
        assert!(!report.diverged);
        // Recovery resumed real training: the weight moved towards the
        // target despite the poisoned first epoch.
        assert!(model.predict(&[]).is_finite());
        assert!((model.predict(&[]) - 0.5).abs() < 0.2, "w = {}", model.predict(&[]));
        assert!(report.train_losses[0].is_nan());
        assert!(report.train_losses.last().unwrap().is_finite());
    }

    #[test]
    fn watchdog_declares_divergence_after_retry_budget() {
        let train = flaky_samples(16);
        // Every gradient call is non-finite: recovery can never succeed.
        let mut model = FlakyModel::new(u64::MAX);
        let trainer = Trainer::new(TrainOptions {
            batch_size: 16,
            max_epochs: 50,
            patience: 0,
            max_divergence_retries: 2,
            ..TrainOptions::default()
        });
        let mut opt = Adam::with_lr(0.1);
        let report = trainer.fit(&mut model, &mut opt, &train, &[]);
        assert!(report.diverged);
        assert_eq!(report.rollbacks, 2);
        // 2 recovered epochs + the terminal one.
        assert_eq!(report.epochs_run, 3);
        // The model was left on its last good snapshot (the initial
        // weights), not the poisoned ones.
        assert!(model.predict(&[]).is_finite());
    }

    #[test]
    fn injected_nan_loss_drives_run_to_divergence() {
        let _guard = ld_faultinject::test_lock();
        ld_faultinject::install(
            ld_faultinject::FaultConfig::new(11).with_site(
                ld_faultinject::FaultSite::NanLoss,
                1.0,
                None,
            ),
        );
        let train = flaky_samples(16);
        let mut model = FlakyModel::new(0); // model itself is healthy
        let trainer = Trainer::new(TrainOptions {
            batch_size: 16,
            max_epochs: 20,
            patience: 0,
            max_divergence_retries: 1,
            ..TrainOptions::default()
        })
        .with_fault_key(3);
        let mut opt = Adam::with_lr(0.1);
        let report = trainer.fit(&mut model, &mut opt, &train, &[]);
        ld_faultinject::reset();
        assert!(report.diverged, "rate-1.0 injection must afflict the run");
        assert_eq!(report.rollbacks, 1);
        // Without a fault key the same harness config leaves training alone.
        ld_faultinject::install(
            ld_faultinject::FaultConfig::new(11).with_site(
                ld_faultinject::FaultSite::NanLoss,
                1.0,
                None,
            ),
        );
        let mut clean = FlakyModel::new(0);
        let trainer = Trainer::new(TrainOptions {
            batch_size: 16,
            max_epochs: 20,
            patience: 0,
            ..TrainOptions::default()
        });
        let report = trainer.fit(&mut clean, &mut opt, &train, &[]);
        ld_faultinject::reset();
        assert!(!report.diverged);
        assert_eq!(report.rollbacks, 0);
    }

    #[test]
    #[should_panic(expected = "empty training set")]
    fn empty_training_set_panics() {
        let mut model = LstmForecaster::new(ForecasterConfig {
            history_len: 2,
            hidden_size: 2,
            num_layers: 1,
            seed: 0,
        });
        let trainer = Trainer::new(TrainOptions::default());
        let mut opt = Adam::with_lr(1e-3);
        trainer.fit(&mut model, &mut opt, &[], &[]);
    }
}
