//! A plain feed-forward autoregressor at the same parameter budget as the
//! LSTM forecaster.
//!
//! Section III-A of the paper argues LSTMs are needed because feed-forward
//! networks cannot track long-term dependencies; the `ablation_lstm_vs_dense`
//! experiment makes that claim measurable. The model is
//! `window -> Dense(tanh) -> Dense -> scalar`.

use ld_linalg::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::dense::{Dense, DenseGrads};
use crate::loss::squared_error_grad;
use crate::workspace;

/// Configuration for the feed-forward baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MlpConfig {
    /// Input window length (same role as the LSTM's history length).
    pub history_len: usize,
    /// Hidden layer width.
    pub hidden_size: usize,
    /// RNG seed for weight initialization.
    pub seed: u64,
}

/// Gradients for [`MlpForecaster`].
#[derive(Debug, Clone)]
pub struct MlpGrads {
    /// Hidden-layer gradients.
    pub l1: DenseGrads,
    /// Output-layer gradients.
    pub l2: DenseGrads,
}

impl MlpGrads {
    /// Accumulates another gradient set.
    pub fn accumulate(&mut self, other: &MlpGrads) {
        self.l1.accumulate(&other.l1);
        self.l2.accumulate(&other.l2);
    }

    /// Scales all gradients.
    pub fn scale(&mut self, alpha: f64) {
        self.l1.scale(alpha);
        self.l2.scale(alpha);
    }

    /// Global L2 norm across all tensors.
    pub fn global_norm(&self) -> f64 {
        (self.l1.dw.sum_squares()
            + self.l1.db.sum_squares()
            + self.l2.dw.sum_squares()
            + self.l2.db.sum_squares())
        .sqrt()
    }

    /// Clips the global norm. Returns whether clipping actually fired.
    pub fn clip_global_norm(&mut self, max_norm: f64) -> bool {
        let n = self.global_norm();
        if n > max_norm && n > 0.0 {
            self.scale(max_norm / n);
            return true;
        }
        false
    }
}

/// Two-layer tanh MLP mapping a window of past values to the next value.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MlpForecaster {
    config: MlpConfig,
    l1: Dense,
    l2: Dense,
}

impl MlpForecaster {
    /// Builds an MLP with freshly initialized weights.
    pub fn new(config: MlpConfig) -> Self {
        assert!(
            config.history_len > 0 && config.hidden_size > 0,
            "MLP dims must be positive"
        );
        let mut rng = StdRng::seed_from_u64(config.seed);
        MlpForecaster {
            config,
            l1: Dense::new(config.history_len, config.hidden_size, &mut rng),
            l2: Dense::new(config.hidden_size, 1, &mut rng),
        }
    }

    /// The configuration this model was built with.
    pub fn config(&self) -> &MlpConfig {
        &self.config
    }

    /// Total trainable scalars.
    pub fn param_count(&self) -> usize {
        self.l1.param_count() + self.l2.param_count()
    }

    /// Predicts the next value from a window.
    pub fn predict(&self, window: &[f64]) -> f64 {
        assert_eq!(window.len(), self.config.history_len, "window length");
        workspace::with_thread_workspace(|ws| {
            let h = self.config.hidden_size;
            ws.scratch_a.clear();
            ws.scratch_a.resize(h, 0.0);
            self.l1.forward_into(window, &mut ws.scratch_a);
            crate::activation::tanh_map(&mut ws.scratch_a);
            let mut out = [0.0f64; 1];
            self.l2.forward_into(&ws.scratch_a, &mut out);
            out[0]
        })
    }

    /// Computes the loss for one sample and *accumulates* its gradients
    /// into `grads`, reusing this thread's workspace buffers.
    pub fn sample_grads_into(&self, window: &[f64], target: f64, grads: &mut MlpGrads) -> f64 {
        assert_eq!(window.len(), self.config.history_len, "window length");
        workspace::with_thread_workspace(|ws| {
            let h = self.config.hidden_size;
            // scratch_a: hidden activations (tanh applied in place).
            ws.scratch_a.clear();
            ws.scratch_a.resize(h, 0.0);
            self.l1.forward_into(window, &mut ws.scratch_a);
            crate::activation::tanh_map(&mut ws.scratch_a);
            let mut out = [0.0f64; 1];
            self.l2.forward_into(&ws.scratch_a, &mut out);
            let pred = out[0];
            let loss = (pred - target) * (pred - target);
            let dpred = squared_error_grad(pred, target);

            // scratch_b: dhidden, then dpre in place.
            ws.scratch_b.clear();
            ws.scratch_b.resize(h, 0.0);
            self.l2
                .backward_into(&ws.scratch_a, &[dpred], &mut grads.l2, &mut ws.scratch_b);
            for (dp, hv) in ws.scratch_b.iter_mut().zip(&ws.scratch_a) {
                *dp *= 1.0 - hv * hv;
            }
            // scratch_c: discarded input gradient.
            ws.scratch_c.clear();
            ws.scratch_c.resize(window.len(), 0.0);
            self.l1
                .backward_into(window, &ws.scratch_b, &mut grads.l1, &mut ws.scratch_c);
            loss
        })
    }

    /// Squared-error loss and gradients for one sample.
    pub fn sample_grads(&self, window: &[f64], target: f64) -> (f64, MlpGrads) {
        let mut grads = self.zero_grads();
        let loss = self.sample_grads_into(window, target, &mut grads);
        (loss, grads)
    }

    /// Zeroed gradients matching this model.
    pub fn zero_grads(&self) -> MlpGrads {
        MlpGrads {
            l1: DenseGrads::zeros(self.config.hidden_size, self.config.history_len),
            l2: DenseGrads::zeros(1, self.config.hidden_size),
        }
    }

    /// Visits `(parameter, gradient)` pairs in fixed order.
    pub fn visit_params(&mut self, grads: &MlpGrads, f: &mut impl FnMut(&mut Matrix, &Matrix)) {
        self.l1.visit_params(&grads.l1, f);
        self.l2.visit_params(&grads.l2, f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MlpConfig {
        MlpConfig {
            history_len: 5,
            hidden_size: 4,
            seed: 7,
        }
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a = MlpForecaster::new(cfg());
        let b = MlpForecaster::new(cfg());
        let mut c2 = cfg();
        c2.seed = 8;
        let c = MlpForecaster::new(c2);
        let w = [0.1, 0.2, 0.3, 0.4, 0.5];
        assert_eq!(a.predict(&w), b.predict(&w));
        assert_ne!(a.predict(&w), c.predict(&w));
    }

    #[test]
    fn gradcheck_full_model() {
        let model = MlpForecaster::new(cfg());
        let w = [0.2, -0.1, 0.5, 0.3, -0.4];
        let target = 0.25;
        let (_, grads) = model.sample_grads(&w, target);

        let mut analytic = Vec::new();
        let mut m = model.clone();
        m.visit_params(&grads, &mut |_p, g| analytic.extend_from_slice(g.as_slice()));

        let zero = model.zero_grads();
        let eps = 1e-6;
        for slot in 0..model.param_count() {
            let mut plus = model.clone();
            let mut seen = 0;
            plus.visit_params(&zero, &mut |p, _| {
                let len = p.as_slice().len();
                if slot >= seen && slot < seen + len {
                    p.as_mut_slice()[slot - seen] += eps;
                }
                seen += len;
            });
            let mut minus = model.clone();
            seen = 0;
            minus.visit_params(&zero, &mut |p, _| {
                let len = p.as_slice().len();
                if slot >= seen && slot < seen + len {
                    p.as_mut_slice()[slot - seen] -= eps;
                }
                seen += len;
            });
            let lp = (plus.predict(&w) - target).powi(2);
            let lm = (minus.predict(&w) - target).powi(2);
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - analytic[slot]).abs() < 1e-6,
                "slot {slot}: fd {fd} vs {}",
                analytic[slot]
            );
        }
    }

    #[test]
    fn param_count() {
        let m = MlpForecaster::new(cfg());
        assert_eq!(m.param_count(), 4 * 6 + 5);
    }
}
