//! Scalar activation functions and their derivatives.
//!
//! The LSTM cell (paper Fig. 4) uses the logistic sigmoid for its three
//! gates and `tanh` for the candidate/output nonlinearity.

/// Logistic sigmoid, computed in a numerically stable branch-free-ish form.
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        let e = (-x).exp();
        1.0 / (1.0 + e)
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Derivative of the sigmoid expressed in terms of its output `s`.
#[inline]
pub fn sigmoid_deriv_from_output(s: f64) -> f64 {
    s * (1.0 - s)
}

/// Hyperbolic tangent (thin wrapper for symmetry with [`sigmoid`]).
#[inline]
pub fn tanh(x: f64) -> f64 {
    x.tanh()
}

/// Derivative of tanh expressed in terms of its output `t`.
#[inline]
pub fn tanh_deriv_from_output(t: f64) -> f64 {
    1.0 - t * t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_reference_values() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!((sigmoid(2.0) - 0.880797077977882).abs() < 1e-12);
        // Symmetry: sigma(-x) = 1 - sigma(x).
        for x in [-5.0, -1.0, 0.3, 4.0] {
            assert!((sigmoid(-x) - (1.0 - sigmoid(x))).abs() < 1e-12);
        }
    }

    #[test]
    fn sigmoid_stable_at_extremes() {
        assert_eq!(sigmoid(1000.0), 1.0);
        assert_eq!(sigmoid(-1000.0), 0.0);
        assert!(sigmoid(f64::MAX).is_finite());
        assert!(sigmoid(f64::MIN).is_finite());
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let eps = 1e-6;
        for x in [-3.0, -0.5, 0.0, 0.7, 2.5] {
            let fd_sig = (sigmoid(x + eps) - sigmoid(x - eps)) / (2.0 * eps);
            assert!((sigmoid_deriv_from_output(sigmoid(x)) - fd_sig).abs() < 1e-8);
            let fd_tanh = (tanh(x + eps) - tanh(x - eps)) / (2.0 * eps);
            assert!((tanh_deriv_from_output(tanh(x)) - fd_tanh).abs() < 1e-8);
        }
    }
}
