//! Scalar activation functions and their derivatives.
//!
//! The LSTM cell (paper Fig. 4) uses the logistic sigmoid for its three
//! gates and `tanh` for the candidate/output nonlinearity.
//!
//! Both nonlinearities are built on a branch-free polynomial `exp`
//! ([`fast_exp`]) rather than libm calls: the transcendentals dominate the
//! LSTM step cost (the matrix work is a few ns per cell, a libm `tanh` is
//! ~20 ns), and the branch-free form lets the compiler auto-vectorize the
//! slice-mapped variants ([`sigmoid_map`], [`tanh_map`]) used by the fused
//! batch kernel. Every forward path — scalar, workspace, and batched —
//! calls these same functions, so cross-path equivalence is preserved by
//! construction. Accuracy is ~1 ulp for `exp`/`sigmoid` and < 4e-13
//! absolute for `tanh` (see the tests), far below training noise.

const LOG2E: f64 = std::f64::consts::LOG2_E;
// ln(2) split hi/lo for Cody-Waite argument reduction.
const LN2_HI: f64 = 6.931_471_803_691_238e-1;
const LN2_LO: f64 = 1.908_214_929_270_587_7e-10;
// 1.5 * 2^52: adding it rounds to the nearest integer in the low mantissa
// bits, giving round-to-nearest without an f64 -> i64 cast (which would
// block SSE2 auto-vectorization).
const SHIFT: f64 = 6_755_399_441_055_744.0;

/// Branch-free `e^x`, exact to ~1 ulp over the clamped range.
///
/// Cody-Waite reduction `x = k*ln2 + r`, degree-12 Horner polynomial for
/// `e^r`, and a bit-trick scale by `2^k` recovered from the shifted
/// round-to-nearest value. Inputs are clamped to ±700 so the scale never
/// overflows; `exp(-700) ~ 1e-304` is indistinguishable from 0 for every
/// consumer here.
#[inline(always)]
pub fn fast_exp(x: f64) -> f64 {
    let x = x.clamp(-700.0, 700.0);
    let zs = x * LOG2E + SHIFT;
    let kf = zs - SHIFT;
    let r = (x - kf * LN2_HI) - kf * LN2_LO;
    // Plain mul+add on purpose: without the FMA target feature,
    // `f64::mul_add` lowers to a correctly-rounded libm call (~40 ns).
    // Estrin's scheme rather than Horner: the tree regroups the Taylor sum
    // into independent sub-polynomials so the ~4-cycle mul/add chains
    // overlap, where Horner's single serial chain leaves the FP ports idle
    // (~30% faster in the slice maps at identical accuracy).
    let r2 = r * r;
    let r4 = r2 * r2;
    let r8 = r4 * r4;
    let q0 = (1.0 + r) + r2 * (5.0e-1 + 1.666_666_666_666_666_6e-1 * r);
    let q1 = (4.166_666_666_666_666_4e-2 + 8.333_333_333_333_333e-3 * r)
        + r2 * (1.388_888_888_888_889e-3 + 1.984_126_984_126_984e-4 * r);
    let q2 = (2.480_158_730_158_73e-5 + 2.755_731_922_398_589_3e-6 * r)
        + r2 * (2.755_731_922_398_589e-7 + 2.505_210_838_544_172e-8 * r);
    let q3 = 2.087_675_698_786_81e-9; // 1/12!
    let p = (q0 + q1 * r4) + (q2 + q3 * r4) * r8;
    // zs still holds k in its low mantissa bits; subtracting SHIFT's bits
    // yields two's-complement k, from which 2^k is assembled directly.
    let k_bits = zs.to_bits().wrapping_sub(SHIFT.to_bits());
    let scale = f64::from_bits(k_bits.wrapping_add(1023).wrapping_shl(52));
    scale * p
}

/// Logistic sigmoid, computed in a numerically stable branch-free form.
#[inline(always)]
pub fn sigmoid(x: f64) -> f64 {
    let e = fast_exp(-x.abs());
    let num = if x >= 0.0 { 1.0 } else { e };
    num / (1.0 + e)
}

/// Derivative of the sigmoid expressed in terms of its output `s`.
#[inline]
pub fn sigmoid_deriv_from_output(s: f64) -> f64 {
    s * (1.0 - s)
}

/// Hyperbolic tangent.
///
/// Small arguments (|x| <= 0.17) use an odd Taylor polynomial (avoids the
/// catastrophic cancellation of `(1-e)/(1+e)` near 0); larger ones use the
/// exp form. Both branches are always evaluated so the select vectorizes.
#[inline(always)]
pub fn tanh(x: f64) -> f64 {
    let a = x.abs();
    let x2 = x * x;
    let mut q = -8.863_235_529_902_197e-3_f64; // -1382/155925
    q = q * x2 + 2.186_948_853_615_520_2e-2; // 62/2835
    q = q * x2 + -5.396_825_396_825_397e-2; // -17/315
    q = q * x2 + 1.333_333_333_333_333_3e-1; // 2/15
    q = q * x2 + -3.333_333_333_333_333e-1; // -1/3
    let t_small = x + x * (x2 * q);
    let e = fast_exp(-2.0 * a);
    let t_big_abs = (1.0 - e) / (1.0 + e);
    let t_big = if x >= 0.0 { t_big_abs } else { -t_big_abs };
    if a <= 0.17 {
        t_small
    } else {
        t_big
    }
}

/// Derivative of tanh expressed in terms of its output `t`.
#[inline]
pub fn tanh_deriv_from_output(t: f64) -> f64 {
    1.0 - t * t
}

/// Applies [`sigmoid`] to every element in place.
///
/// A single non-inlined call site over a contiguous slice: the branch-free
/// body auto-vectorizes here (2-wide SSE2 at the baseline target), which
/// inlining four copies into an interleaved gate loop defeats.
#[inline(never)]
pub fn sigmoid_map(xs: &mut [f64]) {
    for x in xs.iter_mut() {
        *x = sigmoid(*x);
    }
}

/// Applies [`tanh`] to every element in place. See [`sigmoid_map`].
#[inline(never)]
pub fn tanh_map(xs: &mut [f64]) {
    for x in xs.iter_mut() {
        *x = tanh(*x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_reference_values() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!((sigmoid(2.0) - 0.880797077977882).abs() < 1e-12);
        // Symmetry: sigma(-x) = 1 - sigma(x).
        for x in [-5.0, -1.0, 0.3, 4.0] {
            assert!((sigmoid(-x) - (1.0 - sigmoid(x))).abs() < 1e-12);
        }
    }

    #[test]
    fn sigmoid_stable_at_extremes() {
        assert_eq!(sigmoid(1000.0), 1.0);
        // The exp clamp floors at e^-700 ~ 1e-304, not exactly 0.
        assert!(sigmoid(-1000.0) <= 1e-300);
        assert!(sigmoid(f64::MAX).is_finite());
        assert!(sigmoid(f64::MIN).is_finite());
    }

    #[test]
    fn fast_exp_matches_libm_to_ulps() {
        let mut worst = 0.0_f64;
        let mut x = -60.0;
        while x <= 60.0 {
            let got = fast_exp(x);
            let want = x.exp();
            let rel = ((got - want) / want).abs();
            worst = worst.max(rel);
            x += 0.001_7;
        }
        assert!(worst < 5e-16, "fast_exp worst rel err {worst:e}");
    }

    #[test]
    fn tanh_matches_libm() {
        let mut worst = 0.0_f64;
        let mut x = -20.0;
        while x <= 20.0 {
            let diff = (tanh(x) - x.tanh()).abs();
            worst = worst.max(diff);
            x += 0.000_9;
        }
        assert!(worst < 4e-13, "tanh worst abs err {worst:e}");
        assert_eq!(tanh(0.0), 0.0);
        assert_eq!(tanh(1e9), 1.0);
        assert_eq!(tanh(-1e9), -1.0);
    }

    #[test]
    fn tanh_is_odd_exactly() {
        let mut x = 0.0;
        while x <= 5.0 {
            assert_eq!(tanh(-x), -tanh(x));
            x += 0.01;
        }
    }

    #[test]
    fn map_variants_match_scalar_exactly() {
        let xs: Vec<f64> = (0..257).map(|i| (i as f64 - 128.0) * 0.073).collect();
        let mut s = xs.clone();
        sigmoid_map(&mut s);
        let mut t = xs.clone();
        tanh_map(&mut t);
        for (i, &x) in xs.iter().enumerate() {
            assert_eq!(s[i], sigmoid(x));
            assert_eq!(t[i], tanh(x));
        }
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let eps = 1e-6;
        for x in [-3.0, -0.5, 0.0, 0.7, 2.5] {
            let fd_sig = (sigmoid(x + eps) - sigmoid(x - eps)) / (2.0 * eps);
            assert!((sigmoid_deriv_from_output(sigmoid(x)) - fd_sig).abs() < 1e-8);
            let fd_tanh = (tanh(x + eps) - tanh(x - eps)) / (2.0 * eps);
            assert!((tanh_deriv_from_output(tanh(x)) - fd_tanh).abs() < 1e-8);
        }
    }
}
