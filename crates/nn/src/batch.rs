//! Fused batched inference: one GEMM per gate block across a whole batch
//! of same-model windows.
//!
//! The serving engine groups tenants whose predictors share identical
//! weights (one trained model per workload family) and answers them per
//! tick. Running [`crate::LstmForecaster::predict`] per tenant performs a
//! mat-vec per step per tenant; this module instead holds the batch state
//! transposed — hidden and cell state as `H x B` matrices — so each step is
//!
//! ```text
//! Z  = W · X_t  +  U · H_state  + b      (two real GEMMs, 4H x B)
//! ```
//!
//! with the four gate blocks landing as contiguous row ranges of `Z`:
//! rows `0..3H` are the sigmoid gates `[i|f|o]` (one [`sigmoid_map`] pass),
//! rows `3H..4H` the candidate `g` (one [`tanh_map`] pass), and the cell /
//! hidden updates are pure `B`-wide vector ops.
//!
//! Equivalence is by construction, not by tolerance: the register-blocked
//! packed-A GEMM ([`ld_linalg::pack::PackedA::matmul_into`], plain
//! multiply/add lanes) accumulates each output through a single
//! ascending-`k` accumulator exactly like the sequential dots of the
//! retained reference path, the combine order `(Wx + Uh) + b` matches both
//! scalar paths, and the activations are the same shared functions every
//! other path calls. The fused kernel therefore agrees **bitwise** with
//! [`crate::LstmForecaster::predict_reference`] and within ~1e-12
//! reordered-summation noise with the workspace
//! [`crate::LstmForecaster::predict`] path (whose fused gate step chains
//! the `W`/`U`/`b` terms differently). The weight panels are packed once
//! per model ([`crate::lstm::LstmLayer::packed_input_weights`]) and
//! invalidated on parameter updates; the activations are consumed
//! row-major by the register-blocked kernel, so nothing is packed or allocated per step.

use ld_linalg::Matrix;

use crate::activation::{sigmoid_map, tanh_map};
use crate::forecaster::LstmForecaster;

/// Reusable buffers for [`LstmForecaster::predict_batch_fused`]. Grown on
/// first use per `(model shape, batch)` and reused across ticks —
/// allocation-free once warm.
#[derive(Debug)]
pub struct BatchScratch {
    /// Layer-0 input row for the current step, `1 x B`.
    x0: Matrix,
    /// Per-layer hidden state, `H x B` each.
    h: Vec<Matrix>,
    /// Per-layer cell state, flat `H * B` each.
    c: Vec<Vec<f64>>,
    /// Pre-activations / gates for the current layer+step, flat `4H * B`.
    z: Vec<f64>,
    /// Shape the buffers are currently sized for.
    sized_for: (usize, usize, usize),
}

impl Default for BatchScratch {
    fn default() -> Self {
        BatchScratch {
            x0: Matrix::zeros(1, 1),
            h: Vec::new(),
            c: Vec::new(),
            z: Vec::new(),
            sized_for: (0, 0, 0),
        }
    }
}

impl BatchScratch {
    /// Fresh, empty scratch (sized lazily by the first batched call).
    pub fn new() -> Self {
        Self::default()
    }

    /// Resizes for `model` at `batch` lanes and zeroes the recurrent state.
    fn reset(&mut self, model: &LstmForecaster, batch: usize) {
        let cfg = model.config();
        let (h_dim, layers) = (cfg.hidden_size, cfg.num_layers);
        if self.sized_for != (h_dim, layers, batch) {
            self.x0 = Matrix::zeros(1, batch);
            self.h = (0..layers).map(|_| Matrix::zeros(h_dim, batch)).collect();
            self.c = (0..layers).map(|_| vec![0.0; h_dim * batch]).collect();
            self.z = vec![0.0; 4 * h_dim * batch];
            self.sized_for = (h_dim, layers, batch);
        } else {
            for hl in &mut self.h {
                hl.as_mut_slice().fill(0.0);
            }
            for cl in &mut self.c {
                cl.fill(0.0);
            }
        }
    }
}

impl LstmForecaster {
    /// Predicts one value per batch lane with the fused per-gate GEMM
    /// kernel. `windows` is `batch x history_len` row-major (each lane's
    /// window contiguous); `out` receives one prediction per lane.
    ///
    /// All lanes run through *this* model's weights — callers batch tenants
    /// that share a trained model and keep per-tenant scaling outside.
    ///
    /// # Panics
    /// Panics if `windows.len() != batch * history_len` or
    /// `out.len() != batch`.
    pub fn predict_batch_fused(
        &self,
        windows: &[f64],
        batch: usize,
        scratch: &mut BatchScratch,
        out: &mut [f64],
    ) {
        let t_len = self.config().history_len;
        let h_dim = self.config().hidden_size;
        assert_eq!(windows.len(), batch * t_len, "batch windows length");
        assert_eq!(out.len(), batch, "batch output length");
        if batch == 0 {
            return;
        }
        scratch.reset(self, batch);
        let BatchScratch {
            x0, h, c, z, ..
        } = scratch;

        for t in 0..t_len {
            // Gather this step's input across lanes: X_t is 1 x B.
            for j in 0..batch {
                x0[(0, j)] = windows[j * t_len + t];
            }
            for (l, layer) in self.layers().iter().enumerate() {
                let (below, from_l) = h.split_at_mut(l);
                let x: &Matrix = if l == 0 { x0 } else { &below[l - 1] };
                let h_l = &mut from_l[0];
                let c_l = &mut c[l];

                // Z = (W·X_t + U·H) + b — same combine order as the scalar
                // paths' `dot(w,x) + dot(u,h) + b`, driven by the register-blocked
                // packed-A kernel over the per-model cached weight panels.
                // The recurrent product accumulates into Z with the bias
                // folded at store time (one pass over the gate slab
                // instead of three).
                layer.packed_input_weights().matmul_into(x, z);
                layer.packed_recurrent_weights().matmul_acc_bias_into(
                    h_l,
                    layer.bias().as_slice(),
                    z,
                );
                // Gate blocks are contiguous rows: [i|f|o] then [g].
                sigmoid_map(&mut z[..3 * h_dim * batch]);
                tanh_map(&mut z[3 * h_dim * batch..]);

                // C = f.C + i.g ; H = o.tanh(C) — one fused B-wide pass
                // per cell row. `tanh` is the same branch-free scalar the
                // map variant applies, evaluated inline so the new cell
                // value never round-trips through a temporary slab.
                for k in 0..h_dim {
                    let i_row = &z[k * batch..(k + 1) * batch];
                    let f_row = &z[(h_dim + k) * batch..(h_dim + k + 1) * batch];
                    let o_row = &z[(2 * h_dim + k) * batch..(2 * h_dim + k + 1) * batch];
                    let g_row = &z[(3 * h_dim + k) * batch..(3 * h_dim + k + 1) * batch];
                    let c_row = &mut c_l[k * batch..(k + 1) * batch];
                    let h_row = h_l.row_mut(k);
                    for j in 0..batch {
                        let cv = f_row[j] * c_row[j] + i_row[j] * g_row[j];
                        c_row[j] = cv;
                        h_row[j] = o_row[j] * crate::activation::tanh(cv);
                    }
                }
            }
        }

        // Head: one 1 x B GEMM over the top layer's final hidden state,
        // then the bias — matching `dot(w, h) + b`.
        let top = &h[h.len() - 1];
        self.head().weights().matmul_into(top, out);
        let hb = self.head().bias()[(0, 0)];
        for o in out.iter_mut() {
            *o += hb;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ForecasterConfig;

    fn model(seed: u64, layers: usize) -> LstmForecaster {
        LstmForecaster::new(ForecasterConfig {
            history_len: 12,
            hidden_size: 6,
            num_layers: layers,
            seed,
        })
    }

    fn windows(batch: usize, t_len: usize, salt: f64) -> Vec<f64> {
        (0..batch * t_len)
            .map(|i| ((i as f64 * 0.37 + salt).sin() + 1.0) * 0.5)
            .collect()
    }

    #[test]
    fn fused_matches_reference_path_bitwise() {
        for layers in [1usize, 2] {
            let m = model(11 + layers as u64, layers);
            let t_len = m.config().history_len;
            for batch in [1usize, 3, 17] {
                let ws = windows(batch, t_len, layers as f64);
                let mut scratch = BatchScratch::new();
                let mut out = vec![0.0; batch];
                m.predict_batch_fused(&ws, batch, &mut scratch, &mut out);
                for j in 0..batch {
                    let want = m.predict_reference(&ws[j * t_len..(j + 1) * t_len]);
                    assert_eq!(out[j], want, "lane {j} (layers {layers}, batch {batch})");
                }
            }
        }
    }

    #[test]
    fn fused_matches_workspace_path_to_1e12() {
        let m = model(29, 2);
        let t_len = m.config().history_len;
        let batch = 9;
        let ws = windows(batch, t_len, 0.9);
        let mut scratch = BatchScratch::new();
        let mut out = vec![0.0; batch];
        m.predict_batch_fused(&ws, batch, &mut scratch, &mut out);
        for j in 0..batch {
            let want = m.predict(&ws[j * t_len..(j + 1) * t_len]);
            assert!(
                (out[j] - want).abs() <= 1e-12 * (1.0 + want.abs()),
                "lane {j}: {} vs {}",
                out[j],
                want
            );
        }
    }

    #[test]
    fn scratch_reuse_is_stateless() {
        let m = model(5, 1);
        let t_len = m.config().history_len;
        let mut scratch = BatchScratch::new();

        // Dirty the scratch with one batch size / content...
        let ws_a = windows(8, t_len, 3.3);
        let mut out_a = vec![0.0; 8];
        m.predict_batch_fused(&ws_a, 8, &mut scratch, &mut out_a);

        // ...then a different batch through the same scratch must equal a
        // fresh-scratch run exactly.
        let ws_b = windows(3, t_len, 7.7);
        let mut out_warm = vec![0.0; 3];
        m.predict_batch_fused(&ws_b, 3, &mut scratch, &mut out_warm);
        let mut out_cold = vec![0.0; 3];
        m.predict_batch_fused(&ws_b, 3, &mut BatchScratch::new(), &mut out_cold);
        assert_eq!(out_warm, out_cold);

        // Same-size reuse must also be stateless (the zero-state reset).
        let mut out_again = vec![0.0; 3];
        m.predict_batch_fused(&ws_b, 3, &mut scratch, &mut out_again);
        assert_eq!(out_again, out_cold);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let m = model(1, 1);
        let mut scratch = BatchScratch::new();
        let mut out: Vec<f64> = Vec::new();
        m.predict_batch_fused(&[], 0, &mut scratch, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "batch windows length")]
    fn mismatched_windows_panic() {
        let m = model(1, 1);
        let mut scratch = BatchScratch::new();
        let mut out = vec![0.0; 2];
        m.predict_batch_fused(&[0.1; 5], 2, &mut scratch, &mut out);
    }
}
