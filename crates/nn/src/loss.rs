//! Loss functions. The paper trains with mean squared error.

/// Mean squared error over a batch of (prediction, target) pairs.
///
/// Returns `0.0` for empty input.
pub fn mse(preds: &[f64], targets: &[f64]) -> f64 {
    assert_eq!(preds.len(), targets.len(), "mse length mismatch");
    if preds.is_empty() {
        return 0.0;
    }
    preds
        .iter()
        .zip(targets)
        .map(|(p, t)| (p - t) * (p - t))
        .sum::<f64>()
        / preds.len() as f64
}

/// Gradient of the *squared error of a single sample* w.r.t. the prediction:
/// `d/dp (p - t)^2 = 2 (p - t)`.
///
/// The trainer averages per-sample gradients itself, so this is deliberately
/// the un-averaged form.
#[inline]
pub fn squared_error_grad(pred: f64, target: f64) -> f64 {
    2.0 * (pred - target)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_reference() {
        assert_eq!(mse(&[1.0, 2.0], &[1.0, 4.0]), 2.0);
        assert_eq!(mse(&[], &[]), 0.0);
        assert_eq!(mse(&[3.0], &[3.0]), 0.0);
    }

    #[test]
    fn grad_matches_finite_difference() {
        let (p, t): (f64, f64) = (1.7, -0.4);
        let eps = 1e-7;
        let fd = ((p + eps - t).powi(2) - (p - eps - t).powi(2)) / (2.0 * eps);
        assert!((squared_error_grad(p, t) - fd).abs() < 1e-6);
    }

    #[test]
    fn mse_nonnegative() {
        assert!(mse(&[1.0, -5.0, 3.0], &[0.0, 5.0, 3.0]) >= 0.0);
    }
}
