//! Property-based tests for the neural-network substrate: gradient
//! correctness on random architectures, training monotonicity, and
//! structural invariants.

use ld_nn::forecaster::{ForecasterConfig, LstmForecaster};
use ld_nn::mlp::{MlpConfig, MlpForecaster};
use ld_nn::{make_windows, Adam, Sample, TrainOptions, Trainer};
use proptest::prelude::*;

fn small_window() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1.0..1.0f64, 3..6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Analytic gradients match finite differences for random tiny LSTMs,
    /// random windows and random targets — the backprop-through-time
    /// implementation must be exact everywhere, not just at one test point.
    #[test]
    fn lstm_gradcheck_random_configs(
        window in small_window(),
        target in -1.0..1.0f64,
        hidden in 1usize..4,
        layers in 1usize..3,
        seed in 0u64..1000,
    ) {
        let model = LstmForecaster::new(ForecasterConfig {
            history_len: window.len(),
            hidden_size: hidden,
            num_layers: layers,
            seed,
        });
        let (_, grads) = model.sample_grads(&window, target);

        let mut analytic = Vec::new();
        let mut m = model.clone();
        m.visit_params(&grads, &mut |_p, g| analytic.extend_from_slice(g.as_slice()));

        let zero = model.zero_grads();
        let eps = 1e-5;
        // Spot-check a deterministic subset of parameters (full sweep per
        // case would dominate the suite).
        let n = model.param_count();
        let step = (n / 12).max(1);
        for slot in (0..n).step_by(step) {
            let perturb = |dir: f64| {
                let mut p = model.clone();
                let mut seen = 0usize;
                p.visit_params(&zero, &mut |t, _| {
                    let len = t.as_slice().len();
                    if slot >= seen && slot < seen + len {
                        t.as_mut_slice()[slot - seen] += dir * eps;
                    }
                    seen += len;
                });
                let pred = p.predict(&window);
                (pred - target) * (pred - target)
            };
            let fd = (perturb(1.0) - perturb(-1.0)) / (2.0 * eps);
            prop_assert!(
                (fd - analytic[slot]).abs() < 1e-5,
                "slot {slot}: fd {fd} vs analytic {}", analytic[slot]
            );
        }
    }

    /// Predictions are invariant under cloning and deterministic.
    #[test]
    fn lstm_prediction_deterministic(window in small_window(), seed in 0u64..1000) {
        let model = LstmForecaster::new(ForecasterConfig {
            history_len: window.len(),
            hidden_size: 3,
            num_layers: 1,
            seed,
        });
        prop_assert_eq!(model.predict(&window), model.clone().predict(&window));
    }

    /// One optimizer step on a single sample reduces that sample's loss
    /// (small-step descent property).
    #[test]
    fn single_sample_step_descends(
        window in small_window(),
        target in -0.8..0.8f64,
        seed in 0u64..500,
    ) {
        let mut model = LstmForecaster::new(ForecasterConfig {
            history_len: window.len(),
            hidden_size: 3,
            num_layers: 1,
            seed,
        });
        let (loss_before, grads) = model.sample_grads(&window, target);
        prop_assume!(loss_before > 1e-10);
        let trainer_step = |m: &mut LstmForecaster| {
            use ld_nn::trainer::Trainable;
            let mut opt = ld_nn::Sgd::new(1e-3);
            m.apply(&grads, &mut opt);
        };
        trainer_step(&mut model);
        let (loss_after, _) = model.sample_grads(&window, target);
        prop_assert!(
            loss_after <= loss_before + 1e-12,
            "{loss_before} -> {loss_after}"
        );
    }

    /// The MLP's gradcheck, same style.
    #[test]
    fn mlp_gradcheck_random_configs(
        window in small_window(),
        target in -1.0..1.0f64,
        hidden in 1usize..6,
        seed in 0u64..1000,
    ) {
        let model = MlpForecaster::new(MlpConfig {
            history_len: window.len(),
            hidden_size: hidden,
            seed,
        });
        let (_, grads) = model.sample_grads(&window, target);
        let mut analytic = Vec::new();
        let mut m = model.clone();
        m.visit_params(&grads, &mut |_p, g| analytic.extend_from_slice(g.as_slice()));
        let zero = model.zero_grads();
        let eps = 1e-6;
        for slot in (0..model.param_count()).step_by(3) {
            let perturb = |dir: f64| {
                let mut p = model.clone();
                let mut seen = 0usize;
                p.visit_params(&zero, &mut |t, _| {
                    let len = t.as_slice().len();
                    if slot >= seen && slot < seen + len {
                        t.as_mut_slice()[slot - seen] += dir * eps;
                    }
                    seen += len;
                });
                let pred = p.predict(&window);
                (pred - target) * (pred - target)
            };
            let fd = (perturb(1.0) - perturb(-1.0)) / (2.0 * eps);
            prop_assert!((fd - analytic[slot]).abs() < 1e-5);
        }
    }

    /// Training on any bounded series never produces non-finite weights or
    /// predictions (gradient clipping at work).
    #[test]
    fn training_stays_finite(values in proptest::collection::vec(0.0..1.0f64, 30..80)) {
        let n = 4;
        let samples: Vec<Sample> = make_windows(&values, n);
        prop_assume!(samples.len() >= 8);
        let mut model = LstmForecaster::new(ForecasterConfig {
            history_len: n,
            hidden_size: 4,
            num_layers: 1,
            seed: 0,
        });
        let trainer = Trainer::new(TrainOptions {
            batch_size: 8,
            max_epochs: 3,
            patience: 0,
            ..TrainOptions::default()
        });
        let mut opt = Adam::with_lr(1e-2);
        trainer.fit(&mut model, &mut opt, &samples, &[]);
        let pred = model.predict(&samples[0].window);
        prop_assert!(pred.is_finite());
    }
}
