//! Randomized property tests for the neural-network substrate: gradient
//! correctness on random architectures, descent behavior, and structural
//! invariants. Seeded-loop style: each property runs over a fixed number
//! of randomly generated cases so failures reproduce exactly.

use ld_nn::forecaster::{ForecasterConfig, LstmForecaster};
use ld_nn::mlp::{MlpConfig, MlpForecaster};
use ld_nn::{make_windows, Adam, Sample, TrainOptions, Trainer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn small_window(rng: &mut StdRng) -> Vec<f64> {
    let len = rng.gen_range(3..6usize);
    (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

/// Analytic gradients match finite differences for random tiny LSTMs,
/// random windows and random targets — the backprop-through-time
/// implementation must be exact everywhere, not just at one test point.
#[test]
fn lstm_gradcheck_random_configs() {
    let mut rng = StdRng::seed_from_u64(0x22B1);
    for _ in 0..12 {
        let window = small_window(&mut rng);
        let target = rng.gen_range(-1.0..1.0);
        let hidden = rng.gen_range(1..4usize);
        let layers = rng.gen_range(1..3usize);
        let seed = rng.gen_range(0..1000u64);
        let model = LstmForecaster::new(ForecasterConfig {
            history_len: window.len(),
            hidden_size: hidden,
            num_layers: layers,
            seed,
        });
        let (_, grads) = model.sample_grads(&window, target);

        let mut analytic = Vec::new();
        let mut m = model.clone();
        m.visit_params(&grads, &mut |_p, g| analytic.extend_from_slice(g.as_slice()));

        let zero = model.zero_grads();
        let eps = 1e-5;
        // Spot-check a deterministic subset of parameters (full sweep per
        // case would dominate the suite).
        let n = model.param_count();
        let step = (n / 12).max(1);
        for slot in (0..n).step_by(step) {
            let perturb = |dir: f64| {
                let mut p = model.clone();
                let mut seen = 0usize;
                p.visit_params(&zero, &mut |t, _| {
                    let len = t.as_slice().len();
                    if slot >= seen && slot < seen + len {
                        t.as_mut_slice()[slot - seen] += dir * eps;
                    }
                    seen += len;
                });
                let pred = p.predict(&window);
                (pred - target) * (pred - target)
            };
            let fd = (perturb(1.0) - perturb(-1.0)) / (2.0 * eps);
            assert!(
                (fd - analytic[slot]).abs() < 1e-5,
                "slot {slot}: fd {fd} vs analytic {}",
                analytic[slot]
            );
        }
    }
}

/// Predictions are invariant under cloning and deterministic.
#[test]
fn lstm_prediction_deterministic() {
    let mut rng = StdRng::seed_from_u64(0x22B2);
    for _ in 0..24 {
        let window = small_window(&mut rng);
        let seed = rng.gen_range(0..1000u64);
        let model = LstmForecaster::new(ForecasterConfig {
            history_len: window.len(),
            hidden_size: 3,
            num_layers: 1,
            seed,
        });
        assert_eq!(model.predict(&window), model.clone().predict(&window));
    }
}

/// One optimizer step on a single sample reduces that sample's loss
/// (small-step descent property).
#[test]
fn single_sample_step_descends() {
    let mut rng = StdRng::seed_from_u64(0x22B3);
    for _ in 0..24 {
        let window = small_window(&mut rng);
        let target = rng.gen_range(-0.8..0.8);
        let seed = rng.gen_range(0..500u64);
        let mut model = LstmForecaster::new(ForecasterConfig {
            history_len: window.len(),
            hidden_size: 3,
            num_layers: 1,
            seed,
        });
        let (loss_before, grads) = model.sample_grads(&window, target);
        if loss_before <= 1e-10 {
            continue; // already at the optimum; nothing to descend
        }
        {
            use ld_nn::trainer::Trainable;
            let mut opt = ld_nn::Sgd::new(1e-3);
            model.apply(&grads, &mut opt);
        }
        let (loss_after, _) = model.sample_grads(&window, target);
        assert!(
            loss_after <= loss_before + 1e-12,
            "{loss_before} -> {loss_after}"
        );
    }
}

/// The MLP's gradcheck, same style.
#[test]
fn mlp_gradcheck_random_configs() {
    let mut rng = StdRng::seed_from_u64(0x22B4);
    for _ in 0..12 {
        let window = small_window(&mut rng);
        let target = rng.gen_range(-1.0..1.0);
        let hidden = rng.gen_range(1..6usize);
        let seed = rng.gen_range(0..1000u64);
        let model = MlpForecaster::new(MlpConfig {
            history_len: window.len(),
            hidden_size: hidden,
            seed,
        });
        let (_, grads) = model.sample_grads(&window, target);
        let mut analytic = Vec::new();
        let mut m = model.clone();
        m.visit_params(&grads, &mut |_p, g| analytic.extend_from_slice(g.as_slice()));
        let zero = model.zero_grads();
        let eps = 1e-6;
        for slot in (0..model.param_count()).step_by(3) {
            let perturb = |dir: f64| {
                let mut p = model.clone();
                let mut seen = 0usize;
                p.visit_params(&zero, &mut |t, _| {
                    let len = t.as_slice().len();
                    if slot >= seen && slot < seen + len {
                        t.as_mut_slice()[slot - seen] += dir * eps;
                    }
                    seen += len;
                });
                let pred = p.predict(&window);
                (pred - target) * (pred - target)
            };
            let fd = (perturb(1.0) - perturb(-1.0)) / (2.0 * eps);
            assert!((fd - analytic[slot]).abs() < 1e-5);
        }
    }
}

/// Training on any bounded series never produces non-finite weights or
/// predictions (gradient clipping at work).
#[test]
fn training_stays_finite() {
    let mut rng = StdRng::seed_from_u64(0x22B5);
    for _ in 0..6 {
        let len = rng.gen_range(30..80usize);
        let values: Vec<f64> = (0..len).map(|_| rng.gen_range(0.0..1.0)).collect();
        let n = 4;
        let samples: Vec<Sample> = make_windows(&values, n);
        assert!(samples.len() >= 8);
        let mut model = LstmForecaster::new(ForecasterConfig {
            history_len: n,
            hidden_size: 4,
            num_layers: 1,
            seed: 0,
        });
        let trainer = Trainer::new(TrainOptions {
            batch_size: 8,
            max_epochs: 3,
            patience: 0,
            ..TrainOptions::default()
        });
        let mut opt = Adam::with_lr(1e-2);
        trainer.fit(&mut model, &mut opt, &samples, &[]);
        let pred = model.predict(&samples[0].window);
        assert!(pred.is_finite());
    }
}
