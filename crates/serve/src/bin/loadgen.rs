//! `ld-loadgen` — replays the five Table I trace families against the
//! serving engine at a configurable tenant count and writes the stable,
//! schema-checked `BENCH_serve.json`.
//!
//! Phases:
//! 1. **Train**: one LSTM per trace family (tenants of a family share
//!    weights — which is exactly what makes them batchable).
//! 2. **Throughput**: the identical request schedule is answered twice —
//!    once on the retained per-tenant serial path, once on the fused
//!    batched path — and the speedup between the two is the headline
//!    number. Every serial/batched response pair is equivalence-checked to
//!    1e-9 relative before any timing is trusted.
//! 3. **Determinism**: two identically-seeded traced runs must produce
//!    bitwise-identical response streams (FNV digest) and identical
//!    logical span trees.
//! 4. **Overload**: a half-capacity admission queue sheds deterministically;
//!    the shed rate is recorded and no request may be both shed and
//!    answered.
//! 5. **Cache**: a capacity-constrained registry forces LRU spills and lazy
//!    rehydrations under a skewed access pattern; the hit rate is recorded.
//!
//! Modes: full (default, writes `BENCH_serve.json` + a provenance
//! manifest) and `--smoke` (tiny counts, all checks, writes nothing unless
//! `--out` is given — wired into `scripts/ci.sh`). `--check PATH` validates
//! an existing document against the schema and exits.
//!
//! `--chaos` switches to the resilience soak: a fault-free baseline pass
//! records every tenant's model-path answer bits, then two identically-
//! seeded chaos passes replay the same schedule under a seed-keyed
//! [`ChaosSchedule`] (slow shards, snapshot corruption, crash-torn spills,
//! NaN-poisoned batches, burst overload) and must (a) answer or explicitly
//! shed every request — availability ≥ 99%, no hangs, (b) leave every
//! unaffected tenant's model-path bits identical to the baseline, and
//! (c) agree bitwise with each other (digest + span tree). The result is
//! the schema-checked `BENCH_resilience.json`.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

use std::path::PathBuf;

// Wall-clock reads below time *how long* passes take; they never influence
// *what* any response contains (composition, shed, and eviction decisions
// are all seed/occupancy-derived).
use std::time::Instant;

use ld_api::MinMaxScaler;
use ld_faultinject::chaos::ChaosSchedule;
use ld_metrics::{Metrics, SloConfig, SloTracker, SpanProfile};
use ld_nn::{
    make_windows, Adam, AdamConfig, ForecasterConfig, LstmForecaster, TrainOptions, Trainer,
};
use ld_serve::{
    percentile_ns, response_digest, validate_document, validate_resilience_document, ClientKey,
    EngineConfig, ExecMode, LifecycleConfig, ModelSnapshot, RegistryConfig, Request,
    ResilienceBenchReport, Response, ServeEngine, ServeBenchReport, ServeStats, SnapshotStore,
    SupervisorConfig,
};
use ld_telemetry::{validate_chrome_trace, RunManifest, Tracer};
use ld_traces::{TraceConfig, WorkloadKind};

/// Observations each tenant has accumulated before the first tick.
const WARMUP_INTERVALS: usize = 48;

/// Burst-overload requests get ids in a disjoint band so the isolation
/// check can tell scheduled load from chaos-injected extra load.
const BURST_BASE: u64 = 1 << 40;

struct Cfg {
    smoke: bool,
    chaos: bool,
    top: bool,
    tenants: usize,
    ticks: usize,
    seed: u64,
    chaos_seed: u64,
    out: Option<String>,
    metrics_out: Option<String>,
    store_root: PathBuf,
}

/// Availability objective the batched throughput pass is scored against.
const THROUGHPUT_SLO: SloConfig = SloConfig {
    target: 0.99,
    short_window: 4,
    long_window: 12,
    short_burn: 1.0,
    long_burn: 1.0,
};

/// The chaos soak's objective: looser target (faults are scheduled), same
/// multi-window alert rule.
const CHAOS_SLO: SloConfig = SloConfig {
    target: 0.98,
    short_window: 4,
    long_window: 12,
    short_burn: 1.0,
    long_burn: 1.0,
};

/// Ticks past a chaos event's end during which a burn-rate alert is still
/// attributed to that event: the short window keeps burning for
/// `short_window` (4) ticks after the last bad answer, and the machinery
/// keeps producing degraded answers for up to breaker cooldown (4) +
/// retry backoff (~4) + supervisor drain/recovery (~4) ticks after the
/// fault itself clears.
const ALERT_GRACE_TICKS: u64 = 16;

/// One tenant: key, its jittered series, and its fitted scaler.
struct Tenant {
    key: ClientKey,
    family: usize,
    series: Vec<f64>,
    scaler: MinMaxScaler,
}

fn parse_args() -> Result<Cfg, i32> {
    let mut smoke = false;
    let mut chaos = false;
    let mut top = false;
    let mut tenants: Option<usize> = None;
    let mut ticks: Option<usize> = None;
    let mut seed = 42u64;
    let mut chaos_seed: Option<u64> = None;
    let mut out: Option<String> = None;
    let mut store_root = PathBuf::from("target/ld-serve-loadgen");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |what: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{what} requires a value"))
        };
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--chaos" => chaos = true,
            "--top" => top = true,
            "--tenants" => tenants = Some(take("--tenants").parse().expect("--tenants: integer")),
            "--ticks" => ticks = Some(take("--ticks").parse().expect("--ticks: integer")),
            "--seed" => seed = take("--seed").parse().expect("--seed: integer"),
            "--chaos-seed" => {
                chaos_seed = Some(take("--chaos-seed").parse().expect("--chaos-seed: integer"));
            }
            "--out" => out = Some(take("--out")),
            "--store" => store_root = PathBuf::from(take("--store")),
            "--check" => {
                let path = take("--check");
                return Err(check_document(&path, validate_document, "BENCH_serve"));
            }
            "--check-resilience" => {
                let path = take("--check-resilience");
                return Err(check_document(
                    &path,
                    validate_resilience_document,
                    "BENCH_resilience",
                ));
            }
            "--help" | "-h" => {
                println!(
                    "ld-loadgen [--smoke] [--chaos] [--top] [--tenants N] [--ticks N] [--seed S] \
                     [--chaos-seed S] [--out PATH] [--store DIR] [--check BENCH_serve.json] \
                     [--check-resilience BENCH_resilience.json]\n\
                     full mode replays all five trace families at N tenants and writes \
                     BENCH_serve.json;\n--chaos runs the resilience soak (baseline + two \
                     identically-seeded chaos passes) and writes BENCH_resilience.json;\n\
                     --top prints periodic ld-top interval summaries during the batched \
                     pass;\n--smoke runs tiny counts with every check and writes nothing \
                     unless --out is given;\n--check / --check-resilience validate an \
                     existing document against its schema (exit 2 on violation);\n\
                     LD_METRICS=1|PATH dumps the metrics snapshot (JSON + <path>.prom \
                     exposition, default metrics.json)"
                );
                return Err(0);
            }
            other => {
                eprintln!("unknown argument: {other}");
                return Err(2);
            }
        }
    }
    let (default_tenants, default_ticks) = match (smoke, chaos) {
        (true, false) => (24, 6),
        // Chaos smoke needs a horizon long enough for every fault family
        // to open at least one window and still settle.
        (true, true) => (24, 24),
        (false, _) => (2000, 60),
    };
    // The chaos-schedule seed is decorrelated from the load seed unless
    // pinned explicitly (flag wins over env).
    // ld-lint: allow(determinism, "explicit chaos-seed override; captured in the run manifest")
    let env_chaos_seed = std::env::var("LD_CHAOS_SEED")
        .ok()
        .and_then(|s| s.trim().parse().ok());
    let default_out = if chaos { "BENCH_resilience.json" } else { "BENCH_serve.json" };
    // Opt-in metrics dump mirroring LD_TELEMETRY / LD_TRACE: "1" means the
    // default path, anything else is the path.
    // ld-lint: allow(determinism, "pure-observer metrics dump knob; captured in the run manifest")
    let metrics_out = std::env::var("LD_METRICS")
        .ok()
        .filter(|v| !v.is_empty())
        .map(|v| if v == "1" { "metrics.json".to_string() } else { v });
    Ok(Cfg {
        smoke,
        chaos,
        top,
        tenants: tenants.unwrap_or(default_tenants),
        ticks: ticks.unwrap_or(default_ticks),
        seed,
        chaos_seed: chaos_seed
            .or(env_chaos_seed)
            .unwrap_or(seed ^ 0xCA05_CA05_CA05_CA05),
        out: out.or_else(|| (!smoke).then(|| default_out.to_string())),
        metrics_out,
        store_root,
    })
}

/// Writes the full metrics snapshot as schema-checked JSON at `path` and
/// the Prometheus text exposition at `<path>.prom`, both validated first:
/// the bench must never publish a snapshot its own validators reject.
fn dump_metrics_files(metrics: &Metrics, path: &str) {
    let snapshot = metrics.snapshot();
    let json = ld_metrics::to_metrics_json(&snapshot);
    ld_metrics::validate_metrics_json(&json).expect("metrics snapshot must validate");
    std::fs::write(path, json + "\n").expect("write metrics json");
    let exposition = ld_metrics::to_prometheus(&snapshot);
    ld_metrics::validate_exposition(&exposition).expect("metrics exposition must validate");
    let prom = format!("{path}.prom");
    std::fs::write(&prom, exposition).expect("write metrics exposition");
    println!("wrote {path} and {prom}");
}

/// Shared `--check*` handler: validate `path` with `validate`, report, and
/// produce the process exit code.
fn check_document(path: &str, validate: fn(&str) -> Result<(), String>, what: &str) -> i32 {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return 2;
        }
    };
    match validate(&text) {
        Ok(()) => {
            println!("{path}: valid {what} document");
            0
        }
        Err(why) => {
            eprintln!("{path}: INVALID {what} document: {why}");
            2
        }
    }
}

/// Splitmix64: expands a tenant index into decorrelated jitter bits.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform in `[0, 1)` from the top 32 bits (u32 -> f64 is exact).
fn unit(bits: u64) -> f64 {
    const SCALE: f64 = 1.0 / 4_294_967_296.0; // 2^-32
    f64::from(u32::try_from(bits >> 32).expect("top 32 bits")) * SCALE
}

/// Trains one model per trace family on its scaled series; returns each
/// family's trained model and raw series.
fn train_family_models(cfg: &Cfg) -> Vec<(LstmForecaster, Vec<f64>)> {
    // Deep-narrow wins for batched serving on this workload: stacking three
    // H=8 layers keeps accuracy in family while shifting work into the
    // blocked GEMMs, where the fused path's advantage over per-tenant
    // mat-vecs is largest (small dots are prologue-bound serially).
    let (hist, hidden, layers, epochs) = if cfg.smoke { (8, 8, 2, 2) } else { (20, 8, 3, 4) };
    WorkloadKind::ALL
        .iter()
        .enumerate()
        .map(|(f, &kind)| {
            let trace = TraceConfig {
                kind,
                interval_mins: kind.intervals()[0],
            };
            let series = trace.build(cfg.seed ^ (f as u64)).values;
            let scaler = MinMaxScaler::fit(&series);
            let scaled: Vec<f64> = series.iter().map(|&v| scaler.transform(v)).collect();
            let samples = make_windows(&scaled, hist);
            let mut model = LstmForecaster::new(ForecasterConfig {
                history_len: hist,
                hidden_size: hidden,
                num_layers: layers,
                seed: cfg.seed.wrapping_add(f as u64),
            });
            let trainer = Trainer::new(TrainOptions {
                batch_size: 32,
                max_epochs: epochs,
                patience: 0,
                shuffle_seed: cfg.seed ^ 0xabcd,
                ..TrainOptions::default()
            });
            let mut opt = Adam::new(AdamConfig::default());
            trainer.fit(&mut model, &mut opt, &samples, &[]);
            (model, series)
        })
        .collect()
}

/// Builds the tenant fleet: tenant `i` replays family `i % 5` with a
/// deterministic per-tenant affine jitter and its own fitted scaler.
fn build_tenants(cfg: &Cfg, families: &[(LstmForecaster, Vec<f64>)]) -> Vec<Tenant> {
    (0..cfg.tenants)
        .map(|t| {
            let family = t % families.len();
            let bits = splitmix64(cfg.seed ^ (t as u64).rotate_left(17));
            let scale = 0.5 + unit(bits);
            let offset = 10.0 * unit(splitmix64(bits));
            let series: Vec<f64> = families[family]
                .1
                .iter()
                .map(|&v| v * scale + offset)
                .collect();
            let scaler = MinMaxScaler::fit(&series);
            Tenant {
                key: ClientKey::new(
                    format!("tenant-{t:05}"),
                    WorkloadKind::ALL[family].short_name(),
                ),
                family,
                series,
                scaler,
            }
        })
        .collect()
}

fn open_store(root: &std::path::Path, phase: &str) -> SnapshotStore {
    let store = SnapshotStore::open(root.join(phase)).expect("open snapshot store");
    store.clear().expect("clear snapshot store");
    store
}

fn engine_for(
    mode: ExecMode,
    queue_capacity: usize,
    capacity_per_shard: usize,
    store: SnapshotStore,
    tracer: Tracer,
) -> ServeEngine {
    ServeEngine::new(
        EngineConfig {
            mode,
            queue_capacity,
            registry: RegistryConfig {
                shard_count: 16,
                capacity_per_shard,
            },
            lifecycle: LifecycleConfig::default(),
        },
        store,
        tracer,
    )
}

fn provision_all(
    engine: &mut ServeEngine,
    tenants: &[Tenant],
    families: &[(LstmForecaster, Vec<f64>)],
) {
    for tenant in tenants {
        let model = families[tenant.family].0.clone();
        let n = model.config().history_len;
        let snap = ModelSnapshot::new(model, tenant.scaler, n);
        engine.provision(tenant.key.clone(), snap);
    }
}

/// The deterministic request schedule: at tick `k`, every tenant asks for a
/// forecast given its history up to `WARMUP_INTERVALS + k` observations.
fn requests_at(tenants: &[Tenant], tick: usize, history_len: usize) -> Vec<Request> {
    tenants
        .iter()
        .enumerate()
        .map(|(i, tenant)| {
            let upto = (WARMUP_INTERVALS + tick).min(tenant.series.len());
            let lo = upto.saturating_sub(history_len);
            Request::new(
                (tick * tenants.len() + i) as u64,
                tenant.key.clone(),
                tenant.series[lo..upto].to_vec(),
            )
        })
        .collect()
}

struct PassResult {
    responses: Vec<Response>,
    elapsed_secs: f64,
    tick_ns: Vec<u64>,
}

/// Runs the full schedule through one engine, timing each tick. When the
/// engine's metrics plane is on, each tick's wall latency lands in the
/// `loadgen.tick_ns` histogram (a `_ns` series, so it never enters the
/// byte-compared deterministic projection). `slo` scores each tick
/// (good = non-degraded answers); `top_every > 0` prints an ld-top
/// interval summary every that-many ticks.
fn run_pass(
    engine: &mut ServeEngine,
    tenants: &[Tenant],
    ticks: usize,
    history_len: usize,
    mut slo: Option<&mut SloTracker>,
    top_every: usize,
) -> PassResult {
    let mut responses = Vec::with_capacity(tenants.len() * ticks);
    let mut tick_ns = Vec::with_capacity(ticks);
    for tick in 0..ticks {
        let reqs = requests_at(tenants, tick, history_len);
        // ld-lint: allow(determinism, "per-tick latency measurement; answers do not depend on it")
        let tk = Instant::now();
        for req in reqs {
            engine.submit(req).expect("throughput pass must not shed");
        }
        let answered = engine.tick();
        let ns = u64::try_from(tk.elapsed().as_nanos()).expect("tick ns fits u64");
        engine.metrics().observe("loadgen.tick_ns", ns);
        if let Some(slo) = slo.as_deref_mut() {
            let good = answered.iter().filter(|r| !r.degraded).count() as u64;
            slo.record(tick as u64, good, answered.len() as u64);
        }
        responses.extend(answered);
        tick_ns.push(ns);
        if top_every > 0 && (tick + 1) % top_every == 0 {
            let mut window = tick_ns[tick + 1 - top_every..].to_vec();
            let p50 = percentile_ns(&mut window, 50);
            let p95 = percentile_ns(&mut window, 95);
            let avail = slo.as_deref().map_or(1.0, |s| s.status().availability);
            println!(
                "[ld-top] tick {:>5}/{ticks}: interval p50 {}us p95 {}us, {} responses total, availability {avail:.4}",
                tick + 1,
                p50 / 1000,
                p95 / 1000,
                responses.len()
            );
        }
    }
    // Service time is the sum of per-tick (submit + tick) windows: the
    // wall span additionally counts the generator re-building request
    // objects each tick, which is harness cost, not engine work — charging
    // it to both passes would only blur the serial/batched contrast.
    let service_ns: u64 = tick_ns.iter().sum();
    PassResult {
        responses,
        elapsed_secs: service_ns as f64 / 1e9,
        tick_ns,
    }
}

fn main() {
    let cfg = match parse_args() {
        Ok(cfg) => cfg,
        Err(code) => std::process::exit(code),
    };
    if !cfg.chaos {
        // The chaos soak owns the fault registry tick by tick; an ambient
        // LD_FAULT plan would fight the schedule.
        ld_faultinject::activate_from_env(cfg.seed);
    }

    println!(
        "ld-loadgen: {} tenants x {} ticks over {} families (seed {}, {}{})",
        cfg.tenants,
        cfg.ticks,
        WorkloadKind::ALL.len(),
        cfg.seed,
        if cfg.smoke { "smoke" } else { "full" },
        if cfg.chaos { ", chaos" } else { "" }
    );

    let families = train_family_models(&cfg);
    let history_len = families[0].0.config().history_len;
    let tenants = build_tenants(&cfg, &families);

    if cfg.chaos {
        run_chaos_soak(&cfg, &tenants, &families, history_len);
        return;
    }
    // Generous capacity for the timing phases: every tenant stays resident,
    // so no tick pays LRU spill + rehydration I/O. Sizing shards at the
    // *average* occupancy (tenants/16) thrashes — FNV placement is uneven
    // enough that half the shards overflow and evict every tick. The cache
    // phase below deliberately constrains capacity to exercise exactly that.
    let per_shard_full = cfg.tenants.max(1);

    // Phase 2: throughput, serial then batched, identical schedules.
    let mut serial_engine = engine_for(
        ExecMode::Serial,
        cfg.tenants.max(1),
        per_shard_full,
        open_store(&cfg.store_root, "serial"),
        Tracer::disabled(),
    );
    provision_all(&mut serial_engine, &tenants, &families);
    let serial = run_pass(&mut serial_engine, &tenants, cfg.ticks, history_len, None, 0);

    // The batched pass always runs with the metrics plane on: metrics are
    // pure observers, so its response digest must still match the committed
    // document — which is exactly the regression this arrangement guards.
    let mut batched_engine = engine_for(
        ExecMode::Batched,
        cfg.tenants.max(1),
        per_shard_full,
        open_store(&cfg.store_root, "batched"),
        Tracer::disabled(),
    )
    .with_metrics(Metrics::enabled());
    provision_all(&mut batched_engine, &tenants, &families);
    let mut slo = SloTracker::new(THROUGHPUT_SLO);
    let top_every = if cfg.top { (cfg.ticks / 6).max(1) } else { 0 };
    let batched = run_pass(
        &mut batched_engine,
        &tenants,
        cfg.ticks,
        history_len,
        Some(&mut slo),
        top_every,
    );

    // Equivalence gate before any timing is trusted.
    assert_eq!(serial.responses.len(), batched.responses.len());
    for (s, b) in serial.responses.iter().zip(&batched.responses) {
        assert_eq!(s.id, b.id, "schedules diverged");
        let scale = s.value.abs().max(b.value.abs()).max(1.0);
        assert!(
            (s.value - b.value).abs() <= 1e-9 * scale,
            "serial vs batched beyond 1e-9 for id {}: {} vs {}",
            s.id,
            s.value,
            b.value
        );
        assert!(
            !s.degraded && !b.degraded,
            "throughput pass degraded id {}",
            s.id
        );
    }
    let speedup = serial.elapsed_secs / batched.elapsed_secs.max(1e-12);
    println!(
        "throughput: serial {:.3}s, batched {:.3}s -> {:.2}x (equivalence 1e-9 ok over {} responses)",
        serial.elapsed_secs,
        batched.elapsed_secs,
        speedup,
        batched.responses.len()
    );

    // Phase 3: bitwise determinism + identical span trees on traced reruns.
    // Both runs record metrics; a third runs metrics-off. The gates: the
    // two metrics-on runs must agree byte-for-byte on the deterministic
    // metrics projection, and the metrics-off run must produce the same
    // response digest (metrics are pure observers).
    let det_tenants = &tenants[..cfg.tenants.min(64)];
    let det_ticks = cfg.ticks.min(6);
    let mut det_snapshots = Vec::new();
    let mut det_results = Vec::new();
    let mut det_metrics_json = Vec::new();
    for run in 0..3 {
        let metrics = if run < 2 { Metrics::enabled() } else { Metrics::disabled() };
        let mut engine = engine_for(
            ExecMode::Batched,
            det_tenants.len(),
            det_tenants.len().max(1),
            open_store(&cfg.store_root, &format!("determinism-{run}")),
            Tracer::enabled(),
        )
        .with_metrics(metrics);
        provision_all(&mut engine, det_tenants, &families);
        let pass = run_pass(&mut engine, det_tenants, det_ticks, history_len, None, 0);
        det_snapshots.push(engine.tracer().snapshot());
        det_metrics_json.push(ld_metrics::to_metrics_json(
            &engine.metrics().snapshot().deterministic(),
        ));
        det_results.push(pass.responses);
    }
    let digest = response_digest(&det_results[0]);
    assert_eq!(
        digest,
        response_digest(&det_results[1]),
        "identically-seeded runs must produce bitwise-identical responses"
    );
    for (a, b) in det_results[0].iter().zip(&det_results[1]) {
        assert_eq!(a.value.to_bits(), b.value.to_bits());
    }
    assert_eq!(
        det_metrics_json[0], det_metrics_json[1],
        "identically-seeded runs must produce byte-identical metrics snapshots"
    );
    assert_eq!(
        digest,
        response_digest(&det_results[2]),
        "metrics-off run must be bitwise identical to metrics-on (pure observer)"
    );
    assert_eq!(
        det_snapshots[0].logical_paths(),
        det_snapshots[1].logical_paths(),
        "identically-seeded runs must produce identical span trees"
    );
    let spans =
        validate_chrome_trace(&det_snapshots[0].to_chrome_trace()).expect("chrome trace valid");
    println!(
        "determinism: digest {digest:016x} stable across reruns (and across metrics on/off), \
         {spans} trace events validated, metrics snapshots byte-identical"
    );

    // The committed digest comes from the batched throughput pass.
    let bench_digest = response_digest(&batched.responses);

    // Phase 4: overload — half-capacity queue sheds deterministically.
    let shed_capacity = (cfg.tenants / 2).max(1);
    let mut shed_engine = engine_for(
        ExecMode::Batched,
        shed_capacity,
        per_shard_full,
        open_store(&cfg.store_root, "overload"),
        Tracer::disabled(),
    );
    provision_all(&mut shed_engine, &tenants, &families);
    let shed_ticks = cfg.ticks.min(4);
    let mut shed_ids = Vec::new();
    let mut answered_ids = Vec::new();
    for tick in 0..shed_ticks {
        for req in requests_at(&tenants, tick, history_len) {
            if let Err(back) = shed_engine.submit(req) {
                shed_ids.push(back.id);
            }
        }
        answered_ids.extend(shed_engine.tick().iter().map(|r| r.id));
    }
    let submitted = (tenants.len() * shed_ticks) as u64;
    let stats = shed_engine.stats();
    assert_eq!(stats.admission.admitted + stats.admission.shed, submitted);
    assert!(
        stats.admission.peak_depth <= shed_capacity,
        "queue bound violated"
    );
    let answered: std::collections::BTreeSet<u64> = answered_ids.iter().copied().collect();
    for id in &shed_ids {
        assert!(
            !answered.contains(id),
            "request {id} both shed and answered"
        );
    }
    let shed_rate = fraction(stats.admission.shed, submitted);
    println!(
        "overload: {}/{} shed (rate {:.3}), queue bound {} held",
        stats.admission.shed, submitted, shed_rate, shed_capacity
    );

    // Phase 5: capacity-constrained registry — spills, rehydrations, hits.
    let cache_capacity = (cfg.tenants / 64).max(1);
    let mut cache_engine = engine_for(
        ExecMode::Batched,
        cfg.tenants.max(1),
        cache_capacity,
        open_store(&cfg.store_root, "cache"),
        Tracer::disabled(),
    );
    provision_all(&mut cache_engine, &tenants, &families);
    let cache_ticks = cfg.ticks.min(4);
    let hot = (tenants.len() / 10).max(1);
    let mut next_id = 0u64;
    for tick in 0..cache_ticks {
        // Skewed access: hot tenants every tick, a rotating cold slice.
        let cold_start = hot + (tick * hot) % (tenants.len() - hot).max(1);
        let picks = tenants[..hot]
            .iter()
            .chain(tenants[cold_start.min(tenants.len())..].iter().take(hot));
        for tenant in picks {
            let upto = (WARMUP_INTERVALS + tick).min(tenant.series.len());
            let lo = upto.saturating_sub(history_len);
            cache_engine
                .submit(Request::new(
                    next_id,
                    tenant.key.clone(),
                    tenant.series[lo..upto].to_vec(),
                ))
                .expect("cache pass must not shed");
            next_id += 1;
        }
        let responses = cache_engine.tick();
        assert!(
            responses.iter().all(|r| !r.degraded),
            "cache pass degraded a tenant"
        );
    }
    let cache_stats = cache_engine.stats().cache;
    assert_eq!(
        cache_stats.hits + cache_stats.misses,
        cache_engine.stats().served,
        "cache accounting must sum to served requests"
    );
    let cache_hit_rate = fraction(cache_stats.hits, cache_stats.hits + cache_stats.misses);
    println!(
        "cache: {} hits / {} misses (rate {:.3}), {} evictions, {} rehydrations",
        cache_stats.hits,
        cache_stats.misses,
        cache_hit_rate,
        cache_stats.evictions,
        cache_stats.rehydrations
    );

    // Assemble, validate, and (full mode) write the document.
    let mut tick_ns = batched.tick_ns.clone();
    let p50 = percentile_ns(&mut tick_ns, 50);
    let p95 = percentile_ns(&mut tick_ns, 95);
    let p99 = percentile_ns(&mut tick_ns, 99);
    let requests = batched.responses.len() as u64;
    let metrics_snapshot = batched_engine.metrics().snapshot();
    let latency_histogram = metrics_snapshot
        .histogram("loadgen.tick_ns")
        .expect("batched pass records per-tick latency")
        .buckets
        .clone();
    let slo_status = slo.status();
    let report = ServeBenchReport {
        mode: if cfg.smoke { "smoke" } else { "full" }.to_string(),
        seed: cfg.seed,
        tenants: cfg.tenants as u64,
        ticks: cfg.ticks as u64,
        families: WorkloadKind::ALL.len() as u64,
        requests,
        p50_tick_ns: p50,
        p95_tick_ns: p95,
        p99_tick_ns: p99,
        throughput_rps: fraction_scaled(requests, batched.elapsed_secs),
        serial_secs: serial.elapsed_secs,
        batched_secs: batched.elapsed_secs,
        speedup_batched_vs_serial: speedup,
        shed_rate,
        cache_hit_rate,
        response_digest: bench_digest,
        slo_target: slo_status.target,
        slo_availability: slo_status.availability,
        slo_budget_remaining: slo_status.budget_remaining,
        slo_alerts: slo_status.alerts,
        latency_histogram,
    };
    let text = serde_json::to_string_pretty(&report.to_document()).expect("serialize document");
    validate_document(&text).expect("generated document must validate");
    println!(
        "summary: p50 {}us p99 {}us per tick, {:.0} req/s, speedup {:.2}x",
        p50 / 1000,
        p99 / 1000,
        report.throughput_rps,
        speedup
    );
    print_top_report(&batched.tick_ns, &slo_status, Some(&det_snapshots[0]));
    if let Some(path) = &cfg.metrics_out {
        dump_metrics_files(batched_engine.metrics(), path);
    }

    match &cfg.out {
        Some(path) => {
            std::fs::write(path, text + "\n").expect("write BENCH_serve document");
            println!("wrote {path}");
            let mut manifest = RunManifest::new("ld-loadgen")
                .seed(cfg.seed)
                .capture_env()
                .config("mode", if cfg.smoke { "smoke" } else { "full" })
                .config("tenants", cfg.tenants)
                .config("ticks", cfg.ticks)
                .config("families", WorkloadKind::ALL.len())
                .config("history_len", history_len)
                .output("bench", path)
                .with_trace_summary(&det_snapshots[0])
                .with_metrics_summary(metrics_snapshot.series(), metrics_snapshot.observations());
            if let Some(mpath) = &cfg.metrics_out {
                manifest = manifest
                    .output("metrics", mpath)
                    .output("metrics_exposition", format!("{mpath}.prom"));
            }
            let manifest_path = format!("{path}.manifest.json");
            manifest.write_json(&manifest_path).expect("write manifest");
            println!("wrote {manifest_path}");
        }
        None => println!("smoke mode: all serving invariants checked, nothing written"),
    }
}

/// The ld-top closing report: latency percentiles, the SLO / error-budget
/// line, and (when a trace is available) the hottest spans by self time.
fn print_top_report(
    tick_ns: &[u64],
    slo: &ld_metrics::SloStatus,
    trace: Option<&ld_telemetry::TraceSnapshot>,
) {
    let mut sorted = tick_ns.to_vec();
    let (p50, p95, p99) = (
        percentile_ns(&mut sorted, 50),
        percentile_ns(&mut sorted, 95),
        percentile_ns(&mut sorted, 99),
    );
    println!(
        "[ld-top] latency: p50 {}us p95 {}us p99 {}us over {} ticks",
        p50 / 1000,
        p95 / 1000,
        p99 / 1000,
        tick_ns.len()
    );
    println!(
        "[ld-top] slo: target {:.3}, availability {:.4} ({}/{} good), \
         budget remaining {:.1}%, burn short {:.2} long {:.2}, {} alerts",
        slo.target,
        slo.availability,
        slo.good,
        slo.total,
        100.0 * slo.budget_remaining,
        slo.short_burn,
        slo.long_burn,
        slo.alerts
    );
    if let Some(trace) = trace {
        let profile = SpanProfile::from_trace(trace);
        if !profile.entries().is_empty() {
            println!("[ld-top] hottest spans by self time:");
            print!("{}", profile.render(5));
        }
    }
}

/// One chaos (or baseline) pass: every response, explicit accounting, and
/// the engine's end-of-pass state.
struct ChaosPass {
    responses: Vec<Response>,
    issued: u64,
    shed: u64,
    tick_ns: Vec<u64>,
    quarantined: u64,
    stats: ServeStats,
    trace: ld_telemetry::TraceSnapshot,
    /// Tick-scored SLO: good = non-degraded answers; degraded answers and
    /// sheds count against the budget.
    slo: SloTracker,
    /// Deterministic (wall-clock-free) metrics projection, serialized —
    /// identically-seeded passes must agree on it byte-for-byte.
    metrics_json: String,
    /// Full metrics handle for the optional LD_METRICS dump.
    metrics: Metrics,
}

/// Replays the scheduled load through one engine; with a schedule, drives
/// the chaos timeline (fault plans, slow shards, bursts, crash-boundary
/// recovery passes) tick by tick, then settles until the engine owes
/// nothing. Every submitted request is accounted for: answered or shed.
fn run_chaos_pass(
    cfg: &Cfg,
    tenants: &[Tenant],
    families: &[(LstmForecaster, Vec<f64>)],
    history_len: usize,
    schedule: Option<&ChaosSchedule>,
    phase: &str,
    tracer: Tracer,
) -> ChaosPass {
    // Headroom for bursts but not for the worst of them: a 1.5x bound
    // admits moderate bursts and deterministically sheds the peaks.
    let queue_capacity = (cfg.tenants + cfg.tenants / 2).max(2);
    // Resident capacity 2x the mean shard occupancy: steady state stays in
    // memory; spills and rehydrations come from supervisor-ordered drains,
    // which is exactly the machinery the soak wants under fire. The
    // aggressive supervisor makes NaN windows escalate to drain-restarts.
    let capacity_per_shard = (cfg.tenants / 8).max(4);
    let mut engine = ServeEngine::new(
        EngineConfig {
            mode: ExecMode::Batched,
            queue_capacity,
            registry: RegistryConfig {
                shard_count: 16,
                capacity_per_shard,
            },
            lifecycle: LifecycleConfig {
                supervisor: SupervisorConfig {
                    degraded_ratio: 0.2,
                    unhealthy_ticks: 2,
                    recovery_ticks: 2,
                },
                ..LifecycleConfig::default()
            },
        },
        open_store(&cfg.store_root, phase),
        tracer,
    )
    .with_metrics(Metrics::enabled());
    provision_all(&mut engine, tenants, families);

    let mut pass = ChaosPass {
        responses: Vec::with_capacity(tenants.len() * cfg.ticks),
        issued: 0,
        shed: 0,
        tick_ns: Vec::with_capacity(cfg.ticks),
        quarantined: 0,
        stats: ServeStats::default(),
        trace: ld_telemetry::TraceSnapshot::default(),
        slo: SloTracker::new(CHAOS_SLO),
        metrics_json: String::new(),
        metrics: Metrics::disabled(),
    };
    let offer = |engine: &mut ServeEngine, req: Request, issued: &mut u64, shed: &mut u64| {
        *issued += 1;
        if engine.submit(req).is_err() {
            *shed += 1;
        }
    };

    for tick in 0..cfg.ticks {
        let t = tick as u64;
        if let Some(s) = schedule {
            let plan = s.fault_plan_at(t);
            if plan.is_empty() {
                ld_faultinject::reset();
            } else {
                ld_faultinject::install(plan);
            }
            engine.set_shard_delays(&s.slow_shards_at(t));
        }
        let shed_before = pass.shed;
        // ld-lint: allow(determinism, "per-tick latency measurement; answers do not depend on it")
        let tk = Instant::now();
        for req in requests_at(tenants, tick, history_len) {
            offer(&mut engine, req, &mut pass.issued, &mut pass.shed);
        }
        if let Some(s) = schedule {
            // Burst overload: the schedule's permille of extra fleet load,
            // ids in the disjoint burst band.
            let extra = tenants.len() * usize::try_from(s.burst_permille_at(t)).expect("permille")
                / 1000;
            for (i, tenant) in tenants.iter().take(extra).enumerate() {
                let upto = (WARMUP_INTERVALS + tick).min(tenant.series.len());
                let lo = upto.saturating_sub(history_len);
                let req = Request::new(
                    BURST_BASE + (tick * tenants.len() + i) as u64,
                    tenant.key.clone(),
                    tenant.series[lo..upto].to_vec(),
                );
                offer(&mut engine, req, &mut pass.issued, &mut pass.shed);
            }
        }
        let answered = engine.tick();
        let ns = u64::try_from(tk.elapsed().as_nanos()).expect("tick ns fits u64");
        engine.metrics().observe("loadgen.tick_ns", ns);
        let good = answered.iter().filter(|r| !r.degraded).count() as u64;
        let bad_shed = pass.shed - shed_before;
        pass.slo.record(t, good, answered.len() as u64 + bad_shed);
        pass.responses.extend(answered);
        pass.tick_ns.push(ns);
        if let Some(s) = schedule {
            if s.crash_window_ends_at(t) {
                // A crash window just closed: run the startup-style
                // recovery pass and count what it quarantined.
                ld_faultinject::reset();
                let report = engine.recover_store().expect("store recovery");
                pass.quarantined += (report.quarantined_torn + report.quarantined_corrupt) as u64;
            }
        }
    }

    // Settle: chaos off, serve out every parked retry/deferral. Bounded —
    // max backoff and deferral are a handful of ticks, so a non-draining
    // queue here is a hang, which is exactly what the bound catches.
    ld_faultinject::reset();
    engine.set_shard_delays(&[]);
    let mut settle = 0u64;
    while engine.pending_work() > 0 {
        settle += 1;
        assert!(
            settle <= 64,
            "chaos soak failed to settle: {} requests still pending",
            engine.pending_work()
        );
        let answered = engine.tick();
        let good = answered.iter().filter(|r| !r.degraded).count() as u64;
        pass.slo
            .record(cfg.ticks as u64 + settle - 1, good, answered.len() as u64);
        pass.responses.extend(answered);
    }
    let report = engine.recover_store().expect("final store recovery");
    pass.quarantined += (report.quarantined_torn + report.quarantined_corrupt) as u64;

    pass.stats = engine.stats();
    pass.trace = engine.tracer().snapshot();
    pass.metrics_json = ld_metrics::to_metrics_json(&engine.metrics().snapshot().deterministic());
    pass.metrics = engine.metrics().clone();
    pass
}

/// The `--chaos` soak: baseline pass, two identically-seeded chaos passes,
/// the availability / isolation / determinism gates, and the
/// `BENCH_resilience.json` document.
fn run_chaos_soak(
    cfg: &Cfg,
    tenants: &[Tenant],
    families: &[(LstmForecaster, Vec<f64>)],
    history_len: usize,
) {
    let schedule = ChaosSchedule::generate(cfg.chaos_seed, cfg.ticks as u64, 16);
    println!(
        "chaos: seed {} -> {} events over {} ticks (digest {:016x})",
        cfg.chaos_seed,
        schedule.events().len(),
        cfg.ticks,
        schedule.digest()
    );

    // Fault-free baseline: the per-request model-path answer bits every
    // unaffected tenant must reproduce under chaos.
    let baseline = run_chaos_pass(
        cfg,
        tenants,
        families,
        history_len,
        None,
        "chaos-baseline",
        Tracer::disabled(),
    );
    assert_eq!(baseline.shed, 0, "fault-free baseline must not shed");
    assert!(
        baseline.slo.alerts().is_empty(),
        "fault-free baseline must not fire burn-rate alerts, got {:?}",
        baseline.slo.alerts()
    );
    let mut base_bits = std::collections::BTreeMap::new();
    for r in &baseline.responses {
        assert!(!r.degraded, "fault-free baseline degraded id {}", r.id);
        base_bits.insert(r.id, r.value.to_bits());
    }

    // Two identically-seeded chaos passes.
    let p0 = run_chaos_pass(
        cfg,
        tenants,
        families,
        history_len,
        Some(&schedule),
        "chaos-0",
        Tracer::enabled(),
    );
    let p1 = run_chaos_pass(
        cfg,
        tenants,
        families,
        history_len,
        Some(&schedule),
        "chaos-1",
        Tracer::enabled(),
    );

    // Gate 1 — determinism: the same seeds replay the same catastrophe,
    // bit for bit, span for span.
    let digest = response_digest(&p0.responses);
    assert_eq!(
        digest,
        response_digest(&p1.responses),
        "identically-seeded chaos runs must produce bitwise-identical responses"
    );
    assert_eq!(
        p0.trace.logical_paths(),
        p1.trace.logical_paths(),
        "identically-seeded chaos runs must produce identical span trees"
    );
    assert_eq!((p0.issued, p0.shed), (p1.issued, p1.shed));
    assert_eq!(p0.quarantined, p1.quarantined);
    assert_eq!(
        p0.slo.alerts(),
        p1.slo.alerts(),
        "identically-seeded chaos runs must fire identical burn-rate alerts"
    );
    assert_eq!(
        p0.metrics_json, p1.metrics_json,
        "identically-seeded chaos runs must produce byte-identical metrics snapshots"
    );

    // Gate 1b — alert containment: every burn-rate alert must land inside
    // a scheduled fault window (plus ALERT_GRACE_TICKS of aftermath). An
    // alert outside every window would mean the SLO tracker is reacting
    // to something the chaos schedule did not cause.
    for alert in p0.slo.alerts() {
        let contained = schedule.events().iter().any(|e| {
            alert.tick >= e.start
                && alert.tick < e.start + e.duration + ALERT_GRACE_TICKS
        });
        assert!(
            contained,
            "burn-rate alert at tick {} (short {:.2}, long {:.2}) is outside every \
             scheduled fault window",
            alert.tick, alert.short_burn, alert.long_burn
        );
    }

    // Gate 2 — availability: every issued request got an explicit outcome.
    let answered = p0.responses.len() as u64;
    assert_eq!(
        answered + p0.shed,
        p0.issued,
        "every request must be answered or explicitly shed — anything else is a hang"
    );
    let availability = fraction(answered + p0.shed, p0.issued);
    assert!(
        availability >= 0.99,
        "availability {availability} under chaos fell below 0.99"
    );

    // Gate 3 — isolation: a model-path (non-degraded) answer for scheduled
    // load must be bitwise identical to the fault-free baseline. Faults may
    // force a tenant onto the fallback; they may never bend a healthy
    // tenant's bits.
    let mut compared = 0u64;
    let mut perturbed = 0u64;
    for r in &p0.responses {
        if r.id >= BURST_BASE || r.degraded {
            continue;
        }
        let bits = base_bits
            .get(&r.id)
            .unwrap_or_else(|| panic!("chaos answered id {} the baseline never saw", r.id));
        compared += 1;
        if *bits != r.value.to_bits() {
            perturbed += 1;
            eprintln!(
                "isolation violation: id {} answered {} under chaos vs baseline {}",
                r.id,
                r.value,
                f64::from_bits(*bits)
            );
        }
    }
    let isolation_clean = perturbed == 0;
    assert!(
        isolation_clean,
        "{perturbed} of {compared} unaffected answers were perturbed by co-tenant faults"
    );

    let lifecycle = p0.stats.lifecycle;
    let degraded_answers = p0.responses.iter().filter(|r| r.degraded).count() as u64;
    let mut tick_ns = p0.tick_ns.clone();
    let report = ResilienceBenchReport {
        mode: if cfg.smoke { "smoke" } else { "full" }.to_string(),
        seed: cfg.seed,
        chaos_seed: cfg.chaos_seed,
        tenants: cfg.tenants as u64,
        ticks: cfg.ticks as u64,
        families: WorkloadKind::ALL.len() as u64,
        chaos_events: schedule.events().len() as u64,
        schedule_digest: schedule.digest(),
        issued: p0.issued,
        answered,
        shed: p0.shed,
        availability,
        shed_rate: fraction(p0.shed, p0.issued),
        p50_tick_ns: percentile_ns(&mut tick_ns, 50),
        p99_tick_ns: percentile_ns(&mut tick_ns, 99),
        fallback_fraction: fraction(degraded_answers, answered),
        expired_fraction: fraction(lifecycle.expired, answered),
        breaker_trips: lifecycle.breaker_trips,
        retries: lifecycle.retries,
        deferrals: lifecycle.deferrals,
        shard_drains: lifecycle.shard_drains,
        recovery_ticks: lifecycle.worst_recovery_ticks,
        quarantined: p0.quarantined,
        isolation_clean,
        response_digest: digest,
    };
    let text = serde_json::to_string_pretty(&report.to_document()).expect("serialize document");
    validate_resilience_document(&text).expect("generated document must validate");
    println!(
        "chaos soak: availability {:.4} ({} answered + {} shed of {} issued), \
         {} isolated answers verified bit-identical",
        availability, answered, p0.shed, p0.issued, compared
    );
    println!(
        "resilience: {} retries, {} deferrals, {} breaker trips, {} drains, \
         {} quarantined, fallback fraction {:.4}, digest {digest:016x}",
        report.retries,
        report.deferrals,
        report.breaker_trips,
        report.shard_drains,
        report.quarantined,
        report.fallback_fraction
    );
    let slo_status = p0.slo.status();
    print_top_report(&p0.tick_ns, &slo_status, Some(&p0.trace));
    for alert in p0.slo.alerts() {
        println!(
            "[ld-top] burn-rate alert at tick {}: short {:.2} long {:.2} (contained in a \
             fault window)",
            alert.tick, alert.short_burn, alert.long_burn
        );
    }
    if let Some(path) = &cfg.metrics_out {
        dump_metrics_files(&p0.metrics, path);
    }

    match &cfg.out {
        Some(path) => {
            std::fs::write(path, text + "\n").expect("write BENCH_resilience document");
            println!("wrote {path}");
            let metrics_snapshot = p0.metrics.snapshot();
            let manifest = RunManifest::new("ld-loadgen")
                .seed(cfg.seed)
                .capture_env()
                .config("mode", if cfg.smoke { "chaos-smoke" } else { "chaos-full" })
                .config("tenants", cfg.tenants)
                .config("ticks", cfg.ticks)
                .config("families", WorkloadKind::ALL.len())
                .config("chaos_seed", cfg.chaos_seed)
                .config("chaos_events", schedule.events().len())
                .config("slo_alerts", slo_status.alerts)
                .output("bench", path)
                .with_trace_summary(&p0.trace)
                .with_metrics_summary(metrics_snapshot.series(), metrics_snapshot.observations());
            let manifest_path = format!("{path}.manifest.json");
            manifest.write_json(&manifest_path).expect("write manifest");
            println!("wrote {manifest_path}");
        }
        None => println!("smoke mode: all resilience invariants checked, nothing written"),
    }
}

/// `a / b` as a fraction in `[0, 1]`; 0 when `b` is 0. Counts stay far
/// below 2^32, so the u32 -> f64 conversions are exact.
fn fraction(a: u64, b: u64) -> f64 {
    if b == 0 {
        return 0.0;
    }
    count_to_f64(a) / count_to_f64(b)
}

/// Requests per second.
fn fraction_scaled(requests: u64, secs: f64) -> f64 {
    count_to_f64(requests) / secs.max(1e-12)
}

fn count_to_f64(v: u64) -> f64 {
    let hi = u32::try_from(v >> 32).expect("count fits u64");
    let lo = u32::try_from(v & 0xffff_ffff).expect("masked to 32 bits");
    f64::from(hi) * 4_294_967_296.0 + f64::from(lo)
}
