//! `ld-loadgen` — replays the five Table I trace families against the
//! serving engine at a configurable tenant count and writes the stable,
//! schema-checked `BENCH_serve.json`.
//!
//! Phases:
//! 1. **Train**: one LSTM per trace family (tenants of a family share
//!    weights — which is exactly what makes them batchable).
//! 2. **Throughput**: the identical request schedule is answered twice —
//!    once on the retained per-tenant serial path, once on the fused
//!    batched path — and the speedup between the two is the headline
//!    number. Every serial/batched response pair is equivalence-checked to
//!    1e-9 relative before any timing is trusted.
//! 3. **Determinism**: two identically-seeded traced runs must produce
//!    bitwise-identical response streams (FNV digest) and identical
//!    logical span trees.
//! 4. **Overload**: a half-capacity admission queue sheds deterministically;
//!    the shed rate is recorded and no request may be both shed and
//!    answered.
//! 5. **Cache**: a capacity-constrained registry forces LRU spills and lazy
//!    rehydrations under a skewed access pattern; the hit rate is recorded.
//!
//! Modes: full (default, writes `BENCH_serve.json` + a provenance
//! manifest) and `--smoke` (tiny counts, all checks, writes nothing unless
//! `--out` is given — wired into `scripts/ci.sh`). `--check PATH` validates
//! an existing document against the schema and exits.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

use std::path::PathBuf;

// Wall-clock reads below time *how long* passes take; they never influence
// *what* any response contains (composition, shed, and eviction decisions
// are all seed/occupancy-derived).
use std::time::Instant;

use ld_api::MinMaxScaler;
use ld_nn::{
    make_windows, Adam, AdamConfig, ForecasterConfig, LstmForecaster, TrainOptions, Trainer,
};
use ld_serve::{
    percentile_ns, response_digest, validate_document, ClientKey, EngineConfig, ExecMode,
    ModelSnapshot, RegistryConfig, Request, Response, ServeBenchReport, ServeEngine, SnapshotStore,
};
use ld_telemetry::{validate_chrome_trace, RunManifest, Tracer};
use ld_traces::{TraceConfig, WorkloadKind};

/// Observations each tenant has accumulated before the first tick.
const WARMUP_INTERVALS: usize = 48;

struct Cfg {
    smoke: bool,
    tenants: usize,
    ticks: usize,
    seed: u64,
    out: Option<String>,
    store_root: PathBuf,
}

/// One tenant: key, its jittered series, and its fitted scaler.
struct Tenant {
    key: ClientKey,
    family: usize,
    series: Vec<f64>,
    scaler: MinMaxScaler,
}

fn parse_args() -> Result<Cfg, i32> {
    let mut smoke = false;
    let mut tenants: Option<usize> = None;
    let mut ticks: Option<usize> = None;
    let mut seed = 42u64;
    let mut out: Option<String> = None;
    let mut store_root = PathBuf::from("target/ld-serve-loadgen");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |what: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{what} requires a value"))
        };
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--tenants" => tenants = Some(take("--tenants").parse().expect("--tenants: integer")),
            "--ticks" => ticks = Some(take("--ticks").parse().expect("--ticks: integer")),
            "--seed" => seed = take("--seed").parse().expect("--seed: integer"),
            "--out" => out = Some(take("--out")),
            "--store" => store_root = PathBuf::from(take("--store")),
            "--check" => {
                let path = take("--check");
                let text = match std::fs::read_to_string(&path) {
                    Ok(text) => text,
                    Err(e) => {
                        eprintln!("cannot read {path}: {e}");
                        return Err(2);
                    }
                };
                match validate_document(&text) {
                    Ok(()) => {
                        println!("{path}: valid BENCH_serve document");
                        return Err(0);
                    }
                    Err(why) => {
                        eprintln!("{path}: INVALID BENCH_serve document: {why}");
                        return Err(2);
                    }
                }
            }
            "--help" | "-h" => {
                println!(
                    "ld-loadgen [--smoke] [--tenants N] [--ticks N] [--seed S] [--out PATH] \
                     [--store DIR] [--check BENCH_serve.json]\n\
                     full mode replays all five trace families at N tenants and writes \
                     BENCH_serve.json;\n--smoke runs tiny counts with every check and writes \
                     nothing unless --out is given;\n--check validates an existing document \
                     against the schema (exit 2 on violation)"
                );
                return Err(0);
            }
            other => {
                eprintln!("unknown argument: {other}");
                return Err(2);
            }
        }
    }
    let (default_tenants, default_ticks) = if smoke { (24, 6) } else { (2000, 60) };
    Ok(Cfg {
        smoke,
        tenants: tenants.unwrap_or(default_tenants),
        ticks: ticks.unwrap_or(default_ticks),
        seed,
        out: out.or_else(|| (!smoke).then(|| "BENCH_serve.json".to_string())),
        store_root,
    })
}

/// Splitmix64: expands a tenant index into decorrelated jitter bits.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform in `[0, 1)` from the top 32 bits (u32 -> f64 is exact).
fn unit(bits: u64) -> f64 {
    const SCALE: f64 = 1.0 / 4_294_967_296.0; // 2^-32
    f64::from(u32::try_from(bits >> 32).expect("top 32 bits")) * SCALE
}

/// Trains one model per trace family on its scaled series; returns each
/// family's trained model and raw series.
fn train_family_models(cfg: &Cfg) -> Vec<(LstmForecaster, Vec<f64>)> {
    // Deep-narrow wins for batched serving on this workload: stacking three
    // H=8 layers keeps accuracy in family while shifting work into the
    // blocked GEMMs, where the fused path's advantage over per-tenant
    // mat-vecs is largest (small dots are prologue-bound serially).
    let (hist, hidden, layers, epochs) = if cfg.smoke { (8, 8, 2, 2) } else { (20, 8, 3, 4) };
    WorkloadKind::ALL
        .iter()
        .enumerate()
        .map(|(f, &kind)| {
            let trace = TraceConfig {
                kind,
                interval_mins: kind.intervals()[0],
            };
            let series = trace.build(cfg.seed ^ (f as u64)).values;
            let scaler = MinMaxScaler::fit(&series);
            let scaled: Vec<f64> = series.iter().map(|&v| scaler.transform(v)).collect();
            let samples = make_windows(&scaled, hist);
            let mut model = LstmForecaster::new(ForecasterConfig {
                history_len: hist,
                hidden_size: hidden,
                num_layers: layers,
                seed: cfg.seed.wrapping_add(f as u64),
            });
            let trainer = Trainer::new(TrainOptions {
                batch_size: 32,
                max_epochs: epochs,
                patience: 0,
                shuffle_seed: cfg.seed ^ 0xabcd,
                ..TrainOptions::default()
            });
            let mut opt = Adam::new(AdamConfig::default());
            trainer.fit(&mut model, &mut opt, &samples, &[]);
            (model, series)
        })
        .collect()
}

/// Builds the tenant fleet: tenant `i` replays family `i % 5` with a
/// deterministic per-tenant affine jitter and its own fitted scaler.
fn build_tenants(cfg: &Cfg, families: &[(LstmForecaster, Vec<f64>)]) -> Vec<Tenant> {
    (0..cfg.tenants)
        .map(|t| {
            let family = t % families.len();
            let bits = splitmix64(cfg.seed ^ (t as u64).rotate_left(17));
            let scale = 0.5 + unit(bits);
            let offset = 10.0 * unit(splitmix64(bits));
            let series: Vec<f64> = families[family]
                .1
                .iter()
                .map(|&v| v * scale + offset)
                .collect();
            let scaler = MinMaxScaler::fit(&series);
            Tenant {
                key: ClientKey::new(
                    format!("tenant-{t:05}"),
                    WorkloadKind::ALL[family].short_name(),
                ),
                family,
                series,
                scaler,
            }
        })
        .collect()
}

fn open_store(root: &std::path::Path, phase: &str) -> SnapshotStore {
    let store = SnapshotStore::open(root.join(phase)).expect("open snapshot store");
    store.clear().expect("clear snapshot store");
    store
}

fn engine_for(
    mode: ExecMode,
    queue_capacity: usize,
    capacity_per_shard: usize,
    store: SnapshotStore,
    tracer: Tracer,
) -> ServeEngine {
    ServeEngine::new(
        EngineConfig {
            mode,
            queue_capacity,
            registry: RegistryConfig {
                shard_count: 16,
                capacity_per_shard,
            },
        },
        store,
        tracer,
    )
}

fn provision_all(
    engine: &mut ServeEngine,
    tenants: &[Tenant],
    families: &[(LstmForecaster, Vec<f64>)],
) {
    for tenant in tenants {
        let model = families[tenant.family].0.clone();
        let n = model.config().history_len;
        let snap = ModelSnapshot::new(model, tenant.scaler, n);
        engine
            .provision(tenant.key.clone(), snap)
            .expect("provision tenant");
    }
}

/// The deterministic request schedule: at tick `k`, every tenant asks for a
/// forecast given its history up to `WARMUP_INTERVALS + k` observations.
fn requests_at(tenants: &[Tenant], tick: usize, history_len: usize) -> Vec<Request> {
    tenants
        .iter()
        .enumerate()
        .map(|(i, tenant)| {
            let upto = (WARMUP_INTERVALS + tick).min(tenant.series.len());
            let lo = upto.saturating_sub(history_len);
            Request {
                id: (tick * tenants.len() + i) as u64,
                key: tenant.key.clone(),
                history: tenant.series[lo..upto].to_vec(),
            }
        })
        .collect()
}

struct PassResult {
    responses: Vec<Response>,
    elapsed_secs: f64,
    tick_ns: Vec<u64>,
}

/// Runs the full schedule through one engine, timing each tick.
fn run_pass(
    engine: &mut ServeEngine,
    tenants: &[Tenant],
    ticks: usize,
    history_len: usize,
) -> PassResult {
    let mut responses = Vec::with_capacity(tenants.len() * ticks);
    let mut tick_ns = Vec::with_capacity(ticks);
    for tick in 0..ticks {
        let reqs = requests_at(tenants, tick, history_len);
        // ld-lint: allow(determinism, "per-tick latency measurement; answers do not depend on it")
        let tk = Instant::now();
        for req in reqs {
            engine.submit(req).expect("throughput pass must not shed");
        }
        responses.extend(engine.tick());
        tick_ns.push(u64::try_from(tk.elapsed().as_nanos()).expect("tick ns fits u64"));
    }
    // Service time is the sum of per-tick (submit + tick) windows: the
    // wall span additionally counts the generator re-building request
    // objects each tick, which is harness cost, not engine work — charging
    // it to both passes would only blur the serial/batched contrast.
    let service_ns: u64 = tick_ns.iter().sum();
    PassResult {
        responses,
        elapsed_secs: service_ns as f64 / 1e9,
        tick_ns,
    }
}

fn main() {
    let cfg = match parse_args() {
        Ok(cfg) => cfg,
        Err(code) => std::process::exit(code),
    };
    ld_faultinject::init_from_env(cfg.seed);

    println!(
        "ld-loadgen: {} tenants x {} ticks over {} families (seed {}, {})",
        cfg.tenants,
        cfg.ticks,
        WorkloadKind::ALL.len(),
        cfg.seed,
        if cfg.smoke { "smoke" } else { "full" }
    );

    let families = train_family_models(&cfg);
    let history_len = families[0].0.config().history_len;
    let tenants = build_tenants(&cfg, &families);
    // Generous capacity for the timing phases: every tenant stays resident,
    // so no tick pays LRU spill + rehydration I/O. Sizing shards at the
    // *average* occupancy (tenants/16) thrashes — FNV placement is uneven
    // enough that half the shards overflow and evict every tick. The cache
    // phase below deliberately constrains capacity to exercise exactly that.
    let per_shard_full = cfg.tenants.max(1);

    // Phase 2: throughput, serial then batched, identical schedules.
    let mut serial_engine = engine_for(
        ExecMode::Serial,
        cfg.tenants.max(1),
        per_shard_full,
        open_store(&cfg.store_root, "serial"),
        Tracer::disabled(),
    );
    provision_all(&mut serial_engine, &tenants, &families);
    let serial = run_pass(&mut serial_engine, &tenants, cfg.ticks, history_len);

    let mut batched_engine = engine_for(
        ExecMode::Batched,
        cfg.tenants.max(1),
        per_shard_full,
        open_store(&cfg.store_root, "batched"),
        Tracer::disabled(),
    );
    provision_all(&mut batched_engine, &tenants, &families);
    let batched = run_pass(&mut batched_engine, &tenants, cfg.ticks, history_len);

    // Equivalence gate before any timing is trusted.
    assert_eq!(serial.responses.len(), batched.responses.len());
    for (s, b) in serial.responses.iter().zip(&batched.responses) {
        assert_eq!(s.id, b.id, "schedules diverged");
        let scale = s.value.abs().max(b.value.abs()).max(1.0);
        assert!(
            (s.value - b.value).abs() <= 1e-9 * scale,
            "serial vs batched beyond 1e-9 for id {}: {} vs {}",
            s.id,
            s.value,
            b.value
        );
        assert!(
            !s.degraded && !b.degraded,
            "throughput pass degraded id {}",
            s.id
        );
    }
    let speedup = serial.elapsed_secs / batched.elapsed_secs.max(1e-12);
    println!(
        "throughput: serial {:.3}s, batched {:.3}s -> {:.2}x (equivalence 1e-9 ok over {} responses)",
        serial.elapsed_secs,
        batched.elapsed_secs,
        speedup,
        batched.responses.len()
    );

    // Phase 3: bitwise determinism + identical span trees on traced reruns.
    let det_tenants = &tenants[..cfg.tenants.min(64)];
    let det_ticks = cfg.ticks.min(6);
    let mut det_snapshots = Vec::new();
    let mut det_results = Vec::new();
    for run in 0..2 {
        let mut engine = engine_for(
            ExecMode::Batched,
            det_tenants.len(),
            det_tenants.len().max(1),
            open_store(&cfg.store_root, &format!("determinism-{run}")),
            Tracer::enabled(),
        );
        provision_all(&mut engine, det_tenants, &families);
        let pass = run_pass(&mut engine, det_tenants, det_ticks, history_len);
        det_snapshots.push(engine.tracer().snapshot());
        det_results.push(pass.responses);
    }
    let digest = response_digest(&det_results[0]);
    assert_eq!(
        digest,
        response_digest(&det_results[1]),
        "identically-seeded runs must produce bitwise-identical responses"
    );
    for (a, b) in det_results[0].iter().zip(&det_results[1]) {
        assert_eq!(a.value.to_bits(), b.value.to_bits());
    }
    assert_eq!(
        det_snapshots[0].logical_paths(),
        det_snapshots[1].logical_paths(),
        "identically-seeded runs must produce identical span trees"
    );
    let spans =
        validate_chrome_trace(&det_snapshots[0].to_chrome_trace()).expect("chrome trace valid");
    println!(
        "determinism: digest {digest:016x} stable across reruns, {spans} trace events validated"
    );

    // The committed digest comes from the batched throughput pass.
    let bench_digest = response_digest(&batched.responses);

    // Phase 4: overload — half-capacity queue sheds deterministically.
    let shed_capacity = (cfg.tenants / 2).max(1);
    let mut shed_engine = engine_for(
        ExecMode::Batched,
        shed_capacity,
        per_shard_full,
        open_store(&cfg.store_root, "overload"),
        Tracer::disabled(),
    );
    provision_all(&mut shed_engine, &tenants, &families);
    let shed_ticks = cfg.ticks.min(4);
    let mut shed_ids = Vec::new();
    let mut answered_ids = Vec::new();
    for tick in 0..shed_ticks {
        for req in requests_at(&tenants, tick, history_len) {
            if let Err(back) = shed_engine.submit(req) {
                shed_ids.push(back.id);
            }
        }
        answered_ids.extend(shed_engine.tick().iter().map(|r| r.id));
    }
    let submitted = (tenants.len() * shed_ticks) as u64;
    let stats = shed_engine.stats();
    assert_eq!(stats.admission.admitted + stats.admission.shed, submitted);
    assert!(
        stats.admission.peak_depth <= shed_capacity,
        "queue bound violated"
    );
    let answered: std::collections::BTreeSet<u64> = answered_ids.iter().copied().collect();
    for id in &shed_ids {
        assert!(
            !answered.contains(id),
            "request {id} both shed and answered"
        );
    }
    let shed_rate = fraction(stats.admission.shed, submitted);
    println!(
        "overload: {}/{} shed (rate {:.3}), queue bound {} held",
        stats.admission.shed, submitted, shed_rate, shed_capacity
    );

    // Phase 5: capacity-constrained registry — spills, rehydrations, hits.
    let cache_capacity = (cfg.tenants / 64).max(1);
    let mut cache_engine = engine_for(
        ExecMode::Batched,
        cfg.tenants.max(1),
        cache_capacity,
        open_store(&cfg.store_root, "cache"),
        Tracer::disabled(),
    );
    provision_all(&mut cache_engine, &tenants, &families);
    let cache_ticks = cfg.ticks.min(4);
    let hot = (tenants.len() / 10).max(1);
    let mut next_id = 0u64;
    for tick in 0..cache_ticks {
        // Skewed access: hot tenants every tick, a rotating cold slice.
        let cold_start = hot + (tick * hot) % (tenants.len() - hot).max(1);
        let picks = tenants[..hot]
            .iter()
            .chain(tenants[cold_start.min(tenants.len())..].iter().take(hot));
        for tenant in picks {
            let upto = (WARMUP_INTERVALS + tick).min(tenant.series.len());
            let lo = upto.saturating_sub(history_len);
            cache_engine
                .submit(Request {
                    id: next_id,
                    key: tenant.key.clone(),
                    history: tenant.series[lo..upto].to_vec(),
                })
                .expect("cache pass must not shed");
            next_id += 1;
        }
        let responses = cache_engine.tick();
        assert!(
            responses.iter().all(|r| !r.degraded),
            "cache pass degraded a tenant"
        );
    }
    let cache_stats = cache_engine.stats().cache;
    assert_eq!(
        cache_stats.hits + cache_stats.misses,
        cache_engine.stats().served,
        "cache accounting must sum to served requests"
    );
    let cache_hit_rate = fraction(cache_stats.hits, cache_stats.hits + cache_stats.misses);
    println!(
        "cache: {} hits / {} misses (rate {:.3}), {} evictions, {} rehydrations",
        cache_stats.hits,
        cache_stats.misses,
        cache_hit_rate,
        cache_stats.evictions,
        cache_stats.rehydrations
    );

    // Assemble, validate, and (full mode) write the document.
    let mut tick_ns = batched.tick_ns.clone();
    let p50 = percentile_ns(&mut tick_ns, 50);
    let p99 = percentile_ns(&mut tick_ns, 99);
    let requests = batched.responses.len() as u64;
    let report = ServeBenchReport {
        mode: if cfg.smoke { "smoke" } else { "full" }.to_string(),
        seed: cfg.seed,
        tenants: cfg.tenants as u64,
        ticks: cfg.ticks as u64,
        families: WorkloadKind::ALL.len() as u64,
        requests,
        p50_tick_ns: p50,
        p99_tick_ns: p99,
        throughput_rps: fraction_scaled(requests, batched.elapsed_secs),
        serial_secs: serial.elapsed_secs,
        batched_secs: batched.elapsed_secs,
        speedup_batched_vs_serial: speedup,
        shed_rate,
        cache_hit_rate,
        response_digest: bench_digest,
    };
    let text = serde_json::to_string_pretty(&report.to_document()).expect("serialize document");
    validate_document(&text).expect("generated document must validate");
    println!(
        "summary: p50 {}us p99 {}us per tick, {:.0} req/s, speedup {:.2}x",
        p50 / 1000,
        p99 / 1000,
        report.throughput_rps,
        speedup
    );

    match &cfg.out {
        Some(path) => {
            std::fs::write(path, text + "\n").expect("write BENCH_serve document");
            println!("wrote {path}");
            let manifest = RunManifest::new("ld-loadgen")
                .seed(cfg.seed)
                .capture_env()
                .config("mode", if cfg.smoke { "smoke" } else { "full" })
                .config("tenants", cfg.tenants)
                .config("ticks", cfg.ticks)
                .config("families", WorkloadKind::ALL.len())
                .config("history_len", history_len)
                .output("bench", path)
                .with_trace_summary(&det_snapshots[0]);
            let manifest_path = format!("{path}.manifest.json");
            manifest.write_json(&manifest_path).expect("write manifest");
            println!("wrote {manifest_path}");
        }
        None => println!("smoke mode: all serving invariants checked, nothing written"),
    }
}

/// `a / b` as a fraction in `[0, 1]`; 0 when `b` is 0. Counts stay far
/// below 2^32, so the u32 -> f64 conversions are exact.
fn fraction(a: u64, b: u64) -> f64 {
    if b == 0 {
        return 0.0;
    }
    count_to_f64(a) / count_to_f64(b)
}

/// Requests per second.
fn fraction_scaled(requests: u64, secs: f64) -> f64 {
    count_to_f64(requests) / secs.max(1e-12)
}

fn count_to_f64(v: u64) -> f64 {
    let hi = u32::try_from(v >> 32).expect("count fits u64");
    let lo = u32::try_from(v & 0xffff_ffff).expect("masked to 32 bits");
    f64::from(hi) * 4_294_967_296.0 + f64::from(lo)
}
