//! Admission control: a bounded request queue with deterministic shed
//! decisions.
//!
//! The shed decision is a pure function of queue occupancy, which is itself
//! a pure function of the submission sequence — never of wall-clock timing.
//! Two identically-seeded load runs therefore shed exactly the same request
//! ids, which is what lets the loadgen pin bitwise-identical responses
//! across runs even in overload.

use std::collections::VecDeque;

use crate::registry::ClientKey;

/// One prediction request: "given my recent history, forecast the next
/// interval's JAR". The window travels with the request so the engine holds
/// no per-tenant mutable state.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Caller-assigned id, unique per run and derived from the load
    /// schedule (never from arrival time).
    pub id: u64,
    /// Which registry entry answers this request.
    pub key: ClientKey,
    /// Recent raw (unscaled) observations, oldest first.
    pub history: Vec<f64>,
    /// Absolute logical-tick deadline: the engine must answer (or
    /// explicitly expire) the request by the end of this tick. `None`
    /// means no budget — the request waits out retries and deferrals.
    pub deadline: Option<u64>,
}

impl Request {
    /// A request with no deadline budget.
    pub fn new(id: u64, key: ClientKey, history: Vec<f64>) -> Self {
        Request {
            id,
            key,
            history,
            deadline: None,
        }
    }

    /// Attaches an absolute tick deadline.
    pub fn with_deadline(mut self, deadline: u64) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// Queue accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Requests accepted into the queue.
    pub admitted: u64,
    /// Requests refused because the queue was full.
    pub shed: u64,
    /// Deepest the queue has ever been.
    pub peak_depth: usize,
}

/// A bounded FIFO of pending requests.
#[derive(Debug)]
pub struct AdmissionQueue {
    capacity: usize,
    queue: VecDeque<Request>,
    stats: AdmissionStats,
}

impl AdmissionQueue {
    /// Builds an empty queue holding at most `capacity` requests.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "admission queue needs capacity >= 1");
        AdmissionQueue {
            capacity,
            queue: VecDeque::with_capacity(capacity),
            stats: AdmissionStats::default(),
        }
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current queue depth.
    pub fn depth(&self) -> usize {
        self.queue.len()
    }

    /// Cumulative accounting.
    pub fn stats(&self) -> AdmissionStats {
        self.stats
    }

    /// Offers a request. `Err` returns the request to the caller: it was
    /// shed because the queue is at its bound.
    pub fn offer(&mut self, req: Request) -> Result<(), Request> {
        if self.queue.len() >= self.capacity {
            self.stats.shed += 1;
            return Err(req);
        }
        self.queue.push_back(req);
        self.stats.admitted += 1;
        self.stats.peak_depth = self.stats.peak_depth.max(self.queue.len());
        Ok(())
    }

    /// Takes every pending request, in admission order.
    pub fn drain(&mut self) -> Vec<Request> {
        self.queue.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64) -> Request {
        Request::new(id, ClientKey::new(format!("t{id}"), "w"), vec![1.0, 2.0])
    }

    #[test]
    fn sheds_exactly_beyond_capacity_and_returns_the_request() {
        let mut q = AdmissionQueue::new(3);
        for id in 0..3 {
            assert!(q.offer(req(id)).is_ok());
        }
        let back = q.offer(req(99)).unwrap_err();
        assert_eq!(back.id, 99);
        let s = q.stats();
        assert_eq!((s.admitted, s.shed, s.peak_depth), (3, 1, 3));
        assert!(q.depth() <= q.capacity());
    }

    #[test]
    fn drain_preserves_admission_order_and_resets_depth() {
        let mut q = AdmissionQueue::new(4);
        for id in [5, 1, 9] {
            q.offer(req(id)).expect("admit");
        }
        let ids: Vec<u64> = q.drain().iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![5, 1, 9]);
        assert_eq!(q.depth(), 0);
        // Capacity frees up after a drain.
        assert!(q.offer(req(7)).is_ok());
    }
}
