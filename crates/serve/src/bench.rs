//! The stable `BENCH_serve.json` document: what one loadgen run measured,
//! in a schema every downstream consumer (CI, plots, regression gates) can
//! rely on.

use ld_metrics::HistogramBucket;
use serde::Value;

/// Bump when the shape of `BENCH_serve.json` changes.
/// v2: adds `p95_tick_ns`, the `slo_*` block, and `latency_histogram`.
pub const SERVE_SCHEMA_VERSION: u64 = 2;

/// Everything a loadgen run measures.
#[derive(Debug, Clone)]
pub struct ServeBenchReport {
    /// `"smoke"` or `"full"`.
    pub mode: String,
    /// Load-schedule seed.
    pub seed: u64,
    /// Concurrent tenants replayed.
    pub tenants: u64,
    /// Ticks in each throughput pass.
    pub ticks: u64,
    /// Trace families replayed concurrently.
    pub families: u64,
    /// Requests answered in the batched throughput pass.
    pub requests: u64,
    /// Median per-tick latency of the batched pass, nanoseconds.
    pub p50_tick_ns: u64,
    /// 95th-percentile per-tick latency of the batched pass, nanoseconds.
    pub p95_tick_ns: u64,
    /// 99th-percentile per-tick latency of the batched pass, nanoseconds.
    pub p99_tick_ns: u64,
    /// Batched-pass throughput, requests per second.
    pub throughput_rps: f64,
    /// Wall-clock seconds of the per-tenant serial pass.
    pub serial_secs: f64,
    /// Wall-clock seconds of the batched pass.
    pub batched_secs: f64,
    /// `serial_secs / batched_secs` over the identical request schedule.
    pub speedup_batched_vs_serial: f64,
    /// Fraction of overload-phase requests shed, in `[0, 1]`.
    pub shed_rate: f64,
    /// Registry hit fraction of the capacity-constrained phase, `[0, 1]`.
    pub cache_hit_rate: f64,
    /// FNV-1a digest over the batched pass's response stream.
    pub response_digest: u64,
    /// Availability objective the batched pass was scored against.
    pub slo_target: f64,
    /// Measured availability (non-degraded fraction) of the batched pass.
    pub slo_availability: f64,
    /// Error budget remaining after the pass, `[0, 1]`.
    pub slo_budget_remaining: f64,
    /// Multi-window burn-rate alerts fired during the batched pass.
    pub slo_alerts: u64,
    /// Non-empty log-linear buckets of the per-tick latency histogram
    /// (nanoseconds); counts sum to `ticks`.
    pub latency_histogram: Vec<HistogramBucket>,
}

impl ServeBenchReport {
    /// Assembles the stable JSON document.
    pub fn to_document(&self) -> Value {
        Value::Object(vec![
            ("schema_version".to_string(), Value::Uint(SERVE_SCHEMA_VERSION)),
            ("mode".to_string(), Value::String(self.mode.clone())),
            ("seed".to_string(), Value::Uint(self.seed)),
            ("tenants".to_string(), Value::Uint(self.tenants)),
            ("ticks".to_string(), Value::Uint(self.ticks)),
            ("families".to_string(), Value::Uint(self.families)),
            ("requests".to_string(), Value::Uint(self.requests)),
            ("p50_tick_ns".to_string(), Value::Uint(self.p50_tick_ns)),
            ("p95_tick_ns".to_string(), Value::Uint(self.p95_tick_ns)),
            ("p99_tick_ns".to_string(), Value::Uint(self.p99_tick_ns)),
            ("throughput_rps".to_string(), Value::Float(self.throughput_rps)),
            ("serial_secs".to_string(), Value::Float(self.serial_secs)),
            ("batched_secs".to_string(), Value::Float(self.batched_secs)),
            (
                "speedup_batched_vs_serial".to_string(),
                Value::Float(self.speedup_batched_vs_serial),
            ),
            ("shed_rate".to_string(), Value::Float(self.shed_rate)),
            ("cache_hit_rate".to_string(), Value::Float(self.cache_hit_rate)),
            (
                "response_digest".to_string(),
                Value::String(format!("{:016x}", self.response_digest)),
            ),
            ("slo_target".to_string(), Value::Float(self.slo_target)),
            (
                "slo_availability".to_string(),
                Value::Float(self.slo_availability),
            ),
            (
                "slo_budget_remaining".to_string(),
                Value::Float(self.slo_budget_remaining),
            ),
            ("slo_alerts".to_string(), Value::Uint(self.slo_alerts)),
            (
                "latency_histogram".to_string(),
                Value::Array(
                    self.latency_histogram
                        .iter()
                        .map(|b| {
                            Value::Object(vec![
                                ("lo_ns".to_string(), Value::Uint(b.lo)),
                                ("hi_ns".to_string(), Value::Uint(b.hi)),
                                ("count".to_string(), Value::Uint(b.count)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Validates a serialized `BENCH_serve.json` against the schema every
/// consumer relies on. Returns a description of the first violation.
pub fn validate_document(text: &str) -> Result<(), String> {
    let doc: Value = serde_json::from_str(text).map_err(|e| format!("not JSON: {e}"))?;
    let version = doc
        .field("schema_version")
        .ok()
        .and_then(Value::as_u64)
        .ok_or("schema_version missing or not an integer")?;
    if version != SERVE_SCHEMA_VERSION {
        return Err(format!(
            "schema_version {version} != expected {SERVE_SCHEMA_VERSION}"
        ));
    }
    let mode = doc
        .field("mode")
        .ok()
        .and_then(Value::as_str)
        .ok_or("mode missing")?;
    if mode != "smoke" && mode != "full" {
        return Err(format!("mode must be smoke|full, got {mode:?}"));
    }
    for key in [
        "seed",
        "tenants",
        "ticks",
        "families",
        "requests",
        "p50_tick_ns",
        "p95_tick_ns",
        "p99_tick_ns",
        "slo_alerts",
    ] {
        doc.field(key)
            .ok()
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("{key} missing or not an unsigned integer"))?;
    }
    let families = doc.field("families").ok().and_then(Value::as_u64).unwrap_or(0);
    if families != 5 {
        return Err(format!("families must be 5 (Table I), got {families}"));
    }
    let p50 = doc.field("p50_tick_ns").ok().and_then(Value::as_u64).unwrap_or(0);
    let p95 = doc.field("p95_tick_ns").ok().and_then(Value::as_u64).unwrap_or(0);
    let p99 = doc.field("p99_tick_ns").ok().and_then(Value::as_u64).unwrap_or(0);
    if !(p50 <= p95 && p95 <= p99) {
        return Err(format!(
            "latency percentiles must be ordered: p50 {p50} <= p95 {p95} <= p99 {p99}"
        ));
    }
    for key in ["throughput_rps", "serial_secs", "batched_secs", "speedup_batched_vs_serial"] {
        let v = doc
            .field(key)
            .ok()
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("{key} missing or not a number"))?;
        if !v.is_finite() || v <= 0.0 {
            return Err(format!("{key} must be positive finite, got {v}"));
        }
    }
    for key in ["shed_rate", "cache_hit_rate"] {
        let v = doc
            .field(key)
            .ok()
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("{key} missing or not a number"))?;
        if !(0.0..=1.0).contains(&v) {
            return Err(format!("{key} must be in [0, 1], got {v}"));
        }
    }
    let digest = doc
        .field("response_digest")
        .ok()
        .and_then(Value::as_str)
        .ok_or("response_digest missing")?;
    if digest.len() != 16 || !digest.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err(format!("response_digest must be 16 hex chars, got {digest:?}"));
    }
    let slo_target = doc
        .field("slo_target")
        .ok()
        .and_then(Value::as_f64)
        .ok_or("slo_target missing or not a number")?;
    if !(slo_target > 0.0 && slo_target < 1.0) {
        return Err(format!("slo_target must be in (0, 1), got {slo_target}"));
    }
    for key in ["slo_availability", "slo_budget_remaining"] {
        let v = doc
            .field(key)
            .ok()
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("{key} missing or not a number"))?;
        if !(0.0..=1.0).contains(&v) {
            return Err(format!("{key} must be in [0, 1], got {v}"));
        }
    }
    let ticks = doc.field("ticks").ok().and_then(Value::as_u64).unwrap_or(0);
    let buckets = doc
        .field("latency_histogram")
        .ok()
        .and_then(Value::as_array)
        .ok_or("latency_histogram missing or not an array")?;
    if buckets.is_empty() {
        return Err("latency_histogram must not be empty".into());
    }
    let mut prev_hi: Option<u64> = None;
    let mut total: u64 = 0;
    for (i, bucket) in buckets.iter().enumerate() {
        let get = |key: &str| {
            bucket
                .field(key)
                .ok()
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("latency_histogram[{i}].{key} missing or not an integer"))
        };
        let (lo, hi, count) = (get("lo_ns")?, get("hi_ns")?, get("count")?);
        if lo > hi {
            return Err(format!("latency_histogram[{i}]: lo_ns {lo} > hi_ns {hi}"));
        }
        if count == 0 {
            return Err(format!("latency_histogram[{i}]: empty buckets must be omitted"));
        }
        if let Some(p) = prev_hi {
            if lo <= p {
                return Err(format!(
                    "latency_histogram[{i}]: buckets must be disjoint and ascending (lo_ns {lo} <= previous hi_ns {p})"
                ));
            }
        }
        prev_hi = Some(hi);
        total = total.saturating_add(count);
    }
    if total != ticks {
        return Err(format!(
            "latency_histogram counts sum to {total}, expected ticks {ticks}"
        ));
    }
    Ok(())
}

/// Bump when the shape of `BENCH_resilience.json` changes.
pub const RESILIENCE_SCHEMA_VERSION: u64 = 1;

/// What one `ld-loadgen --chaos` soak measured.
#[derive(Debug, Clone)]
pub struct ResilienceBenchReport {
    /// `"smoke"` or `"full"`.
    pub mode: String,
    /// Load-schedule seed.
    pub seed: u64,
    /// Chaos-schedule seed.
    pub chaos_seed: u64,
    /// Concurrent tenants replayed.
    pub tenants: u64,
    /// Scheduled ticks (excluding the settle tail).
    pub ticks: u64,
    /// Trace families replayed concurrently.
    pub families: u64,
    /// Chaos events in the schedule.
    pub chaos_events: u64,
    /// FNV-1a digest of the chaos schedule spec.
    pub schedule_digest: u64,
    /// Requests offered (baseline load + bursts).
    pub issued: u64,
    /// Requests answered with a response (any source).
    pub answered: u64,
    /// Requests explicitly shed at admission.
    pub shed: u64,
    /// `(answered + shed) / issued`: every request got an explicit,
    /// deterministic outcome. Anything below 1.0 means a hang.
    pub availability: f64,
    /// `shed / issued`.
    pub shed_rate: f64,
    /// Median per-tick latency under chaos, nanoseconds.
    pub p50_tick_ns: u64,
    /// 99th-percentile per-tick latency under chaos, nanoseconds.
    pub p99_tick_ns: u64,
    /// Fraction of answers served degraded (fallback or expired).
    pub fallback_fraction: f64,
    /// Fraction of answers that were deadline expiries.
    pub expired_fraction: f64,
    /// Circuit-breaker trips (tenant + shard).
    pub breaker_trips: u64,
    /// Retries parked for backoff.
    pub retries: u64,
    /// Slow-shard deferrals.
    pub deferrals: u64,
    /// Shard drain-restarts ordered by the supervisor.
    pub shard_drains: u64,
    /// Longest observed Unhealthy -> Healthy shard recovery, in ticks.
    pub recovery_ticks: u64,
    /// Torn/corrupt snapshot files quarantined by recovery passes.
    pub quarantined: u64,
    /// True when every model-path answer for an unaffected tenant was
    /// bitwise identical to the fault-free baseline run.
    pub isolation_clean: bool,
    /// FNV-1a digest over the chaos run's response stream.
    pub response_digest: u64,
}

impl ResilienceBenchReport {
    /// Assembles the stable JSON document.
    pub fn to_document(&self) -> Value {
        Value::Object(vec![
            (
                "schema_version".to_string(),
                Value::Uint(RESILIENCE_SCHEMA_VERSION),
            ),
            ("mode".to_string(), Value::String(self.mode.clone())),
            ("seed".to_string(), Value::Uint(self.seed)),
            ("chaos_seed".to_string(), Value::Uint(self.chaos_seed)),
            ("tenants".to_string(), Value::Uint(self.tenants)),
            ("ticks".to_string(), Value::Uint(self.ticks)),
            ("families".to_string(), Value::Uint(self.families)),
            ("chaos_events".to_string(), Value::Uint(self.chaos_events)),
            (
                "schedule_digest".to_string(),
                Value::String(format!("{:016x}", self.schedule_digest)),
            ),
            ("issued".to_string(), Value::Uint(self.issued)),
            ("answered".to_string(), Value::Uint(self.answered)),
            ("shed".to_string(), Value::Uint(self.shed)),
            ("availability".to_string(), Value::Float(self.availability)),
            ("shed_rate".to_string(), Value::Float(self.shed_rate)),
            ("p50_tick_ns".to_string(), Value::Uint(self.p50_tick_ns)),
            ("p99_tick_ns".to_string(), Value::Uint(self.p99_tick_ns)),
            (
                "fallback_fraction".to_string(),
                Value::Float(self.fallback_fraction),
            ),
            (
                "expired_fraction".to_string(),
                Value::Float(self.expired_fraction),
            ),
            ("breaker_trips".to_string(), Value::Uint(self.breaker_trips)),
            ("retries".to_string(), Value::Uint(self.retries)),
            ("deferrals".to_string(), Value::Uint(self.deferrals)),
            ("shard_drains".to_string(), Value::Uint(self.shard_drains)),
            ("recovery_ticks".to_string(), Value::Uint(self.recovery_ticks)),
            ("quarantined".to_string(), Value::Uint(self.quarantined)),
            ("isolation_clean".to_string(), Value::Bool(self.isolation_clean)),
            (
                "response_digest".to_string(),
                Value::String(format!("{:016x}", self.response_digest)),
            ),
        ])
    }
}

fn hex16(doc: &Value, key: &str) -> Result<(), String> {
    let s = doc
        .field(key)
        .ok()
        .and_then(Value::as_str)
        .ok_or_else(|| format!("{key} missing"))?;
    if s.len() != 16 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err(format!("{key} must be 16 hex chars, got {s:?}"));
    }
    Ok(())
}

/// Validates a serialized `BENCH_resilience.json`: structure plus the
/// chaos-soak gates (availability, isolation). Returns the first violation.
pub fn validate_resilience_document(text: &str) -> Result<(), String> {
    let doc: Value = serde_json::from_str(text).map_err(|e| format!("not JSON: {e}"))?;
    let version = doc
        .field("schema_version")
        .ok()
        .and_then(Value::as_u64)
        .ok_or("schema_version missing or not an integer")?;
    if version != RESILIENCE_SCHEMA_VERSION {
        return Err(format!(
            "schema_version {version} != expected {RESILIENCE_SCHEMA_VERSION}"
        ));
    }
    let mode = doc
        .field("mode")
        .ok()
        .and_then(Value::as_str)
        .ok_or("mode missing")?;
    if mode != "smoke" && mode != "full" {
        return Err(format!("mode must be smoke|full, got {mode:?}"));
    }
    for key in [
        "seed",
        "chaos_seed",
        "tenants",
        "ticks",
        "families",
        "chaos_events",
        "issued",
        "answered",
        "shed",
        "p50_tick_ns",
        "p99_tick_ns",
        "breaker_trips",
        "retries",
        "deferrals",
        "shard_drains",
        "recovery_ticks",
        "quarantined",
    ] {
        doc.field(key)
            .ok()
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("{key} missing or not an unsigned integer"))?;
    }
    let get = |key: &str| doc.field(key).ok().and_then(Value::as_u64).unwrap_or(0);
    if get("families") != 5 {
        return Err(format!("families must be 5 (Table I), got {}", get("families")));
    }
    if mode == "full" && get("tenants") < 2000 {
        return Err(format!(
            "full chaos soak must run >= 2000 tenants, got {}",
            get("tenants")
        ));
    }
    if get("chaos_events") == 0 {
        return Err("chaos_events must be positive (a soak without chaos proves nothing)".into());
    }
    if get("answered") + get("shed") != get("issued") {
        return Err(format!(
            "answered {} + shed {} != issued {} (requests unaccounted for)",
            get("answered"),
            get("shed"),
            get("issued")
        ));
    }
    if get("p99_tick_ns") < get("p50_tick_ns") {
        return Err(format!(
            "p99_tick_ns {} < p50_tick_ns {}",
            get("p99_tick_ns"),
            get("p50_tick_ns")
        ));
    }
    for key in ["availability", "shed_rate", "fallback_fraction", "expired_fraction"] {
        let v = doc
            .field(key)
            .ok()
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("{key} missing or not a number"))?;
        if !(0.0..=1.0).contains(&v) {
            return Err(format!("{key} must be in [0, 1], got {v}"));
        }
    }
    let availability = doc.field("availability").ok().and_then(Value::as_f64).unwrap_or(0.0);
    if availability < 0.99 {
        return Err(format!("availability {availability} below the 0.99 gate"));
    }
    match doc.field("isolation_clean").ok().and_then(Value::as_bool) {
        Some(true) => {}
        Some(false) => {
            return Err("isolation_clean is false: a faulted tenant perturbed a neighbor".into())
        }
        None => return Err("isolation_clean missing or not a bool".into()),
    }
    hex16(&doc, "schedule_digest")?;
    hex16(&doc, "response_digest")?;
    Ok(())
}

/// Integer percentile over raw nanosecond samples: sorts, then takes the
/// nearest-rank element via the shared [`ld_api::stats`] helper (integer
/// math only — no float-derived casts).
pub fn percentile_ns(samples: &mut [u64], p: u64) -> u64 {
    assert!(!samples.is_empty(), "percentile of no samples");
    assert!(p <= 100, "percentile must be in 0..=100");
    samples.sort_unstable();
    ld_api::stats::percentile_sorted_u64(samples, p)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> ServeBenchReport {
        ServeBenchReport {
            mode: "smoke".into(),
            seed: 42,
            tenants: 24,
            ticks: 6,
            families: 5,
            requests: 144,
            p50_tick_ns: 1_000,
            p95_tick_ns: 1_500,
            p99_tick_ns: 2_000,
            throughput_rps: 1e5,
            serial_secs: 2.0,
            batched_secs: 0.9,
            speedup_batched_vs_serial: 2.22,
            shed_rate: 0.25,
            cache_hit_rate: 0.5,
            response_digest: 0xdead_beef_0123_4567,
            slo_target: 0.99,
            slo_availability: 1.0,
            slo_budget_remaining: 1.0,
            slo_alerts: 0,
            latency_histogram: vec![
                HistogramBucket { lo: 896, hi: 1023, count: 4 },
                HistogramBucket { lo: 1792, hi: 2047, count: 2 },
            ],
        }
    }

    #[test]
    fn document_roundtrips_and_validates() {
        let text = serde_json::to_string_pretty(&report().to_document()).expect("serialize");
        validate_document(&text).expect("valid document");
    }

    #[test]
    fn validation_rejects_schema_violations() {
        assert!(validate_document("{\"schema_version\": 9}")
            .unwrap_err()
            .contains("schema_version"));

        let bad_rate = text_with(|r| r.shed_rate = 1.5, |t| t);
        assert!(validate_document(&bad_rate).unwrap_err().contains("shed_rate"));

        let bad_speedup = text_with(|r| r.speedup_batched_vs_serial = -1.0, |t| t);
        assert!(validate_document(&bad_speedup).unwrap_err().contains("speedup"));

        let bad_families = text_with(|r| r.families = 4, |t| t);
        assert!(validate_document(&bad_families).unwrap_err().contains("families"));

        let inverted = text_with(
            |r| {
                r.p50_tick_ns = 10;
                r.p95_tick_ns = 7;
                r.p99_tick_ns = 5;
            },
            |t| t,
        );
        assert!(validate_document(&inverted).unwrap_err().contains("ordered"));

        let bad_target = text_with(|r| r.slo_target = 1.0, |t| t);
        assert!(validate_document(&bad_target).unwrap_err().contains("slo_target"));

        let bad_budget = text_with(|r| r.slo_budget_remaining = -0.1, |t| t);
        assert!(validate_document(&bad_budget)
            .unwrap_err()
            .contains("slo_budget_remaining"));

        let no_buckets = text_with(|r| r.latency_histogram.clear(), |t| t);
        assert!(validate_document(&no_buckets)
            .unwrap_err()
            .contains("latency_histogram"));

        let short_histogram = text_with(|r| r.latency_histogram[0].count = 3, |t| t);
        assert!(validate_document(&short_histogram)
            .unwrap_err()
            .contains("counts sum"));

        let overlapping = text_with(|r| r.latency_histogram[1].lo = 900, |t| t);
        assert!(validate_document(&overlapping)
            .unwrap_err()
            .contains("disjoint"));
    }

    fn text_with(tweak: impl FnOnce(&mut ServeBenchReport), post: impl FnOnce(String) -> String) -> String {
        let mut r = report();
        tweak(&mut r);
        post(serde_json::to_string_pretty(&r.to_document()).expect("serialize"))
    }

    fn resilience_report() -> ResilienceBenchReport {
        ResilienceBenchReport {
            mode: "smoke".into(),
            seed: 42,
            chaos_seed: 1337,
            tenants: 40,
            ticks: 12,
            families: 5,
            chaos_events: 9,
            schedule_digest: 0x1111_2222_3333_4444,
            issued: 520,
            answered: 500,
            shed: 20,
            availability: 1.0,
            shed_rate: 20.0 / 520.0,
            p50_tick_ns: 900,
            p99_tick_ns: 4_000,
            fallback_fraction: 0.2,
            expired_fraction: 0.01,
            breaker_trips: 3,
            retries: 11,
            deferrals: 6,
            shard_drains: 1,
            recovery_ticks: 4,
            quarantined: 2,
            isolation_clean: true,
            response_digest: 0xfeed_f00d_0000_1111,
        }
    }

    #[test]
    fn resilience_document_roundtrips_and_validates() {
        let text =
            serde_json::to_string_pretty(&resilience_report().to_document()).expect("serialize");
        validate_resilience_document(&text).expect("valid document");
    }

    #[test]
    fn resilience_validation_enforces_the_soak_gates() {
        let with = |tweak: fn(&mut ResilienceBenchReport)| -> String {
            let mut r = resilience_report();
            tweak(&mut r);
            serde_json::to_string_pretty(&r.to_document()).expect("serialize")
        };
        let err = validate_resilience_document(&with(|r| r.availability = 0.9)).unwrap_err();
        assert!(err.contains("availability"), "{err}");
        let err = validate_resilience_document(&with(|r| r.isolation_clean = false)).unwrap_err();
        assert!(err.contains("isolation"), "{err}");
        let err = validate_resilience_document(&with(|r| r.chaos_events = 0)).unwrap_err();
        assert!(err.contains("chaos_events"), "{err}");
        let err = validate_resilience_document(&with(|r| r.shed = 1)).unwrap_err();
        assert!(err.contains("unaccounted"), "{err}");
        let err = validate_resilience_document(&with(|r| {
            r.mode = "full".into();
            // availability/shed arithmetic untouched: tenants gate fires.
            r.tenants = 100;
        }))
        .unwrap_err();
        assert!(err.contains("2000"), "{err}");
        assert!(validate_resilience_document("{\"schema_version\": 7}").is_err());
    }

    #[test]
    fn percentile_is_nearest_rank_integer_math() {
        let mut s: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_ns(&mut s.clone(), 50), 50);
        assert_eq!(percentile_ns(&mut s.clone(), 95), 95);
        assert_eq!(percentile_ns(&mut s.clone(), 99), 99);
        assert_eq!(percentile_ns(&mut s.clone(), 100), 100);
        assert_eq!(percentile_ns(&mut s, 1), 1);
        let mut tiny = vec![7u64];
        assert_eq!(percentile_ns(&mut tiny, 99), 7);
        // p = 0 clamps to the minimum sample (shared-helper convention).
        let mut pair = vec![9u64, 3];
        assert_eq!(percentile_ns(&mut pair, 0), 3);
    }
}
