//! Serializable model snapshots and their on-disk spill store.
//!
//! A [`ModelSnapshot`] is everything the serving layer needs to answer one
//! tenant: the trained [`LstmForecaster`], the tenant's [`MinMaxScaler`],
//! and the tuned window length. Snapshots carry a FNV-1a fingerprint over
//! every weight, which serves two purposes:
//!
//! - the batching engine groups tenants by `(shape, fingerprint)` — only
//!   tenants whose predictors share *identical* weights are fused into one
//!   batched forward, so batching can never change a tenant's answer;
//! - [`SnapshotStore::load`] recomputes the fingerprint after parsing and
//!   rejects a snapshot whose weights do not hash to the stored value,
//!   turning silent on-disk corruption into an explicit
//!   [`SnapshotError::Corrupt`] the registry can degrade around.

use ld_api::MinMaxScaler;
use ld_nn::LstmForecaster;

use crate::hash::{fnv1a_bytes, fnv1a_u64, FNV_OFFSET};
use crate::registry::ClientKey;

/// The model geometry a batch must agree on before lanes can be fused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ModelShape {
    /// Input window length `n`.
    pub history_len: usize,
    /// Hidden units per layer.
    pub hidden_size: usize,
    /// Stacked layer count.
    pub num_layers: usize,
}

/// A frozen, serializable predictor for one `(tenant, workload)` client.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ModelSnapshot {
    model: LstmForecaster,
    scaler: MinMaxScaler,
    history_len: usize,
    /// FNV-1a over every weight's bit pattern; recomputed and verified on
    /// every rehydration from disk.
    fingerprint: u64,
}

impl ModelSnapshot {
    /// Freezes a trained model with its tenant scaler.
    ///
    /// # Panics
    /// Panics if `history_len` disagrees with the model's configured input
    /// window — a snapshot must be servable exactly as stored.
    pub fn new(model: LstmForecaster, scaler: MinMaxScaler, history_len: usize) -> Self {
        assert_eq!(
            model.config().history_len,
            history_len,
            "snapshot history_len must match the model's input window"
        );
        let fingerprint = weight_fingerprint(&model);
        ModelSnapshot {
            model,
            scaler,
            history_len,
            fingerprint,
        }
    }

    /// Freezes the LSTM inside a tuned [`loaddynamics::OptimizedPredictor`].
    /// Returns `None` when the framework degraded to a smoothing baseline —
    /// those predictors are stateless and need no registry entry.
    pub fn from_predictor(p: &loaddynamics::OptimizedPredictor) -> Option<Self> {
        let model = p.model()?.clone();
        let scaler = p.scaler()?;
        Some(Self::new(model, scaler, p.history_len()))
    }

    /// The trained model.
    pub fn model(&self) -> &LstmForecaster {
        &self.model
    }

    /// The tenant's normalization scaler.
    pub fn scaler(&self) -> MinMaxScaler {
        self.scaler
    }

    /// The tuned input window length.
    pub fn history_len(&self) -> usize {
        self.history_len
    }

    /// The weight fingerprint computed when the snapshot was frozen.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The batching-relevant geometry.
    pub fn shape(&self) -> ModelShape {
        let cfg = self.model.config();
        ModelShape {
            history_len: self.history_len,
            hidden_size: cfg.hidden_size,
            num_layers: cfg.num_layers,
        }
    }

    /// Serializes the snapshot to JSON.
    pub fn to_json(&self) -> String {
        // ld-lint: allow(panic-path, "derived serialization of a plain struct is infallible")
        serde_json::to_string(self).expect("snapshot serialization")
    }

    /// Parses a snapshot and verifies its weight fingerprint.
    pub fn from_json(json: &str) -> Result<Self, SnapshotError> {
        let snap: ModelSnapshot =
            serde_json::from_str(json).map_err(|e| SnapshotError::Corrupt(e.to_string()))?;
        let actual = weight_fingerprint(&snap.model);
        if actual != snap.fingerprint {
            return Err(SnapshotError::Corrupt(format!(
                "weight fingerprint mismatch: stored {:#018x}, recomputed {actual:#018x}",
                snap.fingerprint
            )));
        }
        Ok(snap)
    }
}

/// FNV-1a over the bit patterns of every parameter, in `visit`-independent
/// deterministic order: per layer `W`, `U`, `b`, then the head `W`, `b`.
fn weight_fingerprint(model: &LstmForecaster) -> u64 {
    let mut h = FNV_OFFSET;
    for layer in model.layers() {
        for m in [layer.input_weights(), layer.recurrent_weights(), layer.bias()] {
            for &v in m.as_slice() {
                h = fnv1a_u64(h, v.to_bits());
            }
        }
    }
    for m in [model.head().weights(), model.head().bias()] {
        for &v in m.as_slice() {
            h = fnv1a_u64(h, v.to_bits());
        }
    }
    h
}

/// Why a snapshot could not be produced from the store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// No spilled snapshot exists for the key.
    Missing,
    /// The bytes on disk do not parse/verify as a snapshot.
    Corrupt(String),
    /// The filesystem failed underneath the store.
    Io(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Missing => write!(f, "no spilled snapshot for key"),
            SnapshotError::Corrupt(why) => write!(f, "snapshot corrupt: {why}"),
            SnapshotError::Io(why) => write!(f, "snapshot store I/O: {why}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Magic prefix of the checksum header line every spilled file starts with.
const SNAP_MAGIC: &str = "ldsnap1";
/// File name of the write-ahead journal inside the store directory.
const JOURNAL_NAME: &str = "journal.log";
/// Subdirectory torn/corrupt entries are quarantined into.
const QUARANTINE_DIR: &str = "quarantine";

/// What a [`SnapshotStore::recover`] pass found and did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Published snapshot files examined.
    pub scanned: usize,
    /// Torn temp files (in-flight writes that never renamed) quarantined.
    pub quarantined_torn: usize,
    /// Published files failing the checksum header, quarantined.
    pub quarantined_corrupt: usize,
    /// Valid snapshots indexed after the pass.
    pub indexed: usize,
    /// Journal intents without a matching commit (crashed spills).
    pub incomplete_journal: usize,
}

/// The on-disk side of the registry: evicted snapshots spill here and are
/// lazily rehydrated on the next request for their key.
///
/// File names are derived from the key's stable hash, never from arrival
/// order, so a store populated by two differently-interleaved runs is
/// byte-identical.
///
/// # Crash consistency
///
/// Every spill is checksummed, journaled, and published atomically:
///
/// 1. an intent record (`I <hash>`) is appended to the write-ahead journal
///    and fsynced;
/// 2. the payload — a `ldsnap1 <fnv1a-16hex>` header line plus the snapshot
///    JSON — is written to a `*.tmp` sibling and fsynced;
/// 3. the temp file is renamed over the final `<hash>.snapshot.json` name
///    (atomic on POSIX) and the directory is fsynced;
/// 4. a commit record (`C <hash>`) is appended to the journal.
///
/// A crash at *any* byte boundary therefore leaves either the old file, the
/// new file, or a torn `*.tmp` that was never published. The
/// [`recover`](Self::recover) pass quarantines torn temps and
/// checksum-failing entries and rebuilds the in-memory index, so at most
/// the in-flight snapshot is lost — never the rest of the store.
///
/// When the [`ld_faultinject`] `crash` site is active, [`save`](Self::save)
/// deterministically simulates such a crash: it writes a torn temp file
/// (truncated at a hash-keyed offset), skips the rename, and reports the
/// spill as failed.
#[derive(Debug)]
pub struct SnapshotStore {
    dir: std::path::PathBuf,
    /// Stable hashes of published, valid-named snapshots (the registry
    /// index). Rebuilt by [`Self::open`] / [`Self::recover`].
    index: std::sync::Mutex<std::collections::BTreeSet<u64>>,
}

impl SnapshotStore {
    /// Opens (creating if needed) a store rooted at `dir` and indexes the
    /// snapshots already published there.
    pub fn open(dir: impl Into<std::path::PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let store = SnapshotStore {
            dir,
            index: std::sync::Mutex::new(std::collections::BTreeSet::new()),
        };
        store.rebuild_index()?;
        Ok(store)
    }

    /// The file a key spills to.
    pub fn path_for(&self, key: &ClientKey) -> std::path::PathBuf {
        self.dir.join(format!("{:016x}.snapshot.json", key.stable_hash()))
    }

    fn tmp_path_for(&self, hash: u64) -> std::path::PathBuf {
        self.dir.join(format!("{hash:016x}.snapshot.tmp"))
    }

    fn journal_path(&self) -> std::path::PathBuf {
        self.dir.join(JOURNAL_NAME)
    }

    fn index_lock(&self) -> std::sync::MutexGuard<'_, std::collections::BTreeSet<u64>> {
        self.index.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Frames `json` with the checksum header rehydration verifies.
    fn frame(json: &str) -> String {
        let sum = fnv1a_bytes(FNV_OFFSET, json.as_bytes());
        format!("{SNAP_MAGIC} {sum:016x}\n{json}")
    }

    /// Splits and verifies a framed payload, returning the JSON body.
    fn unframe(text: &str) -> Result<&str, SnapshotError> {
        let (header, body) = text
            .split_once('\n')
            .ok_or_else(|| SnapshotError::Corrupt("missing checksum header".into()))?;
        let sum_hex = header
            .strip_prefix(SNAP_MAGIC)
            .map(str::trim)
            .ok_or_else(|| SnapshotError::Corrupt("bad magic in checksum header".into()))?;
        let stored = u64::from_str_radix(sum_hex, 16)
            .map_err(|e| SnapshotError::Corrupt(format!("unparsable checksum: {e}")))?;
        let actual = fnv1a_bytes(FNV_OFFSET, body.as_bytes());
        if actual != stored {
            return Err(SnapshotError::Corrupt(format!(
                "payload checksum mismatch: stored {stored:#018x}, recomputed {actual:#018x}"
            )));
        }
        Ok(body)
    }

    fn journal_append(&self, record: &str) -> std::io::Result<()> {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.journal_path())?;
        writeln!(f, "{record}")?;
        f.sync_all()
    }

    /// Spills a snapshot for `key`: journaled, checksummed, fsynced, and
    /// atomically renamed into place.
    ///
    /// Under the `crash` fault site, the spill deterministically "crashes"
    /// mid-write — a torn temp file is left behind, nothing is published,
    /// and an error is returned — so callers must treat a failed spill as
    /// "the snapshot is still only in memory".
    pub fn save(&self, key: &ClientKey, snap: &ModelSnapshot) -> std::io::Result<()> {
        let hash = key.stable_hash();
        let framed = Self::frame(&snap.to_json());
        self.journal_append(&format!("I {hash:016x}"))?;
        let tmp = self.tmp_path_for(hash);
        if ld_faultinject::is_active()
            && ld_faultinject::fault_hit_counted(ld_faultinject::FaultSite::CrashWrite)
        {
            // Simulated crash: tear the write at a hash-keyed byte offset
            // and never publish. The journal intent above has no commit, so
            // recovery knows this spill was in flight.
            let cut = 1 + (crate::hash::fnv1a_u64(hash, framed.len() as u64)
                % (framed.len() as u64 - 1)) as usize;
            std::fs::write(&tmp, &framed.as_bytes()[..cut])?;
            return Err(std::io::Error::other("simulated crash during snapshot spill"));
        }
        {
            use std::io::Write as _;
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(framed.as_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, self.path_for(key))?;
        // Publish durably: fsync the directory so the rename itself
        // survives a crash.
        std::fs::File::open(&self.dir)?.sync_all()?;
        self.journal_append(&format!("C {hash:016x}"))?;
        self.index_lock().insert(hash);
        Ok(())
    }

    /// Whether the index lists a published snapshot for `key`.
    pub fn contains(&self, key: &ClientKey) -> bool {
        self.index_lock().contains(&key.stable_hash())
    }

    /// Number of indexed snapshots.
    pub fn index_len(&self) -> usize {
        self.index_lock().len()
    }

    /// Rehydrates the snapshot spilled for `key`, verifying the payload
    /// checksum and then the weight fingerprint.
    ///
    /// When the [`ld_faultinject`] `snapshot` site is active, the loaded
    /// bytes are deterministically mangled before verification (keyed off
    /// the key's stable hash), exercising the registry's
    /// corrupt-rehydration degradation path.
    pub fn load(&self, key: &ClientKey) -> Result<ModelSnapshot, SnapshotError> {
        let path = self.path_for(key);
        let mut text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(SnapshotError::Missing)
            }
            Err(e) => return Err(SnapshotError::Io(e.to_string())),
        };
        if ld_faultinject::is_active()
            && ld_faultinject::fault_hit(
                ld_faultinject::FaultSite::SnapshotCorrupt,
                key.stable_hash(),
            )
        {
            // Deterministic mangling: truncate to half and flip a digit, so
            // the checksum (or the fingerprint check) must fail.
            let half = text.len() / 2;
            text.truncate(half);
            text.push('!');
        }
        ModelSnapshot::from_json(Self::unframe(&text)?)
    }

    /// Startup / post-crash recovery pass:
    ///
    /// - quarantines every `*.tmp` file (torn in-flight writes);
    /// - verifies the checksum header of every published snapshot and
    ///   quarantines failures;
    /// - counts journal intents that never committed;
    /// - truncates the journal and rebuilds the in-memory index.
    ///
    /// Quarantined files move to `<dir>/quarantine/` (never deleted), so a
    /// post-mortem can inspect exactly what the crash tore.
    pub fn recover(&self) -> std::io::Result<RecoveryReport> {
        let mut report = RecoveryReport::default();
        let quarantine = self.dir.join(QUARANTINE_DIR);
        // Journal first: intents without commits are the in-flight spills.
        if let Ok(journal) = std::fs::read_to_string(self.journal_path()) {
            let mut open_intents = std::collections::BTreeSet::new();
            for line in journal.lines() {
                match line.split_once(' ') {
                    Some(("I", h)) => {
                        open_intents.insert(h.to_string());
                    }
                    Some(("C", h)) => {
                        open_intents.remove(h);
                    }
                    _ => {}
                }
            }
            report.incomplete_journal = open_intents.len();
        }
        let mut entries: Vec<std::path::PathBuf> = std::fs::read_dir(&self.dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_file())
            .collect();
        entries.sort();
        for path in entries {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name.ends_with(".snapshot.tmp") {
                std::fs::create_dir_all(&quarantine)?;
                std::fs::rename(&path, quarantine.join(name))?;
                report.quarantined_torn += 1;
            } else if name.ends_with(".snapshot.json") {
                report.scanned += 1;
                let ok = std::fs::read_to_string(&path)
                    .map(|text| Self::unframe(&text).is_ok())
                    .unwrap_or(false);
                if !ok {
                    std::fs::create_dir_all(&quarantine)?;
                    std::fs::rename(&path, quarantine.join(name))?;
                    report.quarantined_corrupt += 1;
                }
            }
        }
        // The journal's work is done; start the next epoch empty.
        let _ = std::fs::remove_file(self.journal_path());
        self.rebuild_index()?;
        report.indexed = self.index_len();
        Ok(report)
    }

    /// Rebuilds the index from the published files in the directory.
    fn rebuild_index(&self) -> std::io::Result<()> {
        let mut index = std::collections::BTreeSet::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let path = entry?.path();
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if let Some(hex) = name.strip_suffix(".snapshot.json") {
                if let Ok(hash) = u64::from_str_radix(hex, 16) {
                    index.insert(hash);
                }
            }
        }
        *self.index_lock() = index;
        Ok(())
    }

    /// Removes every spilled snapshot, temp file, quarantined entry, and
    /// the journal (test hygiene).
    pub fn clear(&self) -> std::io::Result<()> {
        for entry in std::fs::read_dir(&self.dir)? {
            let path = entry?.path();
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name.ends_with(".snapshot.json")
                || name.ends_with(".snapshot.tmp")
                || name == JOURNAL_NAME
            {
                std::fs::remove_file(&path)?;
            } else if name == QUARANTINE_DIR && path.is_dir() {
                std::fs::remove_dir_all(&path)?;
            }
        }
        self.index_lock().clear();
        Ok(())
    }

    /// Root directory of the store.
    pub fn dir(&self) -> &std::path::Path {
        &self.dir
    }
}

/// Digest of a serialized snapshot's bytes (store-level identity, used by
/// tests to prove spill/rehydrate losslessness).
pub fn snapshot_bytes_digest(snap: &ModelSnapshot) -> u64 {
    fnv1a_bytes(FNV_OFFSET, snap.to_json().as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ld_nn::ForecasterConfig;

    fn snap(seed: u64) -> ModelSnapshot {
        let model = LstmForecaster::new(ForecasterConfig {
            history_len: 8,
            hidden_size: 4,
            num_layers: 1,
            seed,
        });
        let scaler = MinMaxScaler::fit(&[1.0, 5.0, 9.0]);
        ModelSnapshot::new(model, scaler, 8)
    }

    fn test_dir(name: &str) -> std::path::PathBuf {
        let mut p = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        p.push("../../target/ld-serve-unit");
        p.push(name);
        p
    }

    #[test]
    fn json_roundtrip_preserves_fingerprint_and_outputs() {
        let s = snap(7);
        let back = ModelSnapshot::from_json(&s.to_json()).expect("roundtrip");
        assert_eq!(back.fingerprint(), s.fingerprint());
        assert_eq!(back.shape(), s.shape());
        let w: Vec<f64> = (0..8).map(|i| 0.1 * f64::from(i)).collect();
        assert_eq!(
            s.model().predict(&w).to_bits(),
            back.model().predict(&w).to_bits()
        );
    }

    #[test]
    fn fingerprint_distinguishes_models_and_survives_scaler_changes() {
        let a = snap(1);
        let b = snap(2);
        assert_ne!(a.fingerprint(), b.fingerprint());
        let a2 = ModelSnapshot::new(a.model().clone(), MinMaxScaler::fit(&[0.0, 1.0]), 8);
        assert_eq!(a.fingerprint(), a2.fingerprint());
    }

    #[test]
    fn tampered_weights_fail_the_fingerprint_check() {
        let s = snap(3);
        let json = s.to_json();
        // Corrupt one weight without breaking JSON syntax: the fingerprint
        // check must still reject it.
        let needle = "\"data\":[";
        let at = json.find(needle).expect("weights present") + needle.len();
        let mut tampered = json.clone();
        tampered.replace_range(at..at + 1, if &json[at..at + 1] == "1" { "2" } else { "1" });
        match ModelSnapshot::from_json(&tampered) {
            Err(SnapshotError::Corrupt(_)) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn store_spill_and_rehydrate_is_lossless() {
        let store = SnapshotStore::open(test_dir("snapshot-lossless")).expect("open");
        store.clear().expect("clear");
        let key = ClientKey::new("tenant-9", "wiki");
        let s = snap(9);
        store.save(&key, &s).expect("save");
        let back = store.load(&key).expect("load");
        assert_eq!(snapshot_bytes_digest(&s), snapshot_bytes_digest(&back));
    }

    #[test]
    fn missing_key_is_distinguished_from_corruption() {
        let store = SnapshotStore::open(test_dir("snapshot-missing")).expect("open");
        let key = ClientKey::new("nobody", "nothing");
        assert_eq!(store.load(&key).unwrap_err(), SnapshotError::Missing);
    }

    #[test]
    fn save_publishes_atomically_with_checksum_header() {
        let store = SnapshotStore::open(test_dir("snapshot-atomic")).expect("open");
        store.clear().expect("clear");
        let key = ClientKey::new("tenant-a", "wiki");
        store.save(&key, &snap(4)).expect("save");
        // No temp file survives a successful spill; the journal holds a
        // matched intent/commit pair.
        let leftovers: Vec<_> = std::fs::read_dir(store.dir())
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
            .collect();
        assert!(leftovers.is_empty(), "temp file leaked: {leftovers:?}");
        let text = std::fs::read_to_string(store.path_for(&key)).unwrap();
        assert!(text.starts_with("ldsnap1 "), "missing checksum header");
        assert!(store.contains(&key));
        assert_eq!(store.index_len(), 1);
        // Flipping one payload byte must fail the checksum, not the parse.
        let flipped = text.replacen("\"data\":[", "\"data\":[ ", 1);
        std::fs::write(store.path_for(&key), flipped).unwrap();
        match store.load(&key) {
            Err(SnapshotError::Corrupt(why)) => {
                assert!(why.contains("checksum"), "unexpected reason: {why}")
            }
            other => panic!("expected checksum Corrupt, got {other:?}"),
        }
    }

    // Crash-write injection is covered by the `serve_recovery` integration
    // tests, which serialize on the process-global fault lock.

    #[test]
    fn recovery_quarantines_corrupt_published_entries() {
        let store = SnapshotStore::open(test_dir("snapshot-recover-corrupt")).expect("open");
        store.clear().expect("clear");
        let good = ClientKey::new("good", "wiki");
        let bad = ClientKey::new("bad", "wiki");
        store.save(&good, &snap(7)).expect("save good");
        store.save(&bad, &snap(8)).expect("save bad");
        // Bit-rot the bad entry on disk.
        let mut text = std::fs::read_to_string(store.path_for(&bad)).unwrap();
        text.truncate(text.len() / 2);
        std::fs::write(store.path_for(&bad), text).unwrap();

        let report = store.recover().expect("recover");
        assert_eq!(report.scanned, 2);
        assert_eq!(report.quarantined_corrupt, 1);
        assert_eq!(report.indexed, 1);
        assert!(store.contains(&good) && !store.contains(&bad));
        assert!(store.load(&good).is_ok());
        assert_eq!(store.load(&bad).unwrap_err(), SnapshotError::Missing);
        // The quarantined bytes are preserved for post-mortem.
        let quarantined: Vec<_> = std::fs::read_dir(store.dir().join("quarantine"))
            .unwrap()
            .filter_map(|e| e.ok())
            .collect();
        assert_eq!(quarantined.len(), 1);
    }

    #[test]
    fn reopen_rebuilds_index_from_directory() {
        let dir = test_dir("snapshot-reopen");
        let store = SnapshotStore::open(&dir).expect("open");
        store.clear().expect("clear");
        let key = ClientKey::new("tenant-r", "wiki");
        store.save(&key, &snap(10)).expect("save");
        drop(store);
        let reopened = SnapshotStore::open(&dir).expect("reopen");
        assert!(reopened.contains(&key));
        assert_eq!(reopened.index_len(), 1);
    }
}
