//! Serializable model snapshots and their on-disk spill store.
//!
//! A [`ModelSnapshot`] is everything the serving layer needs to answer one
//! tenant: the trained [`LstmForecaster`], the tenant's [`MinMaxScaler`],
//! and the tuned window length. Snapshots carry a FNV-1a fingerprint over
//! every weight, which serves two purposes:
//!
//! - the batching engine groups tenants by `(shape, fingerprint)` — only
//!   tenants whose predictors share *identical* weights are fused into one
//!   batched forward, so batching can never change a tenant's answer;
//! - [`SnapshotStore::load`] recomputes the fingerprint after parsing and
//!   rejects a snapshot whose weights do not hash to the stored value,
//!   turning silent on-disk corruption into an explicit
//!   [`SnapshotError::Corrupt`] the registry can degrade around.

use ld_api::MinMaxScaler;
use ld_nn::LstmForecaster;

use crate::hash::{fnv1a_bytes, fnv1a_u64, FNV_OFFSET};
use crate::registry::ClientKey;

/// The model geometry a batch must agree on before lanes can be fused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ModelShape {
    /// Input window length `n`.
    pub history_len: usize,
    /// Hidden units per layer.
    pub hidden_size: usize,
    /// Stacked layer count.
    pub num_layers: usize,
}

/// A frozen, serializable predictor for one `(tenant, workload)` client.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ModelSnapshot {
    model: LstmForecaster,
    scaler: MinMaxScaler,
    history_len: usize,
    /// FNV-1a over every weight's bit pattern; recomputed and verified on
    /// every rehydration from disk.
    fingerprint: u64,
}

impl ModelSnapshot {
    /// Freezes a trained model with its tenant scaler.
    ///
    /// # Panics
    /// Panics if `history_len` disagrees with the model's configured input
    /// window — a snapshot must be servable exactly as stored.
    pub fn new(model: LstmForecaster, scaler: MinMaxScaler, history_len: usize) -> Self {
        assert_eq!(
            model.config().history_len,
            history_len,
            "snapshot history_len must match the model's input window"
        );
        let fingerprint = weight_fingerprint(&model);
        ModelSnapshot {
            model,
            scaler,
            history_len,
            fingerprint,
        }
    }

    /// Freezes the LSTM inside a tuned [`loaddynamics::OptimizedPredictor`].
    /// Returns `None` when the framework degraded to a smoothing baseline —
    /// those predictors are stateless and need no registry entry.
    pub fn from_predictor(p: &loaddynamics::OptimizedPredictor) -> Option<Self> {
        let model = p.model()?.clone();
        let scaler = p.scaler()?;
        Some(Self::new(model, scaler, p.history_len()))
    }

    /// The trained model.
    pub fn model(&self) -> &LstmForecaster {
        &self.model
    }

    /// The tenant's normalization scaler.
    pub fn scaler(&self) -> MinMaxScaler {
        self.scaler
    }

    /// The tuned input window length.
    pub fn history_len(&self) -> usize {
        self.history_len
    }

    /// The weight fingerprint computed when the snapshot was frozen.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The batching-relevant geometry.
    pub fn shape(&self) -> ModelShape {
        let cfg = self.model.config();
        ModelShape {
            history_len: self.history_len,
            hidden_size: cfg.hidden_size,
            num_layers: cfg.num_layers,
        }
    }

    /// Serializes the snapshot to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("snapshot serialization")
    }

    /// Parses a snapshot and verifies its weight fingerprint.
    pub fn from_json(json: &str) -> Result<Self, SnapshotError> {
        let snap: ModelSnapshot =
            serde_json::from_str(json).map_err(|e| SnapshotError::Corrupt(e.to_string()))?;
        let actual = weight_fingerprint(&snap.model);
        if actual != snap.fingerprint {
            return Err(SnapshotError::Corrupt(format!(
                "weight fingerprint mismatch: stored {:#018x}, recomputed {actual:#018x}",
                snap.fingerprint
            )));
        }
        Ok(snap)
    }
}

/// FNV-1a over the bit patterns of every parameter, in `visit`-independent
/// deterministic order: per layer `W`, `U`, `b`, then the head `W`, `b`.
fn weight_fingerprint(model: &LstmForecaster) -> u64 {
    let mut h = FNV_OFFSET;
    for layer in model.layers() {
        for m in [layer.input_weights(), layer.recurrent_weights(), layer.bias()] {
            for &v in m.as_slice() {
                h = fnv1a_u64(h, v.to_bits());
            }
        }
    }
    for m in [model.head().weights(), model.head().bias()] {
        for &v in m.as_slice() {
            h = fnv1a_u64(h, v.to_bits());
        }
    }
    h
}

/// Why a snapshot could not be produced from the store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// No spilled snapshot exists for the key.
    Missing,
    /// The bytes on disk do not parse/verify as a snapshot.
    Corrupt(String),
    /// The filesystem failed underneath the store.
    Io(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Missing => write!(f, "no spilled snapshot for key"),
            SnapshotError::Corrupt(why) => write!(f, "snapshot corrupt: {why}"),
            SnapshotError::Io(why) => write!(f, "snapshot store I/O: {why}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// The on-disk side of the registry: evicted snapshots spill here and are
/// lazily rehydrated on the next request for their key.
///
/// File names are derived from the key's stable hash, never from arrival
/// order, so a store populated by two differently-interleaved runs is
/// byte-identical.
#[derive(Debug)]
pub struct SnapshotStore {
    dir: std::path::PathBuf,
}

impl SnapshotStore {
    /// Opens (creating if needed) a store rooted at `dir`.
    pub fn open(dir: impl Into<std::path::PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(SnapshotStore { dir })
    }

    /// The file a key spills to.
    pub fn path_for(&self, key: &ClientKey) -> std::path::PathBuf {
        self.dir.join(format!("{:016x}.snapshot.json", key.stable_hash()))
    }

    /// Spills a snapshot for `key`.
    pub fn save(&self, key: &ClientKey, snap: &ModelSnapshot) -> std::io::Result<()> {
        std::fs::write(self.path_for(key), snap.to_json())
    }

    /// Rehydrates the snapshot spilled for `key`, verifying its weight
    /// fingerprint.
    ///
    /// When the [`ld_faultinject`] `snapshot` site is active, the loaded
    /// bytes are deterministically mangled before parsing (keyed off the
    /// key's stable hash), exercising the registry's corrupt-rehydration
    /// degradation path.
    pub fn load(&self, key: &ClientKey) -> Result<ModelSnapshot, SnapshotError> {
        let path = self.path_for(key);
        let mut text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(SnapshotError::Missing)
            }
            Err(e) => return Err(SnapshotError::Io(e.to_string())),
        };
        if ld_faultinject::is_active()
            && ld_faultinject::fault_hit(
                ld_faultinject::FaultSite::SnapshotCorrupt,
                key.stable_hash(),
            )
        {
            // Deterministic mangling: truncate to half and flip a digit, so
            // the parse (or the fingerprint check) must fail.
            let half = text.len() / 2;
            text.truncate(half);
            text.push('!');
        }
        ModelSnapshot::from_json(&text)
    }

    /// Removes every spilled snapshot (test hygiene).
    pub fn clear(&self) -> std::io::Result<()> {
        for entry in std::fs::read_dir(&self.dir)? {
            let path = entry?.path();
            if path.extension().is_some_and(|e| e == "json") {
                std::fs::remove_file(path)?;
            }
        }
        Ok(())
    }

    /// Root directory of the store.
    pub fn dir(&self) -> &std::path::Path {
        &self.dir
    }
}

/// Digest of a serialized snapshot's bytes (store-level identity, used by
/// tests to prove spill/rehydrate losslessness).
pub fn snapshot_bytes_digest(snap: &ModelSnapshot) -> u64 {
    fnv1a_bytes(FNV_OFFSET, snap.to_json().as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ld_nn::ForecasterConfig;

    fn snap(seed: u64) -> ModelSnapshot {
        let model = LstmForecaster::new(ForecasterConfig {
            history_len: 8,
            hidden_size: 4,
            num_layers: 1,
            seed,
        });
        let scaler = MinMaxScaler::fit(&[1.0, 5.0, 9.0]);
        ModelSnapshot::new(model, scaler, 8)
    }

    fn test_dir(name: &str) -> std::path::PathBuf {
        let mut p = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        p.push("../../target/ld-serve-unit");
        p.push(name);
        p
    }

    #[test]
    fn json_roundtrip_preserves_fingerprint_and_outputs() {
        let s = snap(7);
        let back = ModelSnapshot::from_json(&s.to_json()).expect("roundtrip");
        assert_eq!(back.fingerprint(), s.fingerprint());
        assert_eq!(back.shape(), s.shape());
        let w: Vec<f64> = (0..8).map(|i| 0.1 * f64::from(i)).collect();
        assert_eq!(
            s.model().predict(&w).to_bits(),
            back.model().predict(&w).to_bits()
        );
    }

    #[test]
    fn fingerprint_distinguishes_models_and_survives_scaler_changes() {
        let a = snap(1);
        let b = snap(2);
        assert_ne!(a.fingerprint(), b.fingerprint());
        let a2 = ModelSnapshot::new(a.model().clone(), MinMaxScaler::fit(&[0.0, 1.0]), 8);
        assert_eq!(a.fingerprint(), a2.fingerprint());
    }

    #[test]
    fn tampered_weights_fail_the_fingerprint_check() {
        let s = snap(3);
        let json = s.to_json();
        // Corrupt one weight without breaking JSON syntax: the fingerprint
        // check must still reject it.
        let needle = "\"data\":[";
        let at = json.find(needle).expect("weights present") + needle.len();
        let mut tampered = json.clone();
        tampered.replace_range(at..at + 1, if &json[at..at + 1] == "1" { "2" } else { "1" });
        match ModelSnapshot::from_json(&tampered) {
            Err(SnapshotError::Corrupt(_)) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn store_spill_and_rehydrate_is_lossless() {
        let store = SnapshotStore::open(test_dir("snapshot-lossless")).expect("open");
        store.clear().expect("clear");
        let key = ClientKey::new("tenant-9", "wiki");
        let s = snap(9);
        store.save(&key, &s).expect("save");
        let back = store.load(&key).expect("load");
        assert_eq!(snapshot_bytes_digest(&s), snapshot_bytes_digest(&back));
    }

    #[test]
    fn missing_key_is_distinguished_from_corruption() {
        let store = SnapshotStore::open(test_dir("snapshot-missing")).expect("open");
        let key = ClientKey::new("nobody", "nothing");
        assert_eq!(store.load(&key).unwrap_err(), SnapshotError::Missing);
    }
}
