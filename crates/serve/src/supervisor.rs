//! Shard health supervision: per-shard error/latency counters, degraded /
//! unhealthy marking, and drain-restart with state rehydrated from the
//! snapshot store.
//!
//! The supervisor observes one [`ShardObservation`] per shard per tick
//! (error count, service count, deferred-lane count) and runs a small
//! deterministic state machine per shard:
//!
//! ```text
//! Healthy ──(error ratio ≥ degraded_ratio)──▶ Degraded
//! Degraded ──(unhealthy_ticks consecutive bad ticks)──▶ Unhealthy
//! Unhealthy ──(engine drains + restarts the shard)──▶ Recovering
//! Recovering ──(recovery_ticks clean ticks)──▶ Healthy
//! Degraded/Recovering ──(clean tick streak)──▶ Healthy
//! ```
//!
//! An `Unhealthy` verdict tells the engine to **drain** the shard: spill
//! every resident snapshot to the store and evict it, so subsequent
//! requests rehydrate from durable state — the moral equivalent of a
//! process restart, with the store as the source of truth. Every
//! transition is reported so the engine can emit a `shard_health` span
//! (duration = destination state code, ago = source state code), making
//! health history part of the deterministic span tree.

/// Supervisor tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SupervisorConfig {
    /// Error ratio (errors / services) at or above which a tick is "bad".
    pub degraded_ratio: f64,
    /// Consecutive bad ticks that escalate `Degraded -> Unhealthy`.
    pub unhealthy_ticks: u32,
    /// Consecutive clean ticks that settle `Recovering/Degraded -> Healthy`.
    pub recovery_ticks: u32,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            degraded_ratio: 0.5,
            unhealthy_ticks: 3,
            recovery_ticks: 2,
        }
    }
}

/// Health state of one shard (`code` is the stable span encoding).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardHealth {
    /// Serving normally.
    Healthy,
    /// Elevated errors; still serving.
    Degraded,
    /// Error streak exceeded: the engine must drain + restart the shard.
    Unhealthy,
    /// Drained and restarted; counts clean ticks back toward `Healthy`.
    Recovering,
}

impl ShardHealth {
    /// Stable numeric code (span payloads, bench documents).
    pub fn code(self) -> u64 {
        match self {
            ShardHealth::Healthy => 0,
            ShardHealth::Degraded => 1,
            ShardHealth::Unhealthy => 2,
            ShardHealth::Recovering => 3,
        }
    }
}

/// What one shard did during one tick.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShardObservation {
    /// Model-path services attempted on the shard this tick.
    pub services: u64,
    /// Of those, how many failed (poisoned batch, corrupt rehydration, …).
    pub errors: u64,
    /// Lanes deferred because the shard was slow this tick.
    pub deferred: u64,
}

/// A health transition the engine should record as a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthTransition {
    /// Shard index.
    pub shard: usize,
    /// State before.
    pub from: ShardHealth,
    /// State after.
    pub to: ShardHealth,
}

/// Per-shard bookkeeping.
#[derive(Debug, Clone)]
struct ShardTracker {
    health: ShardHealth,
    bad_streak: u32,
    clean_streak: u32,
    /// Cumulative error / service counts (stats surface).
    errors: u64,
    services: u64,
    drains: u64,
    /// Tick the shard entered `Unhealthy` (recovery-latency accounting).
    unhealthy_since: Option<u64>,
    /// Longest observed Unhealthy -> Healthy recovery, in ticks.
    worst_recovery: u64,
}

impl ShardTracker {
    fn new() -> Self {
        ShardTracker {
            health: ShardHealth::Healthy,
            bad_streak: 0,
            clean_streak: 0,
            errors: 0,
            services: 0,
            drains: 0,
            unhealthy_since: None,
            worst_recovery: 0,
        }
    }
}

/// The supervisor over all shards of one engine.
#[derive(Debug)]
pub struct ShardSupervisor {
    config: SupervisorConfig,
    shards: Vec<ShardTracker>,
}

impl ShardSupervisor {
    /// A supervisor with every shard `Healthy`.
    pub fn new(config: SupervisorConfig, shard_count: usize) -> Self {
        ShardSupervisor {
            config,
            shards: (0..shard_count).map(|_| ShardTracker::new()).collect(),
        }
    }

    /// Current health of `shard`.
    pub fn health(&self, shard: usize) -> ShardHealth {
        self.shards[shard].health
    }

    /// Total drain-restarts ordered across all shards.
    pub fn drains(&self) -> u64 {
        self.shards.iter().map(|s| s.drains).sum()
    }

    /// Longest observed Unhealthy -> Healthy recovery in ticks, across all
    /// shards (0 when no shard ever went unhealthy).
    pub fn worst_recovery_ticks(&self) -> u64 {
        self.shards.iter().map(|s| s.worst_recovery).max().unwrap_or(0)
    }

    /// Feeds one tick of observations (`observations[shard]`) and returns
    /// the transitions that occurred, in shard order. A shard that
    /// transitions to [`ShardHealth::Unhealthy`] is immediately marked
    /// `Recovering` *by the caller* via [`mark_drained`](Self::mark_drained)
    /// once the drain completes.
    pub fn observe(&mut self, now: u64, observations: &[ShardObservation]) -> Vec<HealthTransition> {
        assert_eq!(observations.len(), self.shards.len());
        let mut transitions = Vec::new();
        for (idx, (tracker, obs)) in self.shards.iter_mut().zip(observations).enumerate() {
            tracker.errors += obs.errors;
            tracker.services += obs.services;
            let bad = obs.services > 0
                && (obs.errors as f64) >= self.config.degraded_ratio * obs.services as f64
                && obs.errors > 0;
            let idle = obs.services == 0 && obs.deferred == 0;
            let from = tracker.health;
            let to = match tracker.health {
                ShardHealth::Healthy => {
                    if bad {
                        tracker.bad_streak = 1;
                        ShardHealth::Degraded
                    } else {
                        ShardHealth::Healthy
                    }
                }
                ShardHealth::Degraded => {
                    if bad {
                        tracker.bad_streak += 1;
                        tracker.clean_streak = 0;
                        if tracker.bad_streak >= self.config.unhealthy_ticks {
                            ShardHealth::Unhealthy
                        } else {
                            ShardHealth::Degraded
                        }
                    } else if idle {
                        // No evidence either way; hold state.
                        ShardHealth::Degraded
                    } else {
                        tracker.clean_streak += 1;
                        if tracker.clean_streak >= self.config.recovery_ticks {
                            tracker.bad_streak = 0;
                            tracker.clean_streak = 0;
                            ShardHealth::Healthy
                        } else {
                            ShardHealth::Degraded
                        }
                    }
                }
                // Waiting for the engine to drain; nothing to observe.
                ShardHealth::Unhealthy => ShardHealth::Unhealthy,
                ShardHealth::Recovering => {
                    if bad {
                        tracker.bad_streak += 1;
                        tracker.clean_streak = 0;
                        if tracker.bad_streak >= self.config.unhealthy_ticks {
                            ShardHealth::Unhealthy
                        } else {
                            ShardHealth::Recovering
                        }
                    } else if idle {
                        ShardHealth::Recovering
                    } else {
                        tracker.clean_streak += 1;
                        if tracker.clean_streak >= self.config.recovery_ticks {
                            tracker.bad_streak = 0;
                            tracker.clean_streak = 0;
                            if let Some(since) = tracker.unhealthy_since.take() {
                                tracker.worst_recovery =
                                    tracker.worst_recovery.max(now.saturating_sub(since));
                            }
                            ShardHealth::Healthy
                        } else {
                            ShardHealth::Recovering
                        }
                    }
                }
            };
            if to != from {
                if to == ShardHealth::Unhealthy {
                    tracker.unhealthy_since.get_or_insert(now);
                }
                tracker.health = to;
                transitions.push(HealthTransition {
                    shard: idx,
                    from,
                    to,
                });
            }
        }
        transitions
    }

    /// The engine finished draining `shard`: resident state was spilled and
    /// evicted, future requests rehydrate from the store. Moves the shard
    /// `Unhealthy -> Recovering` and returns the transition.
    pub fn mark_drained(&mut self, shard: usize) -> Option<HealthTransition> {
        let tracker = &mut self.shards[shard];
        if tracker.health != ShardHealth::Unhealthy {
            return None;
        }
        tracker.health = ShardHealth::Recovering;
        tracker.bad_streak = 0;
        tracker.clean_streak = 0;
        tracker.drains += 1;
        Some(HealthTransition {
            shard,
            from: ShardHealth::Unhealthy,
            to: ShardHealth::Recovering,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(services: u64, errors: u64) -> ShardObservation {
        ShardObservation {
            services,
            errors,
            deferred: 0,
        }
    }

    #[test]
    fn escalates_degraded_then_unhealthy_then_recovers() {
        let mut sup = ShardSupervisor::new(
            SupervisorConfig {
                degraded_ratio: 0.5,
                unhealthy_ticks: 3,
                recovery_ticks: 2,
            },
            2,
        );
        // Shard 0 fails everything; shard 1 is clean.
        let t = sup.observe(0, &[obs(4, 4), obs(4, 0)]);
        assert_eq!(
            t,
            vec![HealthTransition {
                shard: 0,
                from: ShardHealth::Healthy,
                to: ShardHealth::Degraded
            }]
        );
        assert!(sup.observe(1, &[obs(4, 4), obs(4, 0)]).is_empty());
        let t = sup.observe(2, &[obs(4, 4), obs(4, 0)]);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].to, ShardHealth::Unhealthy);
        assert_eq!(sup.health(1), ShardHealth::Healthy);

        let drained = sup.mark_drained(0).unwrap();
        assert_eq!(drained.to, ShardHealth::Recovering);
        assert_eq!(sup.drains(), 1);

        // Two clean ticks settle back to Healthy.
        assert!(sup.observe(3, &[obs(4, 0), obs(4, 0)]).is_empty());
        let t = sup.observe(4, &[obs(4, 0), obs(4, 0)]);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].to, ShardHealth::Healthy);
        assert_eq!(sup.worst_recovery_ticks(), 2);
    }

    #[test]
    fn degraded_clears_after_clean_streak_without_drain() {
        let mut sup = ShardSupervisor::new(SupervisorConfig::default(), 1);
        sup.observe(0, &[obs(2, 2)]);
        assert_eq!(sup.health(0), ShardHealth::Degraded);
        sup.observe(1, &[obs(2, 0)]);
        assert_eq!(sup.health(0), ShardHealth::Degraded);
        sup.observe(2, &[obs(2, 0)]);
        assert_eq!(sup.health(0), ShardHealth::Healthy);
        assert_eq!(sup.drains(), 0);
    }

    #[test]
    fn idle_ticks_hold_state() {
        let mut sup = ShardSupervisor::new(SupervisorConfig::default(), 1);
        sup.observe(0, &[obs(2, 2)]);
        for tick in 1..10 {
            sup.observe(tick, &[obs(0, 0)]);
        }
        assert_eq!(sup.health(0), ShardHealth::Degraded);
    }

    #[test]
    fn mark_drained_requires_unhealthy() {
        let mut sup = ShardSupervisor::new(SupervisorConfig::default(), 1);
        assert!(sup.mark_drained(0).is_none());
        assert_eq!(sup.drains(), 0);
    }
}
