//! The sharded model registry: resident snapshots keyed by
//! `(tenant, workload)`, LRU-evicted to a [`SnapshotStore`] and lazily
//! rehydrated on the next request.
//!
//! Shard placement is FNV-1a of the key — a pure function of the key's
//! bytes, so the same tenant lands on the same shard in every run on every
//! platform. Recency is a *logical* clock (one bump per touch), never wall
//! time, so eviction order is a pure function of the request sequence.
//! Within a shard, entries live in a `BTreeMap` and LRU ties break on key
//! order: iteration, eviction, and therefore the whole serve pipeline stay
//! deterministic.

use std::collections::BTreeMap;

use crate::snapshot::{ModelSnapshot, SnapshotError, SnapshotStore};

/// The registry key: which tenant is asking, about which workload.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize)]
pub struct ClientKey {
    /// Tenant identifier.
    pub tenant: String,
    /// Workload stream within the tenant (e.g. a trace-family label).
    pub workload: String,
}

impl ClientKey {
    /// Convenience constructor.
    pub fn new(tenant: impl Into<String>, workload: impl Into<String>) -> Self {
        ClientKey {
            tenant: tenant.into(),
            workload: workload.into(),
        }
    }

    /// Platform-stable FNV-1a hash of the key (shard placement, spill file
    /// names, fault-injection keying). The `0xff` separator keeps
    /// `("ab", "c")` and `("a", "bc")` distinct.
    pub fn stable_hash(&self) -> u64 {
        let h = crate::hash::fnv1a_bytes(crate::hash::FNV_OFFSET, self.tenant.as_bytes());
        let h = crate::hash::fnv1a_byte(h, 0xff);
        crate::hash::fnv1a_bytes(h, self.workload.as_bytes())
    }
}

impl std::fmt::Display for ClientKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.tenant, self.workload)
    }
}

/// Registry geometry.
#[derive(Debug, Clone, Copy)]
pub struct RegistryConfig {
    /// Number of shards; fixed for the registry's lifetime.
    pub shard_count: usize,
    /// Resident-snapshot capacity per shard; inserting beyond it evicts
    /// the shard's least-recently-used entry to disk.
    pub capacity_per_shard: usize,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        RegistryConfig {
            shard_count: 8,
            capacity_per_shard: 256,
        }
    }
}

/// Cumulative cache accounting. Every lookup is exactly one hit or one
/// miss, so `hits + misses` equals the number of [`ShardedRegistry::get`]
/// calls — the invariant the property suite pins.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegistryStats {
    /// Lookups answered from a resident snapshot.
    pub hits: u64,
    /// Lookups that had to go to the store (successful or not).
    pub misses: u64,
    /// Successful rehydrations from disk.
    pub rehydrations: u64,
    /// Rehydrations rejected as corrupt.
    pub corrupt_rehydrations: u64,
    /// Resident snapshots evicted (spilled) to disk.
    pub evictions: u64,
    /// Spill attempts that failed (I/O error or simulated crash); the
    /// victim stays resident so its state is never lost.
    pub failed_spills: u64,
}

#[derive(Debug)]
struct Entry {
    snapshot: ModelSnapshot,
    last_used: u64,
}

#[derive(Debug, Default)]
struct Shard {
    entries: BTreeMap<ClientKey, Entry>,
}

/// The sharded, LRU-evicting snapshot registry.
#[derive(Debug)]
pub struct ShardedRegistry {
    shards: Vec<Shard>,
    capacity_per_shard: usize,
    /// Logical recency clock: bumped on every touch.
    clock: u64,
    stats: RegistryStats,
}

impl ShardedRegistry {
    /// Builds an empty registry.
    ///
    /// # Panics
    /// Panics if `shard_count` or `capacity_per_shard` is zero.
    pub fn new(cfg: RegistryConfig) -> Self {
        assert!(cfg.shard_count > 0, "registry needs at least one shard");
        assert!(
            cfg.capacity_per_shard > 0,
            "registry shards need capacity for at least one snapshot"
        );
        ShardedRegistry {
            shards: (0..cfg.shard_count).map(|_| Shard::default()).collect(),
            capacity_per_shard: cfg.capacity_per_shard,
            clock: 0,
            stats: RegistryStats::default(),
        }
    }

    /// The fixed shard count.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Which shard a key lives on.
    pub fn shard_of(&self, key: &ClientKey) -> usize {
        usize::try_from(key.stable_hash() % self.shards.len() as u64)
            // ld-lint: allow(panic-path, "hash % len is < len, which fits usize on every platform")
            .expect("shard index fits usize")
    }

    /// Total resident snapshots across all shards.
    pub fn resident(&self) -> usize {
        self.shards.iter().map(|s| s.entries.len()).sum()
    }

    /// Cumulative cache accounting.
    pub fn stats(&self) -> RegistryStats {
        self.stats
    }

    /// Installs a snapshot for `key`, spilling the shard's LRU entry to
    /// `store` if the shard is at capacity.
    ///
    /// Eviction is **spill-then-remove**: the victim is written to the
    /// store first and only dropped from memory once the write succeeded.
    /// A failed spill (I/O error, simulated crash) keeps the victim
    /// resident — the shard runs one entry over capacity until a later
    /// eviction succeeds — so no snapshot ever exists solely in a torn
    /// file. Failures are counted in [`RegistryStats::failed_spills`].
    pub fn insert(&mut self, key: ClientKey, snapshot: ModelSnapshot, store: &SnapshotStore) {
        self.clock += 1;
        let now = self.clock;
        let cap = self.capacity_per_shard;
        let idx = self.shard_of(&key);
        let shard = &mut self.shards[idx];
        let replacing = shard.entries.contains_key(&key);
        if !replacing && shard.entries.len() >= cap {
            // Evict least-recently-used; BTreeMap order breaks ties
            // deterministically.
            let victim = shard
                .entries
                .iter()
                .min_by_key(|(k, e)| (e.last_used, (*k).clone()))
                .map(|(k, _)| k.clone())
                // ld-lint: allow(panic-path, "eviction only runs when the shard is at capacity > 0")
                .expect("non-empty shard at capacity");
            let victim_snap = &shard.entries[&victim].snapshot;
            if store.save(&victim, victim_snap).is_ok() {
                shard.entries.remove(&victim);
                self.stats.evictions += 1;
            } else {
                self.stats.failed_spills += 1;
            }
        }
        shard.entries.insert(
            key,
            Entry {
                snapshot,
                last_used: now,
            },
        );
    }

    /// Looks up `key`, rehydrating from `store` on a miss. A successful
    /// rehydration makes the snapshot resident (possibly evicting another
    /// entry first). Corrupt or missing spill files surface as
    /// [`SnapshotError`] for the engine's degradation path.
    pub fn get(
        &mut self,
        key: &ClientKey,
        store: &SnapshotStore,
    ) -> Result<&ModelSnapshot, SnapshotError> {
        self.clock += 1;
        let now = self.clock;
        let idx = self.shard_of(key);
        if self.shards[idx].entries.contains_key(key) {
            self.stats.hits += 1;
            // ld-lint: allow(panic-path, "guarded by the contains_key hit check directly above")
            let entry = self.shards[idx].entries.get_mut(key).expect("hit resident");
            entry.last_used = now;
            return Ok(&entry.snapshot);
        }
        self.stats.misses += 1;
        match store.load(key) {
            Ok(snapshot) => {
                self.stats.rehydrations += 1;
                self.insert(key.clone(), snapshot, store);
                let idx = self.shard_of(key);
                // ld-lint: allow(panic-path, "insert on the previous line makes the key resident")
                Ok(&self.shards[idx].entries.get(key).expect("just inserted").snapshot)
            }
            Err(SnapshotError::Corrupt(why)) => {
                self.stats.corrupt_rehydrations += 1;
                Err(SnapshotError::Corrupt(why))
            }
            Err(other) => Err(other),
        }
    }

    /// Whether `key` is currently resident (no recency bump, no stats).
    pub fn is_resident(&self, key: &ClientKey) -> bool {
        self.shards[self.shard_of(key)].entries.contains_key(key)
    }

    /// Drains `shard` for a restart: spills every resident entry to
    /// `store` and evicts the ones that spilled cleanly. Entries whose
    /// spill failed **stay resident** (losing them would orphan state that
    /// exists nowhere else). Future requests rehydrate lazily from the
    /// store — the moral equivalent of restarting the shard process.
    ///
    /// Returns `(spilled, kept)` counts; iteration is in key order, so the
    /// drain is deterministic.
    pub fn drain_shard(&mut self, shard: usize, store: &SnapshotStore) -> (usize, usize) {
        let entries = &mut self.shards[shard].entries;
        let keys: Vec<ClientKey> = entries.keys().cloned().collect();
        let mut spilled = 0;
        let mut kept = 0;
        for key in keys {
            let snap = &entries[&key].snapshot;
            if store.save(&key, snap).is_ok() {
                entries.remove(&key);
                self.stats.evictions += 1;
                spilled += 1;
            } else {
                self.stats.failed_spills += 1;
                kept += 1;
            }
        }
        (spilled, kept)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ld_api::MinMaxScaler;
    use ld_nn::{ForecasterConfig, LstmForecaster};

    fn snap(seed: u64) -> ModelSnapshot {
        let model = LstmForecaster::new(ForecasterConfig {
            history_len: 6,
            hidden_size: 3,
            num_layers: 1,
            seed,
        });
        ModelSnapshot::new(model, MinMaxScaler::fit(&[0.0, 10.0]), 6)
    }

    fn store(name: &str) -> SnapshotStore {
        let mut p = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        p.push("../../target/ld-serve-unit");
        p.push(name);
        let s = SnapshotStore::open(p).expect("open store");
        s.clear().expect("clear store");
        s
    }

    #[test]
    fn shard_placement_is_stable_and_key_separator_matters() {
        let reg = ShardedRegistry::new(RegistryConfig::default());
        let k = ClientKey::new("t1", "wiki");
        assert_eq!(reg.shard_of(&k), reg.shard_of(&k.clone()));
        assert_ne!(
            ClientKey::new("ab", "c").stable_hash(),
            ClientKey::new("a", "bc").stable_hash()
        );
    }

    #[test]
    fn lru_eviction_spills_and_lazy_rehydration_restores() {
        let store = store("registry-lru");
        let mut reg = ShardedRegistry::new(RegistryConfig {
            shard_count: 1,
            capacity_per_shard: 2,
        });
        let (a, b, c) = (
            ClientKey::new("a", "w"),
            ClientKey::new("b", "w"),
            ClientKey::new("c", "w"),
        );
        reg.insert(a.clone(), snap(1), &store);
        reg.insert(b.clone(), snap(2), &store);
        // Touch `a` so `b` becomes LRU, then overflow.
        let fp_a = reg.get(&a, &store).expect("a resident").fingerprint();
        reg.insert(c.clone(), snap(3), &store);
        assert!(!reg.is_resident(&b), "b must have been evicted");
        assert_eq!(reg.stats().evictions, 1);
        // Lazy rehydration brings `b` back, losslessly.
        let fp_b = reg.get(&b, &store).expect("rehydrate b").fingerprint();
        assert_eq!(fp_b, snap(2).fingerprint());
        assert_eq!(reg.stats().rehydrations, 1);
        assert!(reg.is_resident(&b));
        let _ = fp_a;
    }

    #[test]
    fn accounting_sums_to_lookups() {
        let store = store("registry-accounting");
        let mut reg = ShardedRegistry::new(RegistryConfig {
            shard_count: 2,
            capacity_per_shard: 1,
        });
        let keys: Vec<ClientKey> = (0..6).map(|i| ClientKey::new(format!("t{i}"), "w")).collect();
        for (i, k) in keys.iter().enumerate() {
            reg.insert(k.clone(), snap(i as u64), &store);
        }
        let mut lookups = 0u64;
        for k in keys.iter().chain(keys.iter()).chain(keys.iter().take(3)) {
            let _ = reg.get(k, &store);
            lookups += 1;
        }
        let s = reg.stats();
        assert_eq!(s.hits + s.misses, lookups);
    }

    #[test]
    fn missing_spill_is_an_error_not_a_panic() {
        let store = store("registry-missing");
        let mut reg = ShardedRegistry::new(RegistryConfig::default());
        let err = reg.get(&ClientKey::new("ghost", "w"), &store).unwrap_err();
        assert_eq!(err, SnapshotError::Missing);
    }

    #[test]
    fn drain_shard_spills_everything_and_rehydrates_losslessly() {
        let store = store("registry-drain");
        let mut reg = ShardedRegistry::new(RegistryConfig {
            shard_count: 1,
            capacity_per_shard: 8,
        });
        let keys: Vec<ClientKey> = (0..4).map(|i| ClientKey::new(format!("d{i}"), "w")).collect();
        let fps: Vec<u64> = keys
            .iter()
            .enumerate()
            .map(|(i, k)| {
                let s = snap(100 + i as u64);
                let fp = s.fingerprint();
                reg.insert(k.clone(), s, &store);
                fp
            })
            .collect();
        let (spilled, kept) = reg.drain_shard(0, &store);
        assert_eq!((spilled, kept), (4, 0));
        assert_eq!(reg.resident(), 0);
        // Every tenant comes back from durable state with identical weights.
        for (k, fp) in keys.iter().zip(&fps) {
            assert_eq!(reg.get(k, &store).expect("rehydrate").fingerprint(), *fp);
        }
        assert_eq!(reg.stats().failed_spills, 0);
    }
}
