//! FNV-1a, the crate's one hash: stable across platforms and runs, cheap,
//! and entirely seed/content-derived — exactly what shard placement, spill
//! file naming, and response digests need. `std`'s `DefaultHasher` is
//! explicitly *not* stable across releases, so it never appears here.

/// FNV-1a 64-bit offset basis.
pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds one byte into a running FNV-1a state.
#[inline]
pub(crate) fn fnv1a_byte(h: u64, b: u8) -> u64 {
    (h ^ u64::from(b)).wrapping_mul(FNV_PRIME)
}

/// Folds a byte slice into a running FNV-1a state.
pub(crate) fn fnv1a_bytes(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h = fnv1a_byte(h, b);
    }
    h
}

/// Folds a `u64` (little-endian bytes) into a running FNV-1a state.
#[inline]
pub(crate) fn fnv1a_u64(mut h: u64, v: u64) -> u64 {
    for b in v.to_le_bytes() {
        h = fnv1a_byte(h, b);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a_bytes(FNV_OFFSET, b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_bytes(FNV_OFFSET, b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_bytes(FNV_OFFSET, b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn u64_fold_matches_byte_fold() {
        let v = 0x0123_4567_89ab_cdefu64;
        assert_eq!(
            fnv1a_u64(FNV_OFFSET, v),
            fnv1a_bytes(FNV_OFFSET, &v.to_le_bytes())
        );
    }
}
