//! `ld-serve` — the multi-tenant serving layer over the trained
//! LoadDynamics predictors.
//!
//! The paper tunes one predictor per workload configuration; a cloud
//! provider runs *many* tenants at once. This crate is the piece between
//! the trained models and that fleet:
//!
//! - [`snapshot`]: serializable [`snapshot::ModelSnapshot`]s (model +
//!   tenant scaler + window length) with weight fingerprints, spilled to
//!   and rehydrated from a [`snapshot::SnapshotStore`];
//! - [`registry`]: the FNV-sharded, logically-clocked LRU registry of
//!   resident snapshots keyed by `(tenant, workload)`;
//! - [`admission`]: a bounded request queue whose shed decisions are a
//!   pure function of the submission sequence;
//! - [`engine`]: the tick-based [`engine::ServeEngine`] — drains the
//!   queue, groups lanes by `(shape, weight fingerprint)`, and answers
//!   each group with one fused batched LSTM forward
//!   ([`ld_nn::LstmForecaster::predict_batch_fused`]) while retaining the
//!   per-tenant serial and reference paths for equivalence; poisoned or
//!   snapshot-less tenants degrade to the WMA smoothing fallback without
//!   contaminating their co-batched neighbors;
//! - [`lifecycle`]: deadlines, deterministic retry backoff, and the
//!   per-tenant/per-shard circuit breakers that route tripped tenants to
//!   the smoothing fallback;
//! - [`supervisor`]: per-shard health tracking that drains and restarts
//!   unhealthy shards from durable snapshot state;
//! - [`bench`]: the stable `BENCH_serve.json` / `BENCH_resilience.json`
//!   schemas written by the `ld-loadgen` binary, plus their validators.
//!
//! Everything downstream of the request sequence is deterministic: shard
//! placement and batch composition derive from keys and seeds — never from
//! arrival time, thread identity, or the wall clock — so identically-seeded
//! load runs produce bitwise-identical response streams and identical span
//! trees.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod admission;
pub mod bench;
pub mod engine;
mod hash;
pub mod lifecycle;
pub mod registry;
pub mod snapshot;
pub mod supervisor;

pub use admission::{AdmissionQueue, AdmissionStats, Request};
pub use bench::{
    percentile_ns, validate_document, validate_resilience_document, ResilienceBenchReport,
    ServeBenchReport, RESILIENCE_SCHEMA_VERSION, SERVE_SCHEMA_VERSION,
};
pub use engine::{
    response_digest, EngineConfig, ExecMode, LifecycleConfig, LifecycleStats, Response,
    ResponseSource, ServeEngine, ServeStats,
};
pub use lifecycle::{Breaker, BreakerConfig, BreakerState, RetryPolicy, RetrySchedule, Route};
pub use registry::{ClientKey, RegistryConfig, RegistryStats, ShardedRegistry};
pub use snapshot::{ModelSnapshot, ModelShape, RecoveryReport, SnapshotError, SnapshotStore};
pub use supervisor::{
    HealthTransition, ShardHealth, ShardObservation, ShardSupervisor, SupervisorConfig,
};
