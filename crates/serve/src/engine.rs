//! The tick-based serving engine: admission, snapshot resolution, batch
//! fusion, per-tenant graceful degradation, and the request lifecycle
//! (deadlines, retries, circuit breakers, shard health).
//!
//! Per tick the engine drains its bounded queue plus any parked retries,
//! resolves each request's snapshot through the sharded registry
//! (rehydrating from disk on a miss), and groups the resolved lanes by
//! `(model shape, weight fingerprint)`. Each group becomes one fused
//! batched LSTM forward
//! ([`ld_nn::LstmForecaster::predict_batch_fused`]): one blocked GEMM per
//! gate block instead of one mat-vec per tenant per step.
//!
//! # Determinism contract
//!
//! Batch composition is derived from seeds, never from arrival time: lanes
//! are ordered by request id (assigned by the load schedule), groups by
//! fingerprint, and every span index is logical (tick number, shard index,
//! group ordinal, request id). Retry backoff jitter hashes the request id;
//! breaker transitions advance on logical ticks; slow-shard deferral uses
//! driver-installed per-tick delays. Two identically-seeded runs produce
//! bitwise-identical responses and identical span trees.
//!
//! # Degradation contract
//!
//! A tenant whose snapshot cannot be produced (corrupt spill file) or whose
//! scaled window is non-finite (upstream NaN, injected via the `batch_nan`
//! fault site) is answered by the WMA smoothing fallback and marked
//! `degraded` — and is *excluded from the fused batch*, so a poisoned
//! tenant can never contaminate the lanes it would have been co-batched
//! with. A tenant behind an open circuit breaker, or whose deadline
//! expired, is likewise answered from its own history only. Every request
//! is eventually answered explicitly; nothing hangs.

use std::collections::BTreeMap;

use ld_api::Predictor as _;
use ld_metrics::Metrics;
use ld_nn::{BatchScratch, LstmForecaster};
use ld_telemetry::Tracer;

use crate::admission::{AdmissionQueue, AdmissionStats, Request};
use crate::lifecycle::{Breaker, BreakerConfig, BreakerState, RetryPolicy, RetrySchedule, Route};
use crate::registry::{ClientKey, RegistryConfig, RegistryStats, ShardedRegistry};
use crate::snapshot::{ModelSnapshot, RecoveryReport, SnapshotError, SnapshotStore};
use crate::supervisor::{ShardHealth, ShardObservation, ShardSupervisor, SupervisorConfig};

/// Which compute path answers the non-degraded lanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Fused per-gate GEMMs over each `(shape, fingerprint)` group.
    Batched,
    /// The per-tenant workspace path ([`LstmForecaster::predict`]),
    /// retained for equivalence checks and as the honest serial baseline.
    Serial,
    /// The per-tenant allocating reference path
    /// ([`LstmForecaster::predict_reference`]); the fused path is bitwise
    /// equal to this one by construction.
    Reference,
}

/// Lifecycle-control knobs: deadlines, retry, breakers, shard health.
#[derive(Debug, Clone, Copy)]
pub struct LifecycleConfig {
    /// Default per-request deadline budget in ticks, applied at submission
    /// to requests that carry none (`None` = no default budget).
    pub deadline_ticks: Option<u64>,
    /// Retry policy for transient model-path failures.
    pub retry: RetryPolicy,
    /// Per-tenant and per-shard circuit breaker tuning.
    pub breaker: BreakerConfig,
    /// Shard health supervision tuning.
    pub supervisor: SupervisorConfig,
}

impl Default for LifecycleConfig {
    fn default() -> Self {
        LifecycleConfig {
            deadline_ticks: Some(8),
            retry: RetryPolicy::default(),
            breaker: BreakerConfig::default(),
            supervisor: SupervisorConfig::default(),
        }
    }
}

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Compute path for non-degraded lanes.
    pub mode: ExecMode,
    /// Admission queue bound.
    pub queue_capacity: usize,
    /// Registry geometry.
    pub registry: RegistryConfig,
    /// Request lifecycle control.
    pub lifecycle: LifecycleConfig,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            mode: ExecMode::Batched,
            queue_capacity: 4096,
            registry: RegistryConfig::default(),
            lifecycle: LifecycleConfig::default(),
        }
    }
}

/// How a response was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResponseSource {
    /// Fused batched forward.
    Batched,
    /// Per-tenant workspace forward.
    Serial,
    /// Per-tenant reference forward.
    Reference,
    /// WMA smoothing fallback (degraded, tripped, or unresolvable lane).
    Fallback,
    /// Deadline expired before the engine could answer; the value is the
    /// smoothing fallback over the request's own history.
    Expired,
}

impl ResponseSource {
    fn tag(self) -> u8 {
        match self {
            ResponseSource::Batched => 0,
            ResponseSource::Serial => 1,
            ResponseSource::Reference => 2,
            ResponseSource::Fallback => 3,
            ResponseSource::Expired => 4,
        }
    }
}

/// One answered request.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The request's id.
    pub id: u64,
    /// The request's key.
    pub key: ClientKey,
    /// Forecast JAR for the next interval (non-negative).
    pub value: f64,
    /// Which path produced `value`.
    pub source: ResponseSource,
    /// True when the tenant was answered by the smoothing fallback.
    pub degraded: bool,
}

/// Lifecycle accounting: what the resilience layer did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LifecycleStats {
    /// Requests answered as [`ResponseSource::Expired`].
    pub expired: u64,
    /// Retries parked after transient failures.
    pub retries: u64,
    /// Requests deferred off a slow shard.
    pub deferrals: u64,
    /// Requests answered from fallback because a breaker was open.
    pub breaker_fallbacks: u64,
    /// Breaker trips (tenant + shard), cumulative.
    pub breaker_trips: u64,
    /// Shard drain-restarts ordered by the supervisor.
    pub shard_drains: u64,
    /// Longest observed Unhealthy -> Healthy shard recovery, in ticks.
    pub worst_recovery_ticks: u64,
}

/// Engine-wide accounting (queue + cache + serving + lifecycle counters).
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeStats {
    /// Requests answered (any source).
    pub served: u64,
    /// Requests answered by the smoothing fallback (degraded for any
    /// reason, including breaker routing and expiry).
    pub degraded: u64,
    /// Queue accounting.
    pub admission: AdmissionStats,
    /// Registry cache accounting.
    pub cache: RegistryStats,
    /// Lifecycle accounting.
    pub lifecycle: LifecycleStats,
}

/// One resolved, batchable lane.
struct Lane {
    id: u64,
    key: ClientKey,
    shard: usize,
    scaler: ld_api::MinMaxScaler,
    /// Scaled window, exactly `history_len` long.
    window: Vec<f64>,
}

/// Lanes sharing one set of weights, plus a clone of those weights to run
/// them with (cloned once per group per tick; the registry stays free to
/// evict mid-tick without invalidating the batch).
struct Group {
    model: LstmForecaster,
    lanes: Vec<Lane>,
}

/// A request in flight across ticks: how many retries it has consumed and
/// whether it has already been deferred off a slow shard.
#[derive(Debug, Clone)]
struct InFlight {
    req: Request,
    attempt: u32,
    deferred: bool,
}

/// Model-path outcome for breaker/supervisor bookkeeping.
struct Outcome {
    id: u64,
    key: ClientKey,
    shard: usize,
    ok: bool,
}

/// The serving engine.
#[derive(Debug)]
pub struct ServeEngine {
    mode: ExecMode,
    lifecycle: LifecycleConfig,
    registry: ShardedRegistry,
    store: SnapshotStore,
    queue: AdmissionQueue,
    tracer: Tracer,
    scratch: BatchScratch,
    tick: u64,
    served: u64,
    degraded: u64,
    lifecycle_stats: LifecycleStats,
    /// Requests parked for retry backoff or slow-shard deferral.
    parked: RetrySchedule<InFlight>,
    /// Per-tenant breakers, keyed deterministically by client key.
    tenant_breakers: BTreeMap<ClientKey, Breaker>,
    /// Per-shard breakers.
    shard_breakers: Vec<Breaker>,
    /// Driver-installed per-shard service delay for the *next* tick
    /// (chaos slow-shard windows); cleared by `set_shard_delays`.
    shard_delay: Vec<u64>,
    supervisor: ShardSupervisor,
    /// Pure-observer metrics plane. Disabled by default; every recording
    /// site below is guarded so the metrics-off path does no extra work
    /// and no engine decision ever reads a metric.
    metrics: Metrics,
    /// Submission tick per in-flight request id, kept only while metrics
    /// are enabled, for the logical request-latency histogram.
    submit_tick: BTreeMap<u64, u64>,
    /// Registry/breaker/supervisor totals already exported, so each tick
    /// emits deltas (counters stay monotonic).
    cache_seen: RegistryStats,
    trips_seen: u64,
    drains_seen: u64,
}

impl ServeEngine {
    /// Builds an engine spilling to `store`.
    pub fn new(cfg: EngineConfig, store: SnapshotStore, tracer: Tracer) -> Self {
        let shards = cfg.registry.shard_count;
        ServeEngine {
            mode: cfg.mode,
            lifecycle: cfg.lifecycle,
            registry: ShardedRegistry::new(cfg.registry),
            store,
            queue: AdmissionQueue::new(cfg.queue_capacity),
            tracer,
            scratch: BatchScratch::new(),
            tick: 0,
            served: 0,
            degraded: 0,
            lifecycle_stats: LifecycleStats::default(),
            parked: RetrySchedule::new(),
            tenant_breakers: BTreeMap::new(),
            shard_breakers: (0..shards).map(|_| Breaker::new(cfg.lifecycle.breaker)).collect(),
            shard_delay: vec![0; shards],
            supervisor: ShardSupervisor::new(cfg.lifecycle.supervisor, shards),
            metrics: Metrics::disabled(),
            submit_tick: BTreeMap::new(),
            cache_seen: RegistryStats::default(),
            trips_seen: 0,
            drains_seen: 0,
        }
    }

    /// Attaches a metrics handle (builder style, like the tracer). The
    /// engine only ever *writes* metrics; behavior with metrics enabled is
    /// bitwise identical to disabled — the loadgen and perfbench gates
    /// assert it.
    #[must_use]
    pub fn with_metrics(mut self, metrics: Metrics) -> Self {
        self.metrics = metrics;
        self
    }

    /// The metrics handle threaded through every tick.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Installs a snapshot for `key` (training-time provisioning). Spill
    /// failures during eviction keep the victim resident and are counted
    /// in [`RegistryStats::failed_spills`].
    pub fn provision(&mut self, key: ClientKey, snapshot: ModelSnapshot) {
        self.registry.insert(key, snapshot, &self.store);
    }

    /// Offers a request; `Err` returns it because it was shed. Requests
    /// without a deadline receive the engine's default budget (deadline =
    /// next tick + `deadline_ticks`).
    pub fn submit(&mut self, mut req: Request) -> Result<(), Request> {
        if req.deadline.is_none() {
            if let Some(budget) = self.lifecycle.deadline_ticks {
                req.deadline = Some(self.tick.saturating_add(budget));
            }
        }
        let id = req.id;
        match self.queue.offer(req) {
            Ok(()) => {
                if self.metrics.is_enabled() {
                    self.metrics.incr("serve.requests_submitted_total");
                    self.submit_tick.insert(id, self.tick);
                }
                Ok(())
            }
            Err(req) => {
                self.metrics.incr("serve.requests_shed_total");
                Err(req)
            }
        }
    }

    /// Engine-wide accounting.
    pub fn stats(&self) -> ServeStats {
        let mut lifecycle = self.lifecycle_stats;
        lifecycle.breaker_trips = self
            .tenant_breakers
            .values()
            .chain(self.shard_breakers.iter())
            .map(Breaker::trips)
            .sum();
        lifecycle.shard_drains = self.supervisor.drains();
        lifecycle.worst_recovery_ticks = self.supervisor.worst_recovery_ticks();
        ServeStats {
            served: self.served,
            degraded: self.degraded,
            admission: self.queue.stats(),
            cache: self.registry.stats(),
            lifecycle,
        }
    }

    /// The registry's fixed shard count.
    pub fn shard_count(&self) -> usize {
        self.registry.shard_count()
    }

    /// Current queue depth (bounded by the configured capacity).
    pub fn queue_depth(&self) -> usize {
        self.queue.depth()
    }

    /// Requests the engine still owes an answer for: queued plus parked
    /// (retry backoff / slow-shard deferral). Drivers tick until this hits
    /// zero — the "no hangs" settle loop.
    pub fn pending_work(&self) -> usize {
        self.queue.depth() + self.parked.len()
    }

    /// The tracer threaded through every tick.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The snapshot spill store.
    pub fn store(&self) -> &SnapshotStore {
        &self.store
    }

    /// Direct registry access (tests and capacity experiments).
    pub fn registry(&self) -> &ShardedRegistry {
        &self.registry
    }

    /// The tenant breaker's current state (tests, bench reporting).
    pub fn tenant_breaker_state(&self, key: &ClientKey) -> BreakerState {
        self.tenant_breakers
            .get(key)
            .map_or(BreakerState::Closed, Breaker::state)
    }

    /// The shard's current health.
    pub fn shard_health(&self, shard: usize) -> ShardHealth {
        self.supervisor.health(shard)
    }

    /// Installs per-shard service delays for subsequent ticks (chaos
    /// slow-shard windows). Unlisted shards are reset to zero delay.
    pub fn set_shard_delays(&mut self, delays: &[(u64, u64)]) {
        self.shard_delay.iter_mut().for_each(|d| *d = 0);
        for &(shard, delay) in delays {
            if let Some(slot) = self.shard_delay.get_mut(shard as usize) {
                *slot = (*slot).max(delay);
            }
        }
    }

    /// Runs a crash-recovery pass over the snapshot store (quarantine torn
    /// temps and corrupt entries, rebuild the index) and records it as a
    /// `store_recovery` span indexed by the current tick.
    pub fn recover_store(&mut self) -> std::io::Result<RecoveryReport> {
        let report = self.store.recover()?;
        self.tracer.record_span(
            "store_recovery",
            self.tick,
            (report.quarantined_torn + report.quarantined_corrupt) as u64,
            report.indexed as u64,
        );
        if self.metrics.is_enabled() {
            self.metrics.incr("serve.store_recoveries_total");
            self.metrics.add(
                "serve.store_quarantined_total",
                (report.quarantined_torn + report.quarantined_corrupt) as u64,
            );
            self.metrics.gauge_set("serve.store_indexed", report.indexed as u64);
        }
        Ok(report)
    }

    /// Drains the queue plus due retries and answers every request it can;
    /// parks retries/deferrals for later ticks. Responses come back sorted
    /// by request id regardless of batching layout.
    pub fn tick(&mut self) -> Vec<Response> {
        let tick_idx = self.tick;
        self.tick += 1;
        let tick_span = self.tracer.span_at("tick", tick_idx);
        let tr = tick_span.tracer();

        // Lifecycle counters are emitted as per-tick deltas against this
        // entry snapshot, so one guard covers every site in the resolve
        // loop below.
        let lifecycle_before = self.lifecycle_stats;
        if self.metrics.is_enabled() {
            self.metrics.gauge_set("serve.queue_depth", self.queue.depth() as u64);
            self.metrics.gauge_set("serve.parked", self.parked.len() as u64);
        }

        let mut work: Vec<InFlight> = self.parked.release(tick_idx);
        work.extend(self.queue.drain().into_iter().map(|req| InFlight {
            req,
            attempt: 0,
            deferred: false,
        }));
        // Seed-derived composition: order by schedule-assigned id, not by
        // the order submissions happened to arrive in.
        work.sort_by_key(|w| w.req.id);

        let mut responses: Vec<Response> = Vec::with_capacity(work.len());
        let mut groups: BTreeMap<u64, Group> = BTreeMap::new();
        let mut outcomes: Vec<Outcome> = Vec::new();
        let mut per_shard = vec![0u64; self.registry.shard_count()];
        let mut shard_obs = vec![ShardObservation::default(); self.registry.shard_count()];

        {
            let resolve_span = tr.span_at("resolve", tick_idx);
            let rtr = resolve_span.tracer();
            for item in work {
                let shard = self.registry.shard_of(&item.req.key);
                per_shard[shard] += 1;

                // Deadline budget: a request the engine failed to answer by
                // its deadline tick gets an explicit Expired answer — an
                // answer from its own history, never a hang.
                if item.req.deadline.is_some_and(|d| tick_idx > d) {
                    self.lifecycle_stats.expired += 1;
                    responses.push(expired_response(&item.req));
                    continue;
                }

                // Slow-shard deferral: at most once per request, and never
                // past the deadline.
                let delay = self.shard_delay[shard];
                if delay > 0 && !item.deferred {
                    let release = tick_idx + delay;
                    shard_obs[shard].deferred += 1;
                    if item.req.deadline.is_some_and(|d| release > d) {
                        self.lifecycle_stats.expired += 1;
                        responses.push(expired_response(&item.req));
                    } else {
                        self.lifecycle_stats.deferrals += 1;
                        self.parked.park(
                            release,
                            InFlight {
                                deferred: true,
                                ..item
                            },
                        );
                    }
                    continue;
                }

                // Circuit breakers: shard first, then tenant. An open
                // breaker answers from the tenant's own history and records
                // no outcome (fast-fails must not extend the cooldown).
                let shard_route = self.shard_breakers[shard].route(tick_idx);
                let route = if shard_route == Route::Fallback {
                    Route::Fallback
                } else {
                    self.tenant_breakers
                        .entry(item.req.key.clone())
                        .or_insert_with(|| Breaker::new(self.lifecycle.breaker))
                        .route(tick_idx)
                };
                if route == Route::Fallback {
                    self.lifecycle_stats.breaker_fallbacks += 1;
                    responses.push(fallback_response(&item.req));
                    continue;
                }

                match self.registry.get(&item.req.key, &self.store) {
                    Ok(snap) => {
                        let scaler = snap.scaler();
                        let n = snap.history_len();
                        let fingerprint = snap.fingerprint();
                        let mut window = scaled_window(&item.req.history, n, scaler);
                        if ld_faultinject::is_active()
                            && ld_faultinject::fault_hit(
                                ld_faultinject::FaultSite::BatchNan,
                                item.req.key.stable_hash() ^ tick_idx.rotate_left(23),
                            )
                        {
                            // Simulated upstream poison: the lane's scaled
                            // window arrives non-finite.
                            window[0] = f64::NAN;
                        }
                        if window.iter().all(|v| v.is_finite()) {
                            let group = groups.entry(fingerprint).or_insert_with(|| Group {
                                model: snap.model().clone(),
                                lanes: Vec::new(),
                            });
                            group.lanes.push(Lane {
                                id: item.req.id,
                                key: item.req.key,
                                shard,
                                scaler,
                                window,
                            });
                        } else {
                            self.finish_failure(
                                tick_idx,
                                item,
                                shard,
                                true,
                                &mut responses,
                                &mut outcomes,
                            );
                        }
                    }
                    Err(err) => {
                        // Corrupt spills are transient (the bytes may heal
                        // after recovery/re-spill); Missing is permanent.
                        let transient = matches!(err, SnapshotError::Corrupt(_));
                        self.finish_failure(
                            tick_idx,
                            item,
                            shard,
                            transient,
                            &mut responses,
                            &mut outcomes,
                        );
                    }
                }
            }
            for (shard, &n) in per_shard.iter().enumerate() {
                if n > 0 {
                    rtr.record_span("shard", shard as u64, n, 0);
                }
            }
        }

        if self.metrics.is_enabled() {
            for (shard, &n) in per_shard.iter().enumerate() {
                if n > 0 {
                    self.metrics.gauge_set(&format!("serve.shard{shard}.requests"), n);
                    self.metrics.observe("serve.shard_requests", n);
                }
            }
            self.metrics.observe("serve.batch_groups", groups.len() as u64);
            for group in groups.values() {
                self.metrics.observe("serve.batch_size", group.lanes.len() as u64);
            }
        }

        for (ordinal, group) in groups.values_mut().enumerate() {
            let batch_span = tr.span_at("batch", ordinal as u64);
            let btr = batch_span.tracer();
            match self.mode {
                ExecMode::Batched => {
                    let n = group.model.config().history_len;
                    let batch = group.lanes.len();
                    let mut windows = Vec::with_capacity(batch * n);
                    for lane in &group.lanes {
                        windows.extend_from_slice(&lane.window);
                    }
                    let mut out = vec![0.0; batch];
                    group
                        .model
                        .predict_batch_fused(&windows, batch, &mut self.scratch, &mut out);
                    for (lane, &y) in group.lanes.iter().zip(&out) {
                        btr.record_span("request", lane.id, 1, 0);
                        let resp = finish_lane(lane, y, ResponseSource::Batched);
                        outcomes.push(Outcome {
                            id: lane.id,
                            key: lane.key.clone(),
                            shard: lane.shard,
                            ok: !resp.degraded,
                        });
                        responses.push(resp);
                    }
                }
                ExecMode::Serial | ExecMode::Reference => {
                    let source = if self.mode == ExecMode::Serial {
                        ResponseSource::Serial
                    } else {
                        ResponseSource::Reference
                    };
                    for lane in &group.lanes {
                        btr.record_span("request", lane.id, 1, 0);
                        let y = match source {
                            ResponseSource::Serial => group.model.predict(&lane.window),
                            _ => group.model.predict_reference(&lane.window),
                        };
                        let resp = finish_lane(lane, y, source);
                        outcomes.push(Outcome {
                            id: lane.id,
                            key: lane.key.clone(),
                            shard: lane.shard,
                            ok: !resp.degraded,
                        });
                        responses.push(resp);
                    }
                }
            }
        }

        // Apply model-path outcomes in id order: breaker state advances as
        // a pure function of the (deterministic) outcome sequence.
        outcomes.sort_by_key(|o| o.id);
        for o in &outcomes {
            shard_obs[o.shard].services += 1;
            if !o.ok {
                shard_obs[o.shard].errors += 1;
            }
            self.shard_breakers[o.shard].record(tick_idx, o.ok);
            self.tenant_breakers
                .entry(o.key.clone())
                .or_insert_with(|| Breaker::new(self.lifecycle.breaker))
                .record(tick_idx, o.ok);
        }

        // Shard health: escalate, drain unhealthy shards (spill + evict so
        // future requests rehydrate from durable state), and record every
        // transition as a span (duration = new state, ago = old state).
        let mut transitions = self.supervisor.observe(tick_idx, &shard_obs);
        let unhealthy: Vec<usize> = transitions
            .iter()
            .filter(|t| t.to == ShardHealth::Unhealthy)
            .map(|t| t.shard)
            .collect();
        for shard in unhealthy {
            self.registry.drain_shard(shard, &self.store);
            if let Some(t) = self.supervisor.mark_drained(shard) {
                transitions.push(t);
            }
        }
        for t in &transitions {
            tr.record_span("shard_health", t.shard as u64, t.to.code(), t.from.code());
        }

        responses.sort_by_key(|r| r.id);
        self.served += responses.len() as u64;
        self.degraded += responses.iter().filter(|r| r.degraded).count() as u64;

        if self.metrics.is_enabled() {
            self.record_tick_metrics(tick_idx, &responses, lifecycle_before, &transitions);
        }
        responses
    }

    /// Per-tick metrics export: response counters, logical latency
    /// histogram, lifecycle deltas, breaker/supervisor transitions, and
    /// registry cache deltas. Called only with metrics enabled; reads
    /// engine state, never writes it.
    fn record_tick_metrics(
        &mut self,
        tick_idx: u64,
        responses: &[Response],
        lifecycle_before: LifecycleStats,
        transitions: &[crate::supervisor::HealthTransition],
    ) {
        let m = &self.metrics;
        m.add("serve.responses_total", responses.len() as u64);
        for r in responses {
            if r.degraded {
                m.incr("serve.responses_degraded_total");
            }
            if let Some(submitted) = self.submit_tick.remove(&r.id) {
                m.observe("serve.request_latency_ticks", tick_idx.saturating_sub(submitted));
            }
        }
        let lc = self.lifecycle_stats;
        m.add("serve.expired_total", lc.expired.saturating_sub(lifecycle_before.expired));
        m.add("serve.retries_total", lc.retries.saturating_sub(lifecycle_before.retries));
        m.add(
            "serve.deferrals_total",
            lc.deferrals.saturating_sub(lifecycle_before.deferrals),
        );
        m.add(
            "serve.breaker_fallbacks_total",
            lc.breaker_fallbacks.saturating_sub(lifecycle_before.breaker_fallbacks),
        );

        let trips: u64 = self
            .tenant_breakers
            .values()
            .chain(self.shard_breakers.iter())
            .map(Breaker::trips)
            .sum();
        m.add("serve.breaker_trips_total", trips.saturating_sub(self.trips_seen));
        self.trips_seen = trips;

        m.add("serve.shard_health_transitions_total", transitions.len() as u64);
        let drains = self.supervisor.drains();
        m.add("serve.shard_drains_total", drains.saturating_sub(self.drains_seen));
        self.drains_seen = drains;

        let cache = self.registry.stats();
        let seen = self.cache_seen;
        m.add("serve.cache_hits_total", cache.hits.saturating_sub(seen.hits));
        m.add("serve.cache_misses_total", cache.misses.saturating_sub(seen.misses));
        m.add(
            "serve.cache_rehydrations_total",
            cache.rehydrations.saturating_sub(seen.rehydrations),
        );
        m.add(
            "serve.cache_corrupt_rehydrations_total",
            cache.corrupt_rehydrations.saturating_sub(seen.corrupt_rehydrations),
        );
        m.add("serve.cache_evictions_total", cache.evictions.saturating_sub(seen.evictions));
        m.add(
            "serve.cache_failed_spills_total",
            cache.failed_spills.saturating_sub(seen.failed_spills),
        );
        self.cache_seen = cache;
    }

    /// Handles a model-path failure for `item`: records the outcome, then
    /// either parks a retry (transient failure, budget and deadline allow)
    /// or answers from the fallback now.
    fn finish_failure(
        &mut self,
        tick_idx: u64,
        item: InFlight,
        shard: usize,
        transient: bool,
        responses: &mut Vec<Response>,
        outcomes: &mut Vec<Outcome>,
    ) {
        outcomes.push(Outcome {
            id: item.req.id,
            key: item.req.key.clone(),
            shard,
            ok: false,
        });
        let next_attempt = item.attempt + 1;
        if transient && self.lifecycle.retry.allows(next_attempt) {
            // Jitter derives from the request id — the request's own seed —
            // never the wall clock.
            let backoff = self
                .lifecycle
                .retry
                .backoff(next_attempt, item.req.id.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let release = tick_idx + backoff;
            if item.req.deadline.is_none_or(|d| release <= d) {
                self.lifecycle_stats.retries += 1;
                self.parked.park(
                    release,
                    InFlight {
                        attempt: next_attempt,
                        ..item
                    },
                );
                return;
            }
        }
        responses.push(fallback_response(&item.req));
    }
}

/// Mirrors `OptimizedPredictor::predict`'s window preparation exactly:
/// take the last `n` observations (left-padding with the earliest value
/// when the history is shorter) and scale each one.
fn scaled_window(history: &[f64], n: usize, scaler: ld_api::MinMaxScaler) -> Vec<f64> {
    assert!(!history.is_empty(), "request history must be non-empty");
    if history.len() >= n {
        history[history.len() - n..]
            .iter()
            .map(|&v| scaler.transform(v))
            .collect()
    } else {
        let pad = n - history.len();
        std::iter::repeat_n(history[0], pad)
            .chain(history.iter().cloned())
            .map(|v| scaler.transform(v))
            .collect()
    }
}

/// Inverse-scales a model output and clamps to the non-negative JAR domain
/// (same post-processing as `OptimizedPredictor::predict`). A non-finite
/// model output degrades the lane instead of poisoning the response.
fn finish_lane(lane: &Lane, y: f64, source: ResponseSource) -> Response {
    let value = lane.scaler.inverse(y).max(0.0);
    if value.is_finite() {
        Response {
            id: lane.id,
            key: lane.key.clone(),
            value,
            source,
            degraded: false,
        }
    } else {
        Response {
            id: lane.id,
            key: lane.key.clone(),
            value: wma_forecast_scaled(lane),
            source: ResponseSource::Fallback,
            degraded: true,
        }
    }
}

/// The smoothing fallback over a lane's scaled window, inverse-scaled.
fn wma_forecast_scaled(lane: &Lane) -> f64 {
    let raw: Vec<f64> = lane.window.iter().map(|&u| lane.scaler.inverse(u)).collect();
    ld_baselines::smoothing::Wma::default().predict(&raw).max(0.0)
}

/// The smoothing fallback value straight over a request's raw history.
fn fallback_value(req: &Request) -> f64 {
    let finite: Vec<f64> = req.history.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() {
        0.0
    } else {
        ld_baselines::smoothing::Wma::default().predict(&finite).max(0.0)
    }
}

/// The smoothing fallback for a request that never produced a lane
/// (corrupt snapshot / poisoned window / open breaker).
fn fallback_response(req: &Request) -> Response {
    Response {
        id: req.id,
        key: req.key.clone(),
        value: fallback_value(req),
        source: ResponseSource::Fallback,
        degraded: true,
    }
}

/// The explicit answer for a request whose deadline passed.
fn expired_response(req: &Request) -> Response {
    Response {
        id: req.id,
        key: req.key.clone(),
        value: fallback_value(req),
        source: ResponseSource::Expired,
        degraded: true,
    }
}

/// FNV-1a digest over a response stream: id, value bits, source, degraded
/// flag of every response in order. Two identically-seeded runs must
/// produce equal digests — the loadgen's bitwise-determinism gate.
pub fn response_digest(responses: &[Response]) -> u64 {
    let mut h = crate::hash::FNV_OFFSET;
    for r in responses {
        h = crate::hash::fnv1a_u64(h, r.id);
        h = crate::hash::fnv1a_u64(h, r.value.to_bits());
        h = crate::hash::fnv1a_byte(h, r.source.tag());
        h = crate::hash::fnv1a_byte(h, u8::from(r.degraded));
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use ld_api::MinMaxScaler;
    use ld_nn::ForecasterConfig;

    fn test_store(name: &str) -> SnapshotStore {
        let mut p = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        p.push("../../target/ld-serve-unit");
        p.push(name);
        let s = SnapshotStore::open(p).expect("open store");
        s.clear().expect("clear store");
        s
    }

    fn engine(name: &str, mode: ExecMode) -> ServeEngine {
        ServeEngine::new(
            EngineConfig {
                mode,
                queue_capacity: 64,
                registry: RegistryConfig {
                    shard_count: 4,
                    capacity_per_shard: 16,
                },
                lifecycle: LifecycleConfig::default(),
            },
            test_store(name),
            Tracer::disabled(),
        )
    }

    fn snapshot(seed: u64, lo_hi: (f64, f64)) -> ModelSnapshot {
        let model = LstmForecaster::new(ForecasterConfig {
            history_len: 6,
            hidden_size: 4,
            num_layers: 1,
            seed,
        });
        ModelSnapshot::new(model, MinMaxScaler::fit(&[lo_hi.0, lo_hi.1]), 6)
    }

    fn history(id: u64) -> Vec<f64> {
        (0..9).map(|i| 40.0 + f64::from(i) * 3.0 + (id as f64)).collect()
    }

    #[test]
    fn batched_equals_reference_bitwise_and_serial_to_1e12() {
        let mut keys = Vec::new();
        let mut engines = [
            engine("engine-eq-batched", ExecMode::Batched),
            engine("engine-eq-serial", ExecMode::Serial),
            engine("engine-eq-reference", ExecMode::Reference),
        ];
        for e in &mut engines {
            for t in 0..8u64 {
                let key = ClientKey::new(format!("t{t}"), "wiki");
                // Two distinct models (two groups), per-tenant scalers.
                e.provision(key.clone(), snapshot(t % 2, (0.0, 100.0 + f64::from(u32::try_from(t).unwrap()))));
                if keys.len() < 8 {
                    keys.push(key);
                }
            }
        }
        let run = |e: &mut ServeEngine, keys: &[ClientKey]| -> Vec<Response> {
            for (i, key) in keys.iter().enumerate() {
                e.submit(Request::new(i as u64, key.clone(), history(i as u64)))
                    .expect("admit");
            }
            e.tick()
        };
        let [ref mut b, ref mut s, ref mut r] = engines;
        let batched = run(b, &keys);
        let serial = run(s, &keys);
        let reference = run(r, &keys);
        assert_eq!(batched.len(), 8);
        for ((rb, rs), rr) in batched.iter().zip(&serial).zip(&reference) {
            assert_eq!(rb.id, rs.id);
            assert_eq!(
                rb.value.to_bits(),
                rr.value.to_bits(),
                "batched vs reference must be bitwise identical (id {})",
                rb.id
            );
            assert!(
                (rb.value - rs.value).abs() <= 1e-12 * (1.0 + rs.value.abs()),
                "batched vs serial beyond 1e-12: {} vs {}",
                rb.value,
                rs.value
            );
        }
    }

    #[test]
    fn responses_sorted_by_id_regardless_of_submission_order() {
        let mut e = engine("engine-order", ExecMode::Batched);
        let key = |t: u64| ClientKey::new(format!("t{t}"), "w");
        for t in 0..4 {
            e.provision(key(t), snapshot(0, (0.0, 50.0)));
        }
        for id in [3u64, 0, 2, 1] {
            e.submit(Request::new(id, key(id), history(id))).expect("admit");
        }
        let ids: Vec<u64> = e.tick().iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn unknown_tenant_degrades_to_wma_without_affecting_others() {
        let mut e = engine("engine-degrade", ExecMode::Batched);
        let known = ClientKey::new("known", "w");
        e.provision(known.clone(), snapshot(5, (0.0, 80.0)));
        e.submit(Request::new(0, known.clone(), history(0))).expect("admit");
        e.submit(Request::new(1, ClientKey::new("ghost", "w"), history(1)))
            .expect("admit");
        let rs = e.tick();
        assert_eq!(rs.len(), 2);
        assert!(!rs[0].degraded);
        assert_eq!(rs[0].source, ResponseSource::Batched);
        assert!(rs[1].degraded);
        assert_eq!(rs[1].source, ResponseSource::Fallback);
        assert!(rs[1].value.is_finite() && rs[1].value >= 0.0);

        // The known tenant's answer is identical to a solo run.
        let mut solo = engine("engine-degrade-solo", ExecMode::Batched);
        solo.provision(known.clone(), snapshot(5, (0.0, 80.0)));
        solo.submit(Request::new(0, known, history(0))).expect("admit");
        let solo_rs = solo.tick();
        assert_eq!(rs[0].value.to_bits(), solo_rs[0].value.to_bits());
    }

    #[test]
    fn identical_seed_ticks_have_equal_digests_and_span_trees() {
        let run = |store_name: &str| -> (u64, Vec<String>) {
            let mut e = ServeEngine::new(
                EngineConfig {
                    mode: ExecMode::Batched,
                    queue_capacity: 64,
                    registry: RegistryConfig {
                        shard_count: 4,
                        capacity_per_shard: 16,
                    },
                    lifecycle: LifecycleConfig::default(),
                },
                test_store(store_name),
                Tracer::enabled(),
            );
            let mut all = Vec::new();
            for t in 0..6u64 {
                let key = ClientKey::new(format!("t{t}"), "w");
                e.provision(key, snapshot(t % 3, (0.0, 60.0)));
            }
            for tick in 0..3u64 {
                for t in 0..6u64 {
                    e.submit(Request::new(
                        tick * 6 + t,
                        ClientKey::new(format!("t{t}"), "w"),
                        history(t + tick),
                    ))
                    .expect("admit");
                }
                all.extend(e.tick());
            }
            (response_digest(&all), e.tracer().snapshot().logical_paths())
        };
        let (d1, p1) = run("engine-det-a");
        let (d2, p2) = run("engine-det-b");
        assert_eq!(d1, d2, "identically-seeded runs must produce equal digests");
        assert_eq!(p1, p2, "identically-seeded runs must produce equal span trees");
        assert!(p1.iter().any(|p| p.contains("batch")));
        assert!(p1.iter().any(|p| p.contains("request")));
        assert!(p1.iter().any(|p| p.contains("shard")));
    }

    #[test]
    fn short_history_left_pads_like_the_framework() {
        let scaler = MinMaxScaler::fit(&[0.0, 10.0]);
        let w = scaled_window(&[4.0, 6.0], 4, scaler);
        assert_eq!(w.len(), 4);
        assert_eq!(w[0], scaler.transform(4.0));
        assert_eq!(w[1], scaler.transform(4.0));
        assert_eq!(w[3], scaler.transform(6.0));
    }

    #[test]
    fn slow_shard_defers_once_and_answers_after_the_delay() {
        let mut e = engine("engine-slow-shard", ExecMode::Batched);
        let key = ClientKey::new("slowpoke", "w");
        let shard = e.registry().shard_of(&key) as u64;
        e.provision(key.clone(), snapshot(2, (0.0, 90.0)));

        // Tick 0: the shard is slow; the request parks instead of serving.
        e.set_shard_delays(&[(shard, 2)]);
        e.submit(Request::new(0, key.clone(), history(0))).expect("admit");
        assert!(e.tick().is_empty());
        assert_eq!(e.pending_work(), 1);

        // The delay clears; the request is answered at its release tick
        // with bits identical to an undelayed engine's answer.
        e.set_shard_delays(&[]);
        assert!(e.tick().is_empty(), "release tick not yet reached");
        let rs = e.tick();
        assert_eq!(rs.len(), 1);
        assert!(!rs[0].degraded);
        assert_eq!(e.pending_work(), 0);
        assert_eq!(e.stats().lifecycle.deferrals, 1);

        let mut plain = engine("engine-slow-shard-plain", ExecMode::Batched);
        plain.provision(key.clone(), snapshot(2, (0.0, 90.0)));
        plain.submit(Request::new(0, key, history(0))).expect("admit");
        let plain_rs = plain.tick();
        assert_eq!(rs[0].value.to_bits(), plain_rs[0].value.to_bits());
    }

    #[test]
    fn deadline_miss_is_an_explicit_expired_answer() {
        let mut e = engine("engine-deadline", ExecMode::Batched);
        let key = ClientKey::new("hurried", "w");
        let shard = e.registry().shard_of(&key) as u64;
        e.provision(key.clone(), snapshot(3, (0.0, 70.0)));
        // Deadline 0 but the shard is 3 ticks slow: deferral would land
        // past the deadline, so the engine answers Expired immediately.
        e.set_shard_delays(&[(shard, 3)]);
        e.submit(Request::new(0, key, history(0)).with_deadline(0)).expect("admit");
        let rs = e.tick();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs[0].source, ResponseSource::Expired);
        assert!(rs[0].degraded);
        assert!(rs[0].value.is_finite() && rs[0].value >= 0.0);
        assert_eq!(e.stats().lifecycle.expired, 1);
        assert_eq!(e.pending_work(), 0);
    }

    #[test]
    fn tenant_breaker_trips_to_fallback_and_recovers_via_probe() {
        let mut e = ServeEngine::new(
            EngineConfig {
                mode: ExecMode::Batched,
                queue_capacity: 64,
                registry: RegistryConfig {
                    shard_count: 1,
                    capacity_per_shard: 16,
                },
                lifecycle: LifecycleConfig {
                    deadline_ticks: None,
                    retry: RetryPolicy {
                        base_ticks: 1,
                        max_retries: 0,
                        jitter_ticks: 0,
                    },
                    breaker: BreakerConfig {
                        failure_threshold: 2,
                        cooldown_ticks: 2,
                        close_streak: 1,
                    },
                    supervisor: SupervisorConfig::default(),
                },
            },
            test_store("engine-breaker"),
            Tracer::disabled(),
        );
        // A ghost tenant fails every model-path attempt (Missing snapshot).
        let ghost = ClientKey::new("ghost", "w");
        let mut id = 0u64;
        for tick in 0..2u64 {
            e.submit(Request::new(id, ghost.clone(), history(tick))).expect("admit");
            id += 1;
            let rs = e.tick();
            assert_eq!(rs[0].source, ResponseSource::Fallback);
        }
        assert_eq!(e.tenant_breaker_state(&ghost), BreakerState::Open);
        assert!(e.stats().lifecycle.breaker_trips >= 1);

        // While open: served from fallback without touching the registry.
        let misses_before = e.stats().cache.misses;
        e.submit(Request::new(id, ghost.clone(), history(9))).expect("admit");
        id += 1;
        let rs = e.tick();
        assert_eq!(rs[0].source, ResponseSource::Fallback);
        assert_eq!(e.stats().cache.misses, misses_before, "open breaker must fast-fail");
        assert!(e.stats().lifecycle.breaker_fallbacks >= 1);

        // Provision the tenant; after cooldown a probe succeeds and closes.
        e.provision(ghost.clone(), snapshot(8, (0.0, 60.0)));
        loop {
            e.submit(Request::new(id, ghost.clone(), history(3))).expect("admit");
            id += 1;
            let rs = e.tick();
            if rs[0].source == ResponseSource::Batched {
                break;
            }
            assert!(id < 20, "breaker never recovered");
        }
        assert_eq!(e.tenant_breaker_state(&ghost), BreakerState::Closed);
    }

    #[test]
    fn metrics_are_pure_observers_and_deterministic() {
        let run = |store_name: &str, metrics: Metrics| -> (u64, Metrics) {
            let mut e = engine(store_name, ExecMode::Batched).with_metrics(metrics);
            let mut all = Vec::new();
            for t in 0..6u64 {
                e.provision(ClientKey::new(format!("t{t}"), "w"), snapshot(t % 3, (0.0, 60.0)));
            }
            for tick in 0..4u64 {
                for t in 0..6u64 {
                    e.submit(Request::new(
                        tick * 6 + t,
                        ClientKey::new(format!("t{t}"), "w"),
                        history(t + tick),
                    ))
                    .expect("admit");
                }
                all.extend(e.tick());
            }
            (response_digest(&all), e.metrics().clone())
        };

        let (d_off, _) = run("engine-metrics-off", Metrics::disabled());
        let (d_on_a, m_a) = run("engine-metrics-a", Metrics::enabled());
        let (d_on_b, m_b) = run("engine-metrics-b", Metrics::enabled());

        // Pure observer: metrics on/off must not change a single response bit.
        assert_eq!(d_off, d_on_a, "metrics-on run diverged from metrics-off");
        // Determinism: identical runs produce byte-identical snapshot JSON.
        let json_a = ld_metrics::to_metrics_json(&m_a.snapshot().deterministic());
        let json_b = ld_metrics::to_metrics_json(&m_b.snapshot().deterministic());
        assert_eq!(d_on_a, d_on_b);
        assert_eq!(json_a, json_b, "metrics snapshots must be byte-identical");

        // The snapshot actually carries the serving story.
        let s = m_a.snapshot();
        assert_eq!(s.counter("serve.requests_submitted_total"), 24);
        assert_eq!(s.counter("serve.responses_total"), 24);
        let lat = s.histogram("serve.request_latency_ticks").expect("latency histogram");
        assert_eq!(lat.count, 24);
        assert!(s.histogram("serve.batch_size").is_some());
        assert!(s.gauge("serve.queue_depth").is_some());
        assert!(ld_metrics::validate_metrics_json(&ld_metrics::to_metrics_json(&s)).is_ok());
        assert!(ld_metrics::validate_exposition(&ld_metrics::to_prometheus(&s)).is_ok());
    }

    #[test]
    fn unhealthy_shard_is_drained_and_served_from_the_store() {
        let mut e = ServeEngine::new(
            EngineConfig {
                mode: ExecMode::Batched,
                queue_capacity: 64,
                registry: RegistryConfig {
                    shard_count: 1,
                    capacity_per_shard: 16,
                },
                lifecycle: LifecycleConfig {
                    deadline_ticks: None,
                    retry: RetryPolicy {
                        base_ticks: 1,
                        max_retries: 0,
                        jitter_ticks: 0,
                    },
                    // Breakers effectively off so errors keep flowing to
                    // the supervisor.
                    breaker: BreakerConfig {
                        failure_threshold: u32::MAX,
                        cooldown_ticks: 1,
                        close_streak: 1,
                    },
                    supervisor: SupervisorConfig {
                        degraded_ratio: 0.5,
                        unhealthy_ticks: 2,
                        recovery_ticks: 1,
                    },
                },
            },
            test_store("engine-drain"),
            Tracer::enabled(),
        );
        let good = ClientKey::new("good", "w");
        e.provision(good.clone(), snapshot(4, (0.0, 80.0)));
        let ghost = ClientKey::new("ghost", "w");

        // Three ticks of 100% ghost errors: Degraded, then Unhealthy+drain.
        for tick in 0..3u64 {
            e.submit(Request::new(tick, ghost.clone(), history(tick))).expect("admit");
            e.tick();
        }
        assert_eq!(e.stats().lifecycle.shard_drains, 1);
        assert_eq!(e.shard_health(0), ShardHealth::Recovering);
        // The drain spilled `good` out of memory...
        assert!(!e.registry().is_resident(&good));
        assert!(e.store().contains(&good));

        // ...but it still serves, rehydrated from the store, and the shard
        // heals after a clean tick.
        e.submit(Request::new(10, good.clone(), history(1))).expect("admit");
        let rs = e.tick();
        assert_eq!(rs.len(), 1);
        assert!(!rs[0].degraded);
        assert_eq!(e.shard_health(0), ShardHealth::Healthy);
        assert!(e.stats().lifecycle.worst_recovery_ticks >= 1);
        let paths = e.tracer().snapshot().logical_paths();
        assert!(
            paths.iter().any(|p| p.contains("shard_health")),
            "health transitions must appear in the span tree"
        );
    }
}
