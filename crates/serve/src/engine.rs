//! The tick-based serving engine: admission, snapshot resolution, batch
//! fusion, and per-tenant graceful degradation.
//!
//! Per tick the engine drains its bounded queue, resolves each request's
//! snapshot through the sharded registry (rehydrating from disk on a miss),
//! and groups the resolved lanes by `(model shape, weight fingerprint)`.
//! Each group becomes one fused batched LSTM forward
//! ([`ld_nn::LstmForecaster::predict_batch_fused`]): one blocked GEMM per
//! gate block instead of one mat-vec per tenant per step.
//!
//! # Determinism contract
//!
//! Batch composition is derived from seeds, never from arrival time: lanes
//! are ordered by request id (assigned by the load schedule), groups by
//! fingerprint, and every span index is logical (tick number, shard index,
//! group ordinal, request id). Two identically-seeded runs produce
//! bitwise-identical responses and identical span trees.
//!
//! # Degradation contract
//!
//! A tenant whose snapshot cannot be produced (corrupt spill file) or whose
//! scaled window is non-finite (upstream NaN, injected via the `batch_nan`
//! fault site) is answered by the WMA smoothing fallback and marked
//! `degraded` — and is *excluded from the fused batch*, so a poisoned
//! tenant can never contaminate the lanes it would have been co-batched
//! with.

use std::collections::BTreeMap;

use ld_api::Predictor as _;
use ld_nn::{BatchScratch, LstmForecaster};
use ld_telemetry::Tracer;

use crate::admission::{AdmissionQueue, AdmissionStats, Request};
use crate::registry::{ClientKey, RegistryConfig, RegistryStats, ShardedRegistry};
use crate::snapshot::{ModelSnapshot, SnapshotStore};

/// Which compute path answers the non-degraded lanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Fused per-gate GEMMs over each `(shape, fingerprint)` group.
    Batched,
    /// The per-tenant workspace path ([`LstmForecaster::predict`]),
    /// retained for equivalence checks and as the honest serial baseline.
    Serial,
    /// The per-tenant allocating reference path
    /// ([`LstmForecaster::predict_reference`]); the fused path is bitwise
    /// equal to this one by construction.
    Reference,
}

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Compute path for non-degraded lanes.
    pub mode: ExecMode,
    /// Admission queue bound.
    pub queue_capacity: usize,
    /// Registry geometry.
    pub registry: RegistryConfig,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            mode: ExecMode::Batched,
            queue_capacity: 4096,
            registry: RegistryConfig::default(),
        }
    }
}

/// How a response was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResponseSource {
    /// Fused batched forward.
    Batched,
    /// Per-tenant workspace forward.
    Serial,
    /// Per-tenant reference forward.
    Reference,
    /// WMA smoothing fallback (degraded lane).
    Fallback,
}

impl ResponseSource {
    fn tag(self) -> u8 {
        match self {
            ResponseSource::Batched => 0,
            ResponseSource::Serial => 1,
            ResponseSource::Reference => 2,
            ResponseSource::Fallback => 3,
        }
    }
}

/// One answered request.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The request's id.
    pub id: u64,
    /// The request's key.
    pub key: ClientKey,
    /// Forecast JAR for the next interval (non-negative).
    pub value: f64,
    /// Which path produced `value`.
    pub source: ResponseSource,
    /// True when the tenant was answered by the smoothing fallback.
    pub degraded: bool,
}

/// Engine-wide accounting (queue + cache + serving counters).
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeStats {
    /// Requests answered (any source).
    pub served: u64,
    /// Requests answered by the smoothing fallback.
    pub degraded: u64,
    /// Queue accounting.
    pub admission: AdmissionStats,
    /// Registry cache accounting.
    pub cache: RegistryStats,
}

/// One resolved, batchable lane.
struct Lane {
    id: u64,
    key: ClientKey,
    scaler: ld_api::MinMaxScaler,
    /// Scaled window, exactly `history_len` long.
    window: Vec<f64>,
}

/// Lanes sharing one set of weights, plus a clone of those weights to run
/// them with (cloned once per group per tick; the registry stays free to
/// evict mid-tick without invalidating the batch).
struct Group {
    model: LstmForecaster,
    lanes: Vec<Lane>,
}

/// The serving engine.
#[derive(Debug)]
pub struct ServeEngine {
    mode: ExecMode,
    registry: ShardedRegistry,
    store: SnapshotStore,
    queue: AdmissionQueue,
    tracer: Tracer,
    scratch: BatchScratch,
    tick: u64,
    served: u64,
    degraded: u64,
}

impl ServeEngine {
    /// Builds an engine spilling to `store`.
    pub fn new(cfg: EngineConfig, store: SnapshotStore, tracer: Tracer) -> Self {
        ServeEngine {
            mode: cfg.mode,
            registry: ShardedRegistry::new(cfg.registry),
            store,
            queue: AdmissionQueue::new(cfg.queue_capacity),
            tracer,
            scratch: BatchScratch::new(),
            tick: 0,
            served: 0,
            degraded: 0,
        }
    }

    /// Installs a snapshot for `key` (training-time provisioning).
    pub fn provision(&mut self, key: ClientKey, snapshot: ModelSnapshot) -> std::io::Result<()> {
        self.registry.insert(key, snapshot, &self.store)
    }

    /// Offers a request; `Err` returns it because it was shed.
    pub fn submit(&mut self, req: Request) -> Result<(), Request> {
        self.queue.offer(req)
    }

    /// Engine-wide accounting.
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            served: self.served,
            degraded: self.degraded,
            admission: self.queue.stats(),
            cache: self.registry.stats(),
        }
    }

    /// The registry's fixed shard count.
    pub fn shard_count(&self) -> usize {
        self.registry.shard_count()
    }

    /// Current queue depth (bounded by the configured capacity).
    pub fn queue_depth(&self) -> usize {
        self.queue.depth()
    }

    /// The tracer threaded through every tick.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The snapshot spill store.
    pub fn store(&self) -> &SnapshotStore {
        &self.store
    }

    /// Direct registry access (tests and capacity experiments).
    pub fn registry(&self) -> &ShardedRegistry {
        &self.registry
    }

    /// Drains the queue and answers every pending request. Responses come
    /// back sorted by request id regardless of batching layout.
    pub fn tick(&mut self) -> Vec<Response> {
        let tick_idx = self.tick;
        self.tick += 1;
        let tick_span = self.tracer.span_at("tick", tick_idx);
        let tr = tick_span.tracer();

        let mut pending = self.queue.drain();
        // Seed-derived composition: order by schedule-assigned id, not by
        // the order submissions happened to arrive in.
        pending.sort_by_key(|r| r.id);

        let mut responses: Vec<Response> = Vec::with_capacity(pending.len());
        let mut groups: BTreeMap<u64, Group> = BTreeMap::new();
        let mut per_shard = vec![0u64; self.registry.shard_count()];

        {
            let resolve_span = tr.span_at("resolve", tick_idx);
            let rtr = resolve_span.tracer();
            for req in pending {
                per_shard[self.registry.shard_of(&req.key)] += 1;
                match self.registry.get(&req.key, &self.store) {
                    Ok(snap) => {
                        let scaler = snap.scaler();
                        let n = snap.history_len();
                        let fingerprint = snap.fingerprint();
                        let mut window = scaled_window(&req.history, n, scaler);
                        if ld_faultinject::is_active()
                            && ld_faultinject::fault_hit(
                                ld_faultinject::FaultSite::BatchNan,
                                req.key.stable_hash() ^ tick_idx.rotate_left(23),
                            )
                        {
                            // Simulated upstream poison: the lane's scaled
                            // window arrives non-finite.
                            window[0] = f64::NAN;
                        }
                        if window.iter().all(|v| v.is_finite()) {
                            let group = groups.entry(fingerprint).or_insert_with(|| Group {
                                model: snap.model().clone(),
                                lanes: Vec::new(),
                            });
                            group.lanes.push(Lane {
                                id: req.id,
                                key: req.key,
                                scaler,
                                window,
                            });
                        } else {
                            responses.push(fallback_response(&req));
                        }
                    }
                    Err(_) => responses.push(fallback_response(&req)),
                }
            }
            for (shard, &n) in per_shard.iter().enumerate() {
                if n > 0 {
                    rtr.record_span("shard", shard as u64, n, 0);
                }
            }
        }

        for (ordinal, group) in groups.values_mut().enumerate() {
            let batch_span = tr.span_at("batch", ordinal as u64);
            let btr = batch_span.tracer();
            match self.mode {
                ExecMode::Batched => {
                    let n = group.model.config().history_len;
                    let batch = group.lanes.len();
                    let mut windows = Vec::with_capacity(batch * n);
                    for lane in &group.lanes {
                        windows.extend_from_slice(&lane.window);
                    }
                    let mut out = vec![0.0; batch];
                    group
                        .model
                        .predict_batch_fused(&windows, batch, &mut self.scratch, &mut out);
                    for (lane, &y) in group.lanes.iter().zip(&out) {
                        btr.record_span("request", lane.id, 1, 0);
                        responses.push(finish_lane(lane, y, ResponseSource::Batched));
                    }
                }
                ExecMode::Serial | ExecMode::Reference => {
                    let source = if self.mode == ExecMode::Serial {
                        ResponseSource::Serial
                    } else {
                        ResponseSource::Reference
                    };
                    for lane in &group.lanes {
                        btr.record_span("request", lane.id, 1, 0);
                        let y = match source {
                            ResponseSource::Serial => group.model.predict(&lane.window),
                            _ => group.model.predict_reference(&lane.window),
                        };
                        responses.push(finish_lane(lane, y, source));
                    }
                }
            }
        }

        responses.sort_by_key(|r| r.id);
        self.served += responses.len() as u64;
        self.degraded += responses.iter().filter(|r| r.degraded).count() as u64;
        responses
    }
}

/// Mirrors `OptimizedPredictor::predict`'s window preparation exactly:
/// take the last `n` observations (left-padding with the earliest value
/// when the history is shorter) and scale each one.
fn scaled_window(history: &[f64], n: usize, scaler: ld_api::MinMaxScaler) -> Vec<f64> {
    assert!(!history.is_empty(), "request history must be non-empty");
    if history.len() >= n {
        history[history.len() - n..]
            .iter()
            .map(|&v| scaler.transform(v))
            .collect()
    } else {
        let pad = n - history.len();
        std::iter::repeat_n(history[0], pad)
            .chain(history.iter().cloned())
            .map(|v| scaler.transform(v))
            .collect()
    }
}

/// Inverse-scales a model output and clamps to the non-negative JAR domain
/// (same post-processing as `OptimizedPredictor::predict`). A non-finite
/// model output degrades the lane instead of poisoning the response.
fn finish_lane(lane: &Lane, y: f64, source: ResponseSource) -> Response {
    let value = lane.scaler.inverse(y).max(0.0);
    if value.is_finite() {
        Response {
            id: lane.id,
            key: lane.key.clone(),
            value,
            source,
            degraded: false,
        }
    } else {
        Response {
            id: lane.id,
            key: lane.key.clone(),
            value: wma_forecast_scaled(lane),
            source: ResponseSource::Fallback,
            degraded: true,
        }
    }
}

/// The smoothing fallback over a lane's scaled window, inverse-scaled.
fn wma_forecast_scaled(lane: &Lane) -> f64 {
    let raw: Vec<f64> = lane.window.iter().map(|&u| lane.scaler.inverse(u)).collect();
    ld_baselines::smoothing::Wma::default().predict(&raw).max(0.0)
}

/// The smoothing fallback for a request that never produced a lane
/// (corrupt snapshot / poisoned window): WMA straight over the raw history.
fn fallback_response(req: &Request) -> Response {
    let finite: Vec<f64> = req.history.iter().copied().filter(|v| v.is_finite()).collect();
    let value = if finite.is_empty() {
        0.0
    } else {
        ld_baselines::smoothing::Wma::default().predict(&finite).max(0.0)
    };
    Response {
        id: req.id,
        key: req.key.clone(),
        value,
        source: ResponseSource::Fallback,
        degraded: true,
    }
}

/// FNV-1a digest over a response stream: id, value bits, source, degraded
/// flag of every response in order. Two identically-seeded runs must
/// produce equal digests — the loadgen's bitwise-determinism gate.
pub fn response_digest(responses: &[Response]) -> u64 {
    let mut h = crate::hash::FNV_OFFSET;
    for r in responses {
        h = crate::hash::fnv1a_u64(h, r.id);
        h = crate::hash::fnv1a_u64(h, r.value.to_bits());
        h = crate::hash::fnv1a_byte(h, r.source.tag());
        h = crate::hash::fnv1a_byte(h, u8::from(r.degraded));
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use ld_api::MinMaxScaler;
    use ld_nn::ForecasterConfig;

    fn test_store(name: &str) -> SnapshotStore {
        let mut p = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        p.push("../../target/ld-serve-unit");
        p.push(name);
        let s = SnapshotStore::open(p).expect("open store");
        s.clear().expect("clear store");
        s
    }

    fn engine(name: &str, mode: ExecMode) -> ServeEngine {
        ServeEngine::new(
            EngineConfig {
                mode,
                queue_capacity: 64,
                registry: RegistryConfig {
                    shard_count: 4,
                    capacity_per_shard: 16,
                },
            },
            test_store(name),
            Tracer::disabled(),
        )
    }

    fn snapshot(seed: u64, lo_hi: (f64, f64)) -> ModelSnapshot {
        let model = LstmForecaster::new(ForecasterConfig {
            history_len: 6,
            hidden_size: 4,
            num_layers: 1,
            seed,
        });
        ModelSnapshot::new(model, MinMaxScaler::fit(&[lo_hi.0, lo_hi.1]), 6)
    }

    fn history(id: u64) -> Vec<f64> {
        (0..9).map(|i| 40.0 + f64::from(i) * 3.0 + (id as f64)).collect()
    }

    #[test]
    fn batched_equals_reference_bitwise_and_serial_to_1e12() {
        let mut keys = Vec::new();
        let mut engines = [
            engine("engine-eq-batched", ExecMode::Batched),
            engine("engine-eq-serial", ExecMode::Serial),
            engine("engine-eq-reference", ExecMode::Reference),
        ];
        for e in &mut engines {
            for t in 0..8u64 {
                let key = ClientKey::new(format!("t{t}"), "wiki");
                // Two distinct models (two groups), per-tenant scalers.
                e.provision(key.clone(), snapshot(t % 2, (0.0, 100.0 + f64::from(u32::try_from(t).unwrap()))))
                    .expect("provision");
                if keys.len() < 8 {
                    keys.push(key);
                }
            }
        }
        let run = |e: &mut ServeEngine, keys: &[ClientKey]| -> Vec<Response> {
            for (i, key) in keys.iter().enumerate() {
                e.submit(Request {
                    id: i as u64,
                    key: key.clone(),
                    history: history(i as u64),
                })
                .expect("admit");
            }
            e.tick()
        };
        let [ref mut b, ref mut s, ref mut r] = engines;
        let batched = run(b, &keys);
        let serial = run(s, &keys);
        let reference = run(r, &keys);
        assert_eq!(batched.len(), 8);
        for ((rb, rs), rr) in batched.iter().zip(&serial).zip(&reference) {
            assert_eq!(rb.id, rs.id);
            assert_eq!(
                rb.value.to_bits(),
                rr.value.to_bits(),
                "batched vs reference must be bitwise identical (id {})",
                rb.id
            );
            assert!(
                (rb.value - rs.value).abs() <= 1e-12 * (1.0 + rs.value.abs()),
                "batched vs serial beyond 1e-12: {} vs {}",
                rb.value,
                rs.value
            );
        }
    }

    #[test]
    fn responses_sorted_by_id_regardless_of_submission_order() {
        let mut e = engine("engine-order", ExecMode::Batched);
        let key = |t: u64| ClientKey::new(format!("t{t}"), "w");
        for t in 0..4 {
            e.provision(key(t), snapshot(0, (0.0, 50.0))).expect("provision");
        }
        for id in [3u64, 0, 2, 1] {
            e.submit(Request {
                id,
                key: key(id),
                history: history(id),
            })
            .expect("admit");
        }
        let ids: Vec<u64> = e.tick().iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn unknown_tenant_degrades_to_wma_without_affecting_others() {
        let mut e = engine("engine-degrade", ExecMode::Batched);
        let known = ClientKey::new("known", "w");
        e.provision(known.clone(), snapshot(5, (0.0, 80.0))).expect("provision");
        e.submit(Request {
            id: 0,
            key: known.clone(),
            history: history(0),
        })
        .expect("admit");
        e.submit(Request {
            id: 1,
            key: ClientKey::new("ghost", "w"),
            history: history(1),
        })
        .expect("admit");
        let rs = e.tick();
        assert_eq!(rs.len(), 2);
        assert!(!rs[0].degraded);
        assert_eq!(rs[0].source, ResponseSource::Batched);
        assert!(rs[1].degraded);
        assert_eq!(rs[1].source, ResponseSource::Fallback);
        assert!(rs[1].value.is_finite() && rs[1].value >= 0.0);

        // The known tenant's answer is identical to a solo run.
        let mut solo = engine("engine-degrade-solo", ExecMode::Batched);
        solo.provision(known.clone(), snapshot(5, (0.0, 80.0))).expect("provision");
        solo.submit(Request {
            id: 0,
            key: known,
            history: history(0),
        })
        .expect("admit");
        let solo_rs = solo.tick();
        assert_eq!(rs[0].value.to_bits(), solo_rs[0].value.to_bits());
    }

    #[test]
    fn identical_seed_ticks_have_equal_digests_and_span_trees() {
        let run = |store_name: &str| -> (u64, Vec<String>) {
            let mut e = ServeEngine::new(
                EngineConfig {
                    mode: ExecMode::Batched,
                    queue_capacity: 64,
                    registry: RegistryConfig {
                        shard_count: 4,
                        capacity_per_shard: 16,
                    },
                },
                test_store(store_name),
                Tracer::enabled(),
            );
            let mut all = Vec::new();
            for t in 0..6u64 {
                let key = ClientKey::new(format!("t{t}"), "w");
                e.provision(key, snapshot(t % 3, (0.0, 60.0))).expect("provision");
            }
            for tick in 0..3u64 {
                for t in 0..6u64 {
                    e.submit(Request {
                        id: tick * 6 + t,
                        key: ClientKey::new(format!("t{t}"), "w"),
                        history: history(t + tick),
                    })
                    .expect("admit");
                }
                all.extend(e.tick());
            }
            (response_digest(&all), e.tracer().snapshot().logical_paths())
        };
        let (d1, p1) = run("engine-det-a");
        let (d2, p2) = run("engine-det-b");
        assert_eq!(d1, d2, "identically-seeded runs must produce equal digests");
        assert_eq!(p1, p2, "identically-seeded runs must produce equal span trees");
        assert!(p1.iter().any(|p| p.contains("batch")));
        assert!(p1.iter().any(|p| p.contains("request")));
        assert!(p1.iter().any(|p| p.contains("shard")));
    }

    #[test]
    fn short_history_left_pads_like_the_framework() {
        let scaler = MinMaxScaler::fit(&[0.0, 10.0]);
        let w = scaled_window(&[4.0, 6.0], 4, scaler);
        assert_eq!(w.len(), 4);
        assert_eq!(w[0], scaler.transform(4.0));
        assert_eq!(w[1], scaler.transform(4.0));
        assert_eq!(w[3], scaler.transform(6.0));
    }
}
