//! Request lifecycle control: deadlines, deterministic retry backoff, and
//! per-tenant/per-shard circuit breakers.
//!
//! Everything in this module measures time in **logical ticks** — the same
//! clock the engine batches on — and draws jitter from seeds carried by the
//! request, never from the wall clock. Two identically-seeded runs make
//! identical routing, retry, and breaker decisions.
//!
//! # Circuit breaker
//!
//! Classic three-state machine, advanced only by [`Breaker::record`] calls
//! the engine makes in deterministic (request-id) order:
//!
//! ```text
//!            failure_threshold consecutive failures
//!   Closed ────────────────────────────────────────▶ Open
//!     ▲                                               │ cooldown_ticks elapse
//!     │ close_streak consecutive probe successes      ▼
//!     └──────────────────────────────────────────  HalfOpen
//!                 (any probe failure re-opens)
//! ```
//!
//! While `Open`, [`Breaker::route`] sends the tenant to the smoothing
//! fallback — an answer computed from the tenant's own history, so a
//! tripped tenant never touches the batch its neighbors share. While
//! `HalfOpen`, at most one request per tick is admitted as a recovery
//! probe; the rest stay on the fallback until the success streak closes
//! the breaker.

use std::collections::BTreeMap;

/// Breaker tuning knobs (all in consecutive events / logical ticks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures that trip `Closed -> Open`.
    pub failure_threshold: u32,
    /// Ticks a breaker stays `Open` before admitting probes.
    pub cooldown_ticks: u64,
    /// Consecutive probe successes that close a `HalfOpen` breaker.
    pub close_streak: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            cooldown_ticks: 4,
            close_streak: 2,
        }
    }
}

/// Breaker state (`code` gives the stable numeric encoding used in spans).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal service; failures are counted.
    Closed,
    /// Tripped: all traffic routes to the fallback until cooldown passes.
    Open,
    /// Cooling down: one probe per tick, the rest on fallback.
    HalfOpen,
}

impl BreakerState {
    /// Stable numeric code (span payloads, bench documents).
    pub fn code(self) -> u64 {
        match self {
            BreakerState::Closed => 0,
            BreakerState::Open => 1,
            BreakerState::HalfOpen => 2,
        }
    }
}

/// Where [`Breaker::route`] sends a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// Serve through the model path.
    Model,
    /// Serve through the model path *as the recovery probe* — its outcome
    /// decides whether the breaker closes or re-opens.
    Probe,
    /// Serve from the smoothing fallback without touching the model path.
    Fallback,
}

/// One circuit breaker (the engine keeps one per tenant and one per shard).
#[derive(Debug, Clone)]
pub struct Breaker {
    config: BreakerConfig,
    state: BreakerState,
    /// Consecutive failures while `Closed`.
    failures: u32,
    /// Consecutive probe successes while `HalfOpen`.
    successes: u32,
    /// Tick the breaker last entered `Open`.
    opened_at: u64,
    /// Tick a `HalfOpen` probe was last admitted (one probe per tick).
    probed_at: Option<u64>,
    /// Times the breaker has tripped `Closed/HalfOpen -> Open`.
    trips: u64,
}

impl Breaker {
    /// A closed breaker.
    pub fn new(config: BreakerConfig) -> Self {
        Breaker {
            config,
            state: BreakerState::Closed,
            failures: 0,
            successes: 0,
            opened_at: 0,
            probed_at: None,
            trips: 0,
        }
    }

    /// Current state as of the last transition (does not itself advance
    /// `Open -> HalfOpen`; that happens on the next [`route`](Self::route)).
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Times the breaker has tripped open.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Routes a request arriving at `now`. Advances `Open -> HalfOpen`
    /// once the cooldown has elapsed; admits at most one `Probe` per tick
    /// while `HalfOpen`.
    pub fn route(&mut self, now: u64) -> Route {
        if self.state == BreakerState::Open
            && now >= self.opened_at.saturating_add(self.config.cooldown_ticks)
        {
            self.state = BreakerState::HalfOpen;
            self.successes = 0;
            self.probed_at = None;
        }
        match self.state {
            BreakerState::Closed => Route::Model,
            BreakerState::Open => Route::Fallback,
            BreakerState::HalfOpen => {
                if self.probed_at == Some(now) {
                    Route::Fallback
                } else {
                    self.probed_at = Some(now);
                    Route::Probe
                }
            }
        }
    }

    /// Records the outcome of a model-path service at `now`. Probe
    /// failures re-open immediately; `close_streak` probe successes close.
    pub fn record(&mut self, now: u64, ok: bool) {
        match self.state {
            BreakerState::Closed => {
                if ok {
                    self.failures = 0;
                } else {
                    self.failures += 1;
                    if self.failures >= self.config.failure_threshold {
                        self.trip(now);
                    }
                }
            }
            BreakerState::HalfOpen => {
                if ok {
                    self.successes += 1;
                    if self.successes >= self.config.close_streak {
                        self.state = BreakerState::Closed;
                        self.failures = 0;
                        self.successes = 0;
                    }
                } else {
                    self.trip(now);
                }
            }
            // Outcomes can arrive for requests routed before the trip;
            // they must not extend or shorten the cooldown.
            BreakerState::Open => {}
        }
    }

    fn trip(&mut self, now: u64) {
        self.state = BreakerState::Open;
        self.opened_at = now;
        self.failures = 0;
        self.successes = 0;
        self.trips += 1;
    }
}

/// Deterministic exponential backoff with seeded jitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Backoff before attempt 1 is `base_ticks`; it doubles per attempt.
    pub base_ticks: u64,
    /// Attempts after the first service (0 disables retry).
    pub max_retries: u32,
    /// Jitter added to each backoff, drawn uniformly from
    /// `[0, jitter_ticks]` by a splitmix64 hash of `(seed, attempt)`.
    pub jitter_ticks: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base_ticks: 1,
            max_retries: 2,
            jitter_ticks: 1,
        }
    }
}

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl RetryPolicy {
    /// Ticks to wait before retry number `attempt` (1-based): exponential
    /// base plus jitter keyed on `(seed, attempt)` — a pure function, so
    /// the same request retries on the same ticks in every run.
    pub fn backoff(&self, attempt: u32, seed: u64) -> u64 {
        let exp = self
            .base_ticks
            .checked_shl(attempt.saturating_sub(1))
            .unwrap_or(u64::MAX);
        let jitter = if self.jitter_ticks == 0 {
            0
        } else {
            splitmix64(seed ^ u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                % (self.jitter_ticks + 1)
        };
        exp.saturating_add(jitter)
    }

    /// Whether retry number `attempt` (1-based) is within budget.
    pub fn allows(&self, attempt: u32) -> bool {
        attempt <= self.max_retries
    }
}

/// Tick-indexed retry queue: requests parked until their backoff elapses.
///
/// Iteration order is `(release_tick, insertion order)` — both derived
/// from deterministic inputs — so re-admission order is reproducible.
#[derive(Debug, Default)]
pub struct RetrySchedule<T> {
    parked: BTreeMap<u64, Vec<T>>,
    len: usize,
}

impl<T> RetrySchedule<T> {
    /// An empty schedule.
    pub fn new() -> Self {
        RetrySchedule {
            parked: BTreeMap::new(),
            len: 0,
        }
    }

    /// Parks `item` until `release_tick`.
    pub fn park(&mut self, release_tick: u64, item: T) {
        self.parked.entry(release_tick).or_default().push(item);
        self.len += 1;
    }

    /// Removes and returns every item whose release tick is `<= now`.
    pub fn release(&mut self, now: u64) -> Vec<T> {
        let mut due = Vec::new();
        let keys: Vec<u64> = self.parked.range(..=now).map(|(k, _)| *k).collect();
        for k in keys {
            if let Some(mut items) = self.parked.remove(&k) {
                due.append(&mut items);
            }
        }
        self.len -= due.len();
        due
    }

    /// Items currently parked.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing is parked.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The earliest release tick, if anything is parked.
    pub fn next_release(&self) -> Option<u64> {
        self.parked.keys().next().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breaker_trips_after_threshold_and_cools_down() {
        let mut b = Breaker::new(BreakerConfig {
            failure_threshold: 3,
            cooldown_ticks: 4,
            close_streak: 2,
        });
        assert_eq!(b.route(0), Route::Model);
        b.record(0, false);
        b.record(0, false);
        assert_eq!(b.state(), BreakerState::Closed);
        b.record(0, false);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 1);
        // During cooldown: fallback only.
        assert_eq!(b.route(1), Route::Fallback);
        assert_eq!(b.route(3), Route::Fallback);
        // Cooldown over: exactly one probe per tick.
        assert_eq!(b.route(4), Route::Probe);
        assert_eq!(b.route(4), Route::Fallback);
        assert_eq!(b.route(5), Route::Probe);
        // Two successes close it.
        b.record(4, true);
        b.record(5, true);
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.route(6), Route::Model);
    }

    #[test]
    fn probe_failure_reopens() {
        let mut b = Breaker::new(BreakerConfig {
            failure_threshold: 1,
            cooldown_ticks: 2,
            close_streak: 1,
        });
        b.record(0, false);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.route(2), Route::Probe);
        b.record(2, false);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 2);
        // Fresh cooldown from the re-open tick.
        assert_eq!(b.route(3), Route::Fallback);
        assert_eq!(b.route(4), Route::Probe);
        b.record(4, true);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn success_resets_failure_streak() {
        let mut b = Breaker::new(BreakerConfig::default());
        b.record(0, false);
        b.record(0, false);
        b.record(0, true);
        b.record(1, false);
        b.record(1, false);
        assert_eq!(b.state(), BreakerState::Closed);
        b.record(1, false);
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn backoff_is_deterministic_exponential_with_bounded_jitter() {
        let p = RetryPolicy {
            base_ticks: 2,
            max_retries: 3,
            jitter_ticks: 3,
        };
        for attempt in 1..=3u32 {
            let a = p.backoff(attempt, 77);
            let b = p.backoff(attempt, 77);
            assert_eq!(a, b, "backoff must be a pure function");
            let exp = 2u64 << (attempt - 1); // base 2, doubling per attempt
            assert!(a >= exp && a <= exp + 3, "attempt {attempt}: {a} vs exp {exp}");
        }
        // Different seeds move the jitter for at least some attempt.
        let seeds_differ = (1..=3u32).any(|a| p.backoff(a, 1) != p.backoff(a, 2));
        assert!(seeds_differ);
        assert!(p.allows(3) && !p.allows(4));
    }

    #[test]
    fn retry_schedule_releases_in_tick_order() {
        let mut s = RetrySchedule::new();
        s.park(5, "b");
        s.park(3, "a");
        s.park(5, "c");
        s.park(9, "d");
        assert_eq!(s.len(), 4);
        assert_eq!(s.next_release(), Some(3));
        assert_eq!(s.release(4), vec!["a"]);
        assert_eq!(s.release(5), vec!["b", "c"]);
        assert_eq!(s.len(), 1);
        assert!(s.release(8).is_empty());
        assert_eq!(s.release(100), vec!["d"]);
        assert!(s.is_empty());
    }
}
