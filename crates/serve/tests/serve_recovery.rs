//! Crash-consistency of the snapshot store, end to end:
//!
//! - a spill that "crashes" mid-write (the `crash` fault site) leaves a
//!   torn temp file and an unmatched journal intent; recovery quarantines
//!   the temp, counts the intent, and keeps every published snapshot;
//! - a crash at *any* byte boundary of an in-flight write loses at most
//!   that snapshot: whatever the cut, restart + recovery quarantines the
//!   torn file, rebuilds the index, and every other tenant still loads
//!   bit-for-bit;
//! - a torn *published* file (simulating a torn sector under the atomic
//!   rename) fails its checksum, is quarantined, and never takes a
//!   neighbor with it;
//! - after recovery the serving engine answers every surviving tenant
//!   exactly as before the crash, and only the victim degrades.
//!
//! Every test takes the process-global fault lock: fault plans installed
//! here must never leak into concurrently running tests.

use ld_api::MinMaxScaler;
use ld_faultinject::{install, reset, test_lock, FaultConfig, FaultSite};
use ld_nn::{ForecasterConfig, LstmForecaster};
use ld_serve::{
    ClientKey, EngineConfig, ExecMode, LifecycleConfig, ModelSnapshot, RegistryConfig, Request,
    ResponseSource, ServeEngine, SnapshotError, SnapshotStore,
};
use ld_telemetry::Tracer;

const HIST: usize = 4;

fn store_dir(label: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/ld-serve-recovery")
        .join(label)
}

fn fresh_store(label: &str) -> SnapshotStore {
    let s = SnapshotStore::open(store_dir(label)).expect("open store");
    s.clear().expect("clear store");
    s
}

fn snapshot(seed: u64, hi: f64) -> ModelSnapshot {
    let model = LstmForecaster::new(ForecasterConfig {
        history_len: HIST,
        hidden_size: 2,
        num_layers: 1,
        seed,
    });
    ModelSnapshot::new(model, MinMaxScaler::fit(&[0.0, hi]), HIST)
}

fn key(t: usize) -> ClientKey {
    ClientKey::new(format!("crash-{t:02}"), "recovery")
}

/// FNV-1a over bytes — mirrors the store's checksum so the tests can
/// frame payloads exactly as `save` does.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The exact on-disk framing `save` publishes: magic, checksum, payload.
fn framed(snap: &ModelSnapshot) -> String {
    let json = snap.to_json();
    format!("ldsnap1 {:016x}\n{json}", fnv1a(json.as_bytes()))
}

fn assert_loads_bitwise(store: &SnapshotStore, k: &ClientKey, want: &ModelSnapshot) {
    let got = store.load(k).expect("survivor must load");
    assert_eq!(got.fingerprint(), want.fingerprint(), "weights changed for {k:?}");
    let w: Vec<f64> = (0..HIST).map(|i| 0.2 + 0.1 * i as f64).collect();
    assert_eq!(
        got.model().predict_reference(&w).to_bits(),
        want.model().predict_reference(&w).to_bits(),
        "prediction bits changed for {k:?}"
    );
}

#[test]
fn simulated_crash_tears_tmp_and_recovery_quarantines_it() {
    let _guard = test_lock();
    reset();

    let store = fresh_store("fault-site");
    let survivor = key(0);
    let survivor_snap = snapshot(11, 50.0);
    store.save(&survivor, &survivor_snap).expect("clean spill");

    // Every spill under this plan crashes mid-write.
    install(FaultConfig::new(0xc4a5).with_site(FaultSite::CrashWrite, 1.0, None));
    let victim = key(1);
    let err = store.save(&victim, &snapshot(13, 60.0)).unwrap_err();
    assert!(err.to_string().contains("crash"), "unexpected error: {err}");
    reset();

    // Nothing was published for the victim...
    assert!(!store.contains(&victim));
    assert!(matches!(store.load(&victim), Err(SnapshotError::Missing)));
    // ...but a torn temp file litters the directory.
    let torn: Vec<_> = std::fs::read_dir(store.dir())
        .expect("read store dir")
        .filter_map(Result::ok)
        .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
        .collect();
    assert_eq!(torn.len(), 1, "the crashed spill must leave its torn temp");

    let report = store.recover().expect("recovery");
    assert_eq!(report.quarantined_torn, 1);
    assert_eq!(report.quarantined_corrupt, 0);
    assert_eq!(report.incomplete_journal, 1, "the intent never committed");
    assert_eq!(report.indexed, 1, "the survivor stays indexed");
    assert!(store.dir().join("quarantine").read_dir().expect("quarantine dir").count() >= 1);

    assert_loads_bitwise(&store, &survivor, &survivor_snap);
}

#[test]
fn crash_at_every_byte_boundary_loses_at_most_the_inflight_snapshot() {
    let _guard = test_lock();
    reset();

    let label = "every-byte-tmp";
    let store = fresh_store(label);
    let survivors: Vec<(ClientKey, ModelSnapshot)> = (0..6)
        .map(|t| (key(t), snapshot(100 + t as u64, 40.0 + t as f64)))
        .collect();
    for (k, s) in &survivors {
        store.save(k, s).expect("publish survivor");
    }

    // Tenant 7 is the in-flight spill: its write crashes at offset `cut`.
    let victim = key(7);
    let victim_hash = victim.stable_hash();
    let payload = framed(&snapshot(999, 70.0));
    let tmp_path = store.dir().join(format!("{victim_hash:016x}.snapshot.tmp"));
    let journal_path = store.dir().join("journal.log");
    drop(store);

    for cut in 1..payload.len() {
        std::fs::write(&tmp_path, &payload.as_bytes()[..cut]).expect("write torn tmp");
        {
            use std::io::Write as _;
            let mut j = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&journal_path)
                .expect("open journal");
            writeln!(j, "I {victim_hash:016x}").expect("append intent");
        }

        // "Restart": a fresh process would open the store anew and recover.
        let reopened = SnapshotStore::open(store_dir(label)).expect("reopen after crash");
        let report = reopened.recover().expect("recovery");
        assert_eq!(report.quarantined_torn, 1, "cut {cut}: torn tmp quarantined");
        assert_eq!(report.indexed, survivors.len(), "cut {cut}: index lost a survivor");
        assert_eq!(report.incomplete_journal, 1, "cut {cut}");
        assert!(
            matches!(reopened.load(&victim), Err(SnapshotError::Missing)),
            "cut {cut}: the in-flight snapshot is the one thing lost"
        );
        for (k, _) in &survivors {
            assert!(reopened.contains(k), "cut {cut}: {k:?} fell out of the index");
        }
    }

    // Full bitwise check once at the end (per-cut would be all I/O).
    let reopened = SnapshotStore::open(store_dir(label)).expect("reopen");
    for (k, s) in &survivors {
        assert_loads_bitwise(&reopened, k, s);
    }
}

#[test]
fn torn_published_file_is_quarantined_without_taking_neighbors() {
    let _guard = test_lock();
    reset();

    let label = "every-byte-published";
    let store = fresh_store(label);
    let tenants: Vec<(ClientKey, ModelSnapshot)> = (0..5)
        .map(|t| (key(t), snapshot(200 + t as u64, 30.0 + t as f64)))
        .collect();
    for (k, s) in &tenants {
        store.save(k, s).expect("publish");
    }
    let (victim, victim_snap) = &tenants[2];
    let victim_path = store.path_for(victim);
    let original = std::fs::read(&victim_path).expect("read published victim");
    drop(store);

    // Sample every byte boundary of the published file (0 = empty file).
    for cut in 0..original.len() {
        std::fs::write(&victim_path, &original[..cut]).expect("tear published file");

        let reopened = SnapshotStore::open(store_dir(label)).expect("reopen");
        let report = reopened.recover().expect("recovery");
        assert_eq!(
            report.quarantined_corrupt, 1,
            "cut {cut}: a torn published file must fail its checksum"
        );
        assert_eq!(report.indexed, tenants.len() - 1, "cut {cut}");
        assert!(!reopened.contains(victim), "cut {cut}: victim must leave the index");
        for (k, _) in &tenants {
            if k != victim {
                assert!(reopened.contains(k), "cut {cut}: neighbor {k:?} lost");
            }
        }

        // Heal the victim for the next cut, as a re-spill would.
        std::fs::write(&victim_path, &original).expect("restore victim");
    }

    let reopened = SnapshotStore::open(store_dir(label)).expect("reopen");
    reopened.recover().expect("final recovery");
    for (k, s) in &tenants {
        assert_loads_bitwise(&reopened, k, s);
    }
    assert_loads_bitwise(&reopened, victim, victim_snap);
}

#[test]
fn engine_serves_survivors_identically_after_crash_recovery() {
    let _guard = test_lock();
    reset();

    let engine_with = |label: &str| -> ServeEngine {
        ServeEngine::new(
            EngineConfig {
                mode: ExecMode::Batched,
                queue_capacity: 16,
                registry: RegistryConfig {
                    shard_count: 2,
                    capacity_per_shard: 8,
                },
                lifecycle: LifecycleConfig::default(),
            },
            SnapshotStore::open(store_dir(label)).expect("open store"),
            Tracer::disabled(),
        )
    };
    let histories: Vec<Vec<f64>> = (0..4)
        .map(|t| (0..HIST + 2).map(|i| 8.0 + (t * 3 + i) as f64).collect())
        .collect();
    let run = |eng: &mut ServeEngine| {
        for (t, h) in histories.iter().enumerate() {
            eng.submit(Request::new(t as u64, key(t), h.clone())).expect("admit");
        }
        eng.tick()
    };

    // Baseline: everything spilled cleanly, engine rehydrates and serves.
    let label = "engine-recovery";
    let store = fresh_store(label);
    for t in 0..4 {
        store.save(&key(t), &snapshot(300 + t as u64, 25.0 + t as f64)).expect("publish");
    }
    drop(store);
    let mut before = engine_with(label);
    let want = run(&mut before);
    assert!(want.iter().all(|r| !r.degraded));
    drop(before);

    // Crash: tenant 2's file is torn mid-publish. Restart, recover, serve.
    let victim_path = std::path::Path::new(&store_dir(label))
        .join(format!("{:016x}.snapshot.json", key(2).stable_hash()));
    let bytes = std::fs::read(&victim_path).expect("read victim");
    std::fs::write(&victim_path, &bytes[..bytes.len() / 3]).expect("tear victim");

    let mut after = engine_with(label);
    let report = after.recover_store().expect("recovery");
    assert_eq!(report.quarantined_corrupt, 1);
    let got = run(&mut after);

    assert_eq!(want.len(), got.len());
    for (w, g) in want.iter().zip(&got) {
        assert_eq!(w.id, g.id);
        if g.id == 2 {
            // Only the victim degrades — to an explicit fallback answer.
            assert!(g.degraded);
            assert_eq!(g.source, ResponseSource::Fallback);
            assert!(g.value.is_finite() && g.value >= 0.0);
        } else {
            assert!(!g.degraded, "survivor {} degraded after recovery", g.id);
            assert_eq!(
                w.value.to_bits(),
                g.value.to_bits(),
                "survivor {} bits changed after crash recovery",
                g.id
            );
        }
    }
}
