//! End-to-end serving pipeline equivalence and determinism.
//!
//! The contracts under test (see DESIGN.md "Serving determinism"):
//! - the fused batched path answers exactly what the per-tenant paths
//!   answer: bitwise vs the reference path, ≤ 1e-12 relative vs the
//!   workspace (`forward_into`) path;
//! - identically-seeded runs produce bitwise-identical response streams;
//! - LRU spills and lazy rehydrations are lossless: a capacity-starved
//!   registry answers bit-for-bit what an uncapped one answers.

use ld_api::MinMaxScaler;
use ld_nn::{ForecasterConfig, LstmForecaster};
use ld_serve::{
    response_digest, ClientKey, EngineConfig, ExecMode, LifecycleConfig, ModelSnapshot,
    RegistryConfig, Request, Response, ServeEngine, SnapshotStore,
};
use ld_telemetry::Tracer;

const HIST: usize = 12;
const FAMILIES: usize = 3;

fn store(label: &str) -> SnapshotStore {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/ld-serve-pipeline")
        .join(label);
    let s = SnapshotStore::open(dir).expect("open store");
    s.clear().expect("clear store");
    s
}

/// A deterministic little fleet: `n` tenants cycling over `FAMILIES`
/// distinct models, each with its own scaler and drifting history.
struct Fleet {
    keys: Vec<ClientKey>,
    histories: Vec<Vec<f64>>,
    snapshots: Vec<ModelSnapshot>,
}

fn fleet(n: usize) -> Fleet {
    let models: Vec<LstmForecaster> = (0..FAMILIES)
        .map(|f| {
            LstmForecaster::new(ForecasterConfig {
                history_len: HIST,
                hidden_size: 6,
                num_layers: 2,
                seed: 900 + f as u64,
            })
        })
        .collect();
    let mut keys = Vec::new();
    let mut histories = Vec::new();
    let mut snapshots = Vec::new();
    for t in 0..n {
        let base = 10.0 + (t % 7) as f64;
        let hist: Vec<f64> = (0..HIST + 4)
            .map(|i| base + ((t * 31 + i * 7) as f64 * 0.13).sin().abs() * 5.0)
            .collect();
        let scaler = MinMaxScaler::fit(&hist);
        keys.push(ClientKey::new(format!("tenant-{t:04}"), "pipeline"));
        snapshots.push(ModelSnapshot::new(
            models[t % FAMILIES].clone(),
            scaler,
            HIST,
        ));
        histories.push(hist);
    }
    Fleet {
        keys,
        histories,
        snapshots,
    }
}

fn engine(mode: ExecMode, label: &str, capacity_per_shard: usize, fleet: &Fleet) -> ServeEngine {
    let mut eng = ServeEngine::new(
        EngineConfig {
            mode,
            queue_capacity: fleet.keys.len() * 2,
            registry: RegistryConfig {
                shard_count: 4,
                capacity_per_shard,
            },
            lifecycle: LifecycleConfig::default(),
        },
        store(label),
        Tracer::disabled(),
    );
    for (key, snap) in fleet.keys.iter().zip(&fleet.snapshots) {
        eng.provision(key.clone(), snap.clone());
    }
    eng
}

/// Runs `ticks` identical full-fleet ticks and returns all responses.
fn run(eng: &mut ServeEngine, fleet: &Fleet, ticks: usize) -> Vec<Response> {
    let mut all = Vec::new();
    for tick in 0..ticks {
        for (i, key) in fleet.keys.iter().enumerate() {
            eng.submit(Request::new(
                (tick * fleet.keys.len() + i) as u64,
                key.clone(),
                fleet.histories[i].clone(),
            ))
            .expect("queue sized for the fleet");
        }
        all.extend(eng.tick());
    }
    all
}

#[test]
fn batched_matches_reference_path_bitwise() {
    let f = fleet(37);
    let batched = run(&mut engine(ExecMode::Batched, "eq-b", 64, &f), &f, 3);
    let reference = run(&mut engine(ExecMode::Reference, "eq-r", 64, &f), &f, 3);
    assert_eq!(batched.len(), reference.len());
    for (b, r) in batched.iter().zip(&reference) {
        assert_eq!(b.id, r.id);
        assert!(!b.degraded && !r.degraded);
        assert_eq!(
            b.value.to_bits(),
            r.value.to_bits(),
            "id {}: batched {} != reference {}",
            b.id,
            b.value,
            r.value
        );
    }
}

#[test]
fn batched_matches_workspace_forward_to_1e12() {
    let f = fleet(37);
    let batched = run(&mut engine(ExecMode::Batched, "ws-b", 64, &f), &f, 3);
    let serial = run(&mut engine(ExecMode::Serial, "ws-s", 64, &f), &f, 3);
    assert_eq!(batched.len(), serial.len());
    for (b, s) in batched.iter().zip(&serial) {
        assert_eq!(b.id, s.id);
        let scale = b.value.abs().max(s.value.abs()).max(1.0);
        assert!(
            (b.value - s.value).abs() <= 1e-12 * scale,
            "id {}: batched {} vs workspace {}",
            b.id,
            b.value,
            s.value
        );
    }
}

#[test]
fn identically_seeded_runs_are_bitwise_identical() {
    let f = fleet(29);
    let mut runs = Vec::new();
    for pass in 0..2 {
        let mut eng = ServeEngine::new(
            EngineConfig {
                mode: ExecMode::Batched,
                queue_capacity: 64,
                registry: RegistryConfig {
                    shard_count: 4,
                    capacity_per_shard: 32,
                },
                lifecycle: LifecycleConfig::default(),
            },
            store(&format!("det-{pass}")),
            Tracer::enabled(),
        );
        for (key, snap) in f.keys.iter().zip(&f.snapshots) {
            eng.provision(key.clone(), snap.clone());
        }
        let responses = run(&mut eng, &f, 4);
        let spans = eng.tracer().snapshot().logical_paths();
        runs.push((response_digest(&responses), responses, spans));
    }
    let (d0, r0, s0) = &runs[0];
    let (d1, r1, s1) = &runs[1];
    assert_eq!(d0, d1, "response digests diverged");
    assert_eq!(r0.len(), r1.len());
    for (a, b) in r0.iter().zip(r1.iter()) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.value.to_bits(), b.value.to_bits(), "id {}", a.id);
        assert_eq!(a.source, b.source);
    }
    assert_eq!(s0, s1, "span trees diverged");
}

#[test]
fn lru_eviction_and_rehydration_are_lossless() {
    let f = fleet(24);
    // Uncapped: everything stays resident.
    let mut roomy = engine(ExecMode::Batched, "lru-roomy", 64, &f);
    let want = run(&mut roomy, &f, 3);
    assert_eq!(roomy.stats().cache.evictions, 0);

    // Two snapshots per shard: the full-fleet sweep each tick forces
    // spills and rehydrations, but answers must not change at all.
    let mut tight = engine(ExecMode::Batched, "lru-tight", 2, &f);
    let got = run(&mut tight, &f, 3);
    let stats = tight.stats().cache;
    assert!(stats.evictions > 0, "capacity 2x4 must evict: {stats:?}");
    assert!(
        stats.rehydrations > 0,
        "evicted tenants must rehydrate from disk: {stats:?}"
    );
    assert_eq!(want.len(), got.len());
    for (w, g) in want.iter().zip(&got) {
        assert_eq!(w.id, g.id);
        assert!(!g.degraded, "rehydration must be lossless (id {})", g.id);
        assert_eq!(
            w.value.to_bits(),
            g.value.to_bits(),
            "id {}: roomy {} vs evicting {}",
            w.id,
            w.value,
            g.value
        );
    }
}

#[test]
fn snapshot_roundtrip_preserves_fingerprint_and_predictions() {
    let f = fleet(3);
    let snap = &f.snapshots[0];
    let json = snap.to_json();
    let back = ModelSnapshot::from_json(&json).expect("roundtrip");
    assert_eq!(back.fingerprint(), snap.fingerprint());
    let w: Vec<f64> = (0..HIST).map(|i| 0.1 + 0.05 * i as f64).collect();
    assert_eq!(
        back.model().predict_reference(&w).to_bits(),
        snap.model().predict_reference(&w).to_bits()
    );
}
