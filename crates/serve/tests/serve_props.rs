//! Property-style invariants of the serving layer, driven by a seeded
//! splitmix64 generator over randomized fleets and schedules:
//!
//! - admission is exclusive and total: every submitted request is either
//!   shed at `submit` or answered by a later tick, never both;
//! - the queue never holds more than its configured bound;
//! - the shard count is a constant of the run, whatever the churn;
//! - cache accounting is conserved: every resolve is exactly one hit or
//!   one miss, rehydrations never exceed misses, and residency never
//!   exceeds the configured capacity.

use ld_api::MinMaxScaler;
use ld_nn::{ForecasterConfig, LstmForecaster};
use ld_serve::{
    ClientKey, EngineConfig, ExecMode, ModelSnapshot, RegistryConfig, Request, ServeEngine,
    SnapshotStore,
};
use ld_telemetry::Tracer;
use std::collections::BTreeSet;

const HIST: usize = 10;

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn store(label: &str) -> SnapshotStore {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/ld-serve-props")
        .join(label);
    let s = SnapshotStore::open(dir).expect("open store");
    s.clear().expect("clear store");
    s
}

fn provisioned_engine(
    label: &str,
    seed: u64,
    tenants: usize,
    queue_capacity: usize,
    shard_count: usize,
    capacity_per_shard: usize,
) -> (ServeEngine, Vec<ClientKey>, Vec<Vec<f64>>) {
    let model = LstmForecaster::new(ForecasterConfig {
        history_len: HIST,
        hidden_size: 5,
        num_layers: 1,
        seed: seed ^ 0x51ed,
    });
    let mut eng = ServeEngine::new(
        EngineConfig {
            mode: ExecMode::Batched,
            queue_capacity,
            registry: RegistryConfig {
                shard_count,
                capacity_per_shard,
            },
        },
        store(label),
        Tracer::disabled(),
    );
    let mut keys = Vec::new();
    let mut histories = Vec::new();
    for t in 0..tenants {
        let h: Vec<f64> = (0..HIST)
            .map(|i| 5.0 + (splitmix64(seed ^ (t * 64 + i) as u64) % 1000) as f64 * 0.01)
            .collect();
        let key = ClientKey::new(format!("p-{seed}-{t:03}"), "props");
        eng.provision(key.clone(), ModelSnapshot::new(model.clone(), MinMaxScaler::fit(&h), HIST))
            .expect("provision");
        keys.push(key);
        histories.push(h);
    }
    (eng, keys, histories)
}

#[test]
fn no_request_is_both_shed_and_answered_and_none_is_lost() {
    for seed in [3u64, 17, 91] {
        let tenants = 12 + (splitmix64(seed) % 9) as usize;
        let bound = 8usize;
        let (mut eng, keys, histories) =
            provisioned_engine(&format!("shed-{seed}"), seed, tenants, bound, 4, 64);

        let mut shed = BTreeSet::new();
        let mut answered = BTreeSet::new();
        let mut submitted = BTreeSet::new();
        let mut next_id = 0u64;
        for round in 0..12 {
            // Offer a randomized burst, deliberately above the bound.
            let burst = 3 + (splitmix64(seed ^ round) % (2 * bound as u64)) as usize;
            for _ in 0..burst {
                let t = (splitmix64(seed ^ next_id.rotate_left(17)) % tenants as u64) as usize;
                let req = Request {
                    id: next_id,
                    key: keys[t].clone(),
                    history: histories[t].clone(),
                };
                submitted.insert(next_id);
                if let Err(back) = eng.submit(req) {
                    assert_eq!(back.id, next_id, "shed returns the offered request");
                    shed.insert(next_id);
                }
                next_id += 1;
            }
            for resp in eng.tick() {
                assert!(answered.insert(resp.id), "id {} answered twice", resp.id);
            }
        }
        for resp in eng.tick() {
            assert!(answered.insert(resp.id), "id {} answered twice", resp.id);
        }

        assert!(
            shed.is_disjoint(&answered),
            "requests both shed and answered: {:?}",
            shed.intersection(&answered).collect::<Vec<_>>()
        );
        let union: BTreeSet<u64> = shed.union(&answered).copied().collect();
        assert_eq!(union, submitted, "every request is shed xor answered");
        let stats = eng.stats();
        assert_eq!(stats.admission.shed, shed.len() as u64);
        assert_eq!(stats.served, answered.len() as u64);
    }
}

#[test]
fn queue_depth_never_exceeds_bound() {
    for seed in [7u64, 23] {
        let bound = 5usize;
        let (mut eng, keys, histories) =
            provisioned_engine(&format!("depth-{seed}"), seed, 9, bound, 2, 32);
        let mut id = 0u64;
        for round in 0..10u64 {
            let burst = (splitmix64(seed ^ round) % 11) as usize;
            for _ in 0..burst {
                let t = (id % keys.len() as u64) as usize;
                let _ = eng.submit(Request {
                    id,
                    key: keys[t].clone(),
                    history: histories[t].clone(),
                });
                id += 1;
                assert!(
                    eng.queue_depth() <= bound,
                    "depth {} exceeded bound {bound}",
                    eng.queue_depth()
                );
            }
            eng.tick();
            assert_eq!(eng.queue_depth(), 0, "tick drains the queue");
        }
    }
}

#[test]
fn shard_count_is_constant_under_churn() {
    let (mut eng, keys, histories) =
        provisioned_engine("shards", 29, 20, 64, 8, 1 /* heavy eviction churn */, );
    let want = eng.shard_count();
    assert_eq!(want, 8);
    for tick in 0..6 {
        for (i, key) in keys.iter().enumerate() {
            eng.submit(Request {
                id: (tick * keys.len() + i) as u64,
                key: key.clone(),
                history: histories[i].clone(),
            })
            .expect("queue is large enough");
            assert_eq!(eng.shard_count(), want);
        }
        eng.tick();
        assert_eq!(eng.shard_count(), want, "churn must not resize the registry");
    }
    assert!(eng.stats().cache.evictions > 0, "capacity 1 must churn");
}

#[test]
fn cache_accounting_is_conserved() {
    for (label, capacity) in [("acct-roomy", 64usize), ("acct-tight", 2)] {
        let (mut eng, keys, histories) = provisioned_engine(label, 41, 15, 64, 4, capacity);
        let mut resolved = 0u64;
        for tick in 0..8 {
            for (i, key) in keys.iter().enumerate() {
                eng.submit(Request {
                    id: (tick * keys.len() + i) as u64,
                    key: key.clone(),
                    history: histories[i].clone(),
                })
                .expect("no shed in this schedule");
            }
            resolved += eng.tick().len() as u64;
        }
        let cache = eng.stats().cache;
        assert_eq!(
            cache.hits + cache.misses,
            resolved,
            "every resolve is exactly one hit or one miss ({label}: {cache:?})"
        );
        assert!(
            cache.rehydrations + cache.corrupt_rehydrations <= cache.misses,
            "rehydrations can only come from misses ({label}: {cache:?})"
        );
        assert!(
            eng.registry().resident() <= eng.shard_count() * capacity,
            "residency above capacity ({label})"
        );
        if capacity == 2 {
            assert!(cache.evictions > 0 && cache.rehydrations > 0, "{label}: {cache:?}");
        } else {
            assert_eq!(cache.misses, 0, "roomy registry never misses after provisioning");
        }
    }
}
