//! Property-style invariants of the serving layer, driven by a seeded
//! splitmix64 generator over randomized fleets and schedules:
//!
//! - admission is exclusive and total: every submitted request is either
//!   shed at `submit` or answered by a later tick, never both;
//! - the queue never holds more than its configured bound;
//! - the shard count is a constant of the run, whatever the churn;
//! - cache accounting is conserved: every resolve is exactly one hit or
//!   one miss, rehydrations never exceed misses, and residency never
//!   exceeds the configured capacity;
//! - the circuit breaker's state machine: it opens after exactly
//!   `failure_threshold` consecutive failures, admits exactly one probe
//!   per tick while half-open, and closes only on a full success streak;
//! - retry backoff is deterministic and bounded, and the queue bound
//!   holds even while transient faults keep parking retries.

use ld_api::MinMaxScaler;
use ld_nn::{ForecasterConfig, LstmForecaster};
use ld_serve::{
    Breaker, BreakerConfig, BreakerState, ClientKey, EngineConfig, ExecMode, LifecycleConfig,
    ModelSnapshot, RegistryConfig, Request, RetryPolicy, Route, ServeEngine, SnapshotStore,
};
use ld_telemetry::Tracer;
use std::collections::BTreeSet;

const HIST: usize = 10;

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn store(label: &str) -> SnapshotStore {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/ld-serve-props")
        .join(label);
    let s = SnapshotStore::open(dir).expect("open store");
    s.clear().expect("clear store");
    s
}

fn provisioned_engine(
    label: &str,
    seed: u64,
    tenants: usize,
    queue_capacity: usize,
    shard_count: usize,
    capacity_per_shard: usize,
) -> (ServeEngine, Vec<ClientKey>, Vec<Vec<f64>>) {
    let model = LstmForecaster::new(ForecasterConfig {
        history_len: HIST,
        hidden_size: 5,
        num_layers: 1,
        seed: seed ^ 0x51ed,
    });
    let mut eng = ServeEngine::new(
        EngineConfig {
            mode: ExecMode::Batched,
            queue_capacity,
            registry: RegistryConfig {
                shard_count,
                capacity_per_shard,
            },
            lifecycle: LifecycleConfig::default(),
        },
        store(label),
        Tracer::disabled(),
    );
    let mut keys = Vec::new();
    let mut histories = Vec::new();
    for t in 0..tenants {
        let h: Vec<f64> = (0..HIST)
            .map(|i| 5.0 + (splitmix64(seed ^ (t * 64 + i) as u64) % 1000) as f64 * 0.01)
            .collect();
        let key = ClientKey::new(format!("p-{seed}-{t:03}"), "props");
        eng.provision(key.clone(), ModelSnapshot::new(model.clone(), MinMaxScaler::fit(&h), HIST));
        keys.push(key);
        histories.push(h);
    }
    (eng, keys, histories)
}

#[test]
fn no_request_is_both_shed_and_answered_and_none_is_lost() {
    for seed in [3u64, 17, 91] {
        let tenants = 12 + (splitmix64(seed) % 9) as usize;
        let bound = 8usize;
        let (mut eng, keys, histories) =
            provisioned_engine(&format!("shed-{seed}"), seed, tenants, bound, 4, 64);

        let mut shed = BTreeSet::new();
        let mut answered = BTreeSet::new();
        let mut submitted = BTreeSet::new();
        let mut next_id = 0u64;
        for round in 0..12 {
            // Offer a randomized burst, deliberately above the bound.
            let burst = 3 + (splitmix64(seed ^ round) % (2 * bound as u64)) as usize;
            for _ in 0..burst {
                let t = (splitmix64(seed ^ next_id.rotate_left(17)) % tenants as u64) as usize;
                let req = Request::new(next_id, keys[t].clone(), histories[t].clone());
                submitted.insert(next_id);
                if let Err(back) = eng.submit(req) {
                    assert_eq!(back.id, next_id, "shed returns the offered request");
                    shed.insert(next_id);
                }
                next_id += 1;
            }
            for resp in eng.tick() {
                assert!(answered.insert(resp.id), "id {} answered twice", resp.id);
            }
        }
        for resp in eng.tick() {
            assert!(answered.insert(resp.id), "id {} answered twice", resp.id);
        }

        assert!(
            shed.is_disjoint(&answered),
            "requests both shed and answered: {:?}",
            shed.intersection(&answered).collect::<Vec<_>>()
        );
        let union: BTreeSet<u64> = shed.union(&answered).copied().collect();
        assert_eq!(union, submitted, "every request is shed xor answered");
        let stats = eng.stats();
        assert_eq!(stats.admission.shed, shed.len() as u64);
        assert_eq!(stats.served, answered.len() as u64);
    }
}

#[test]
fn queue_depth_never_exceeds_bound() {
    for seed in [7u64, 23] {
        let bound = 5usize;
        let (mut eng, keys, histories) =
            provisioned_engine(&format!("depth-{seed}"), seed, 9, bound, 2, 32);
        let mut id = 0u64;
        for round in 0..10u64 {
            let burst = (splitmix64(seed ^ round) % 11) as usize;
            for _ in 0..burst {
                let t = (id % keys.len() as u64) as usize;
                let _ = eng.submit(Request::new(id, keys[t].clone(), histories[t].clone()));
                id += 1;
                assert!(
                    eng.queue_depth() <= bound,
                    "depth {} exceeded bound {bound}",
                    eng.queue_depth()
                );
            }
            eng.tick();
            assert_eq!(eng.queue_depth(), 0, "tick drains the queue");
        }
    }
}

#[test]
fn shard_count_is_constant_under_churn() {
    let (mut eng, keys, histories) =
        provisioned_engine("shards", 29, 20, 64, 8, 1 /* heavy eviction churn */, );
    let want = eng.shard_count();
    assert_eq!(want, 8);
    for tick in 0..6 {
        for (i, key) in keys.iter().enumerate() {
            eng.submit(Request::new(
                (tick * keys.len() + i) as u64,
                key.clone(),
                histories[i].clone(),
            ))
            .expect("queue is large enough");
            assert_eq!(eng.shard_count(), want);
        }
        eng.tick();
        assert_eq!(eng.shard_count(), want, "churn must not resize the registry");
    }
    assert!(eng.stats().cache.evictions > 0, "capacity 1 must churn");
}

#[test]
fn cache_accounting_is_conserved() {
    for (label, capacity) in [("acct-roomy", 64usize), ("acct-tight", 2)] {
        let (mut eng, keys, histories) = provisioned_engine(label, 41, 15, 64, 4, capacity);
        let mut resolved = 0u64;
        for tick in 0..8 {
            for (i, key) in keys.iter().enumerate() {
                eng.submit(Request::new(
                    (tick * keys.len() + i) as u64,
                    key.clone(),
                    histories[i].clone(),
                ))
                .expect("no shed in this schedule");
            }
            resolved += eng.tick().len() as u64;
        }
        let cache = eng.stats().cache;
        assert_eq!(
            cache.hits + cache.misses,
            resolved,
            "every resolve is exactly one hit or one miss ({label}: {cache:?})"
        );
        assert!(
            cache.rehydrations + cache.corrupt_rehydrations <= cache.misses,
            "rehydrations can only come from misses ({label}: {cache:?})"
        );
        assert!(
            eng.registry().resident() <= eng.shard_count() * capacity,
            "residency above capacity ({label})"
        );
        if capacity == 2 {
            assert!(cache.evictions > 0 && cache.rehydrations > 0, "{label}: {cache:?}");
        } else {
            assert_eq!(cache.misses, 0, "roomy registry never misses after provisioning");
        }
    }
}

/// Randomized outcome sequences, checked against a hand-rolled model of
/// the breaker contract: only `failure_threshold` *consecutive* failures
/// open the breaker, and any success before the threshold resets the run.
#[test]
fn breaker_opens_after_exactly_n_consecutive_failures() {
    for seed in [5u64, 19, 83, 201] {
        let threshold = 1 + u32::try_from(splitmix64(seed) % 5).expect("small");
        let cfg = BreakerConfig {
            failure_threshold: threshold,
            cooldown_ticks: 1_000_000, // stay Open once tripped
            close_streak: 1,
        };
        let mut b = Breaker::new(cfg);
        let mut consecutive = 0u32;
        for step in 0..200u64 {
            if b.state() == BreakerState::Open {
                break;
            }
            let ok = splitmix64(seed ^ step.rotate_left(13)) % 3 == 0;
            assert_eq!(b.route(step), Route::Model, "closed breaker admits");
            b.record(step, ok);
            consecutive = if ok { 0 } else { consecutive + 1 };
            if consecutive >= threshold {
                assert_eq!(
                    b.state(),
                    BreakerState::Open,
                    "seed {seed}: {threshold} consecutive failures must open"
                );
                assert_eq!(b.trips(), 1);
            } else {
                assert_eq!(
                    b.state(),
                    BreakerState::Closed,
                    "seed {seed} step {step}: only a full consecutive run may open \
                     ({consecutive}/{threshold} failures)"
                );
            }
        }
    }
}

/// While half-open, the breaker admits exactly one probe per tick and
/// answers everything else from the fallback; a failed probe re-opens
/// with a fresh cooldown.
#[test]
fn half_open_breaker_probes_once_per_tick() {
    let cfg = BreakerConfig {
        failure_threshold: 1,
        cooldown_ticks: 3,
        close_streak: 2,
    };
    let mut b = Breaker::new(cfg);
    b.route(0);
    b.record(0, false);
    assert_eq!(b.state(), BreakerState::Open);

    // Cooldown: everything is fallback, no probes.
    for now in 1..3u64 {
        for _ in 0..4 {
            assert_eq!(b.route(now), Route::Fallback, "tick {now} is inside cooldown");
        }
    }
    // Cooldown over: exactly one probe per tick, however many arrivals.
    for now in 3..5u64 {
        assert_eq!(b.route(now), Route::Probe, "first arrival at tick {now} probes");
        for _ in 0..5 {
            assert_eq!(b.route(now), Route::Fallback, "tick {now} already probed");
        }
    }
    assert_eq!(b.state(), BreakerState::HalfOpen);

    // A failed probe re-opens and restarts the cooldown clock.
    b.record(5, false);
    assert_eq!(b.state(), BreakerState::Open);
    assert_eq!(b.trips(), 2);
    assert_eq!(b.route(6), Route::Fallback, "fresh cooldown after a failed probe");
    assert_eq!(b.route(5 + 3), Route::Probe);
}

/// Half-open closes only after `close_streak` consecutive probe
/// successes; a single failure anywhere in the streak re-opens.
#[test]
fn breaker_closes_only_on_a_full_success_streak() {
    for streak in 1..=4u32 {
        let cfg = BreakerConfig {
            failure_threshold: 1,
            cooldown_ticks: 1,
            close_streak: streak,
        };
        let mut b = Breaker::new(cfg);
        b.route(0);
        b.record(0, false);
        let mut now = 1u64;
        for n in 1..=streak {
            assert_eq!(b.route(now), Route::Probe, "streak {streak} probe {n}");
            b.record(now, true);
            if n < streak {
                assert_eq!(
                    b.state(),
                    BreakerState::HalfOpen,
                    "streak {streak}: {n} successes must not close yet"
                );
            } else {
                assert_eq!(b.state(), BreakerState::Closed, "streak {streak} complete");
            }
            now += 1;
        }

        // Same dance, but the last probe fails: back to Open, streak reset.
        let mut b = Breaker::new(cfg);
        b.route(0);
        b.record(0, false);
        let mut now = 1u64;
        for _ in 1..streak {
            assert_eq!(b.route(now), Route::Probe);
            b.record(now, true);
            now += 1;
        }
        assert_eq!(b.route(now), Route::Probe);
        b.record(now, false);
        assert_eq!(
            b.state(),
            BreakerState::Open,
            "streak {streak}: a failed probe re-opens no matter how long the run was"
        );
    }
}

/// Retry backoff is a pure function of `(attempt, seed)` and stays within
/// `[base << (attempt-1), base << (attempt-1) + jitter]`.
#[test]
fn retry_backoff_is_deterministic_and_bounded() {
    for seed in [1u64, 77, 4096] {
        let policy = RetryPolicy {
            base_ticks: 1 + splitmix64(seed) % 3,
            max_retries: 4,
            jitter_ticks: splitmix64(seed ^ 1) % 4,
        };
        for attempt in 1..=policy.max_retries {
            let key = splitmix64(seed ^ u64::from(attempt));
            let a = policy.backoff(attempt, key);
            let b = policy.backoff(attempt, key);
            assert_eq!(a, b, "backoff must be replayable");
            let floor = policy.base_ticks << (attempt - 1);
            assert!(
                (floor..=floor + policy.jitter_ticks).contains(&a),
                "backoff {a} outside [{floor}, {}]",
                floor + policy.jitter_ticks
            );
        }
    }
}

/// The queue bound holds while transient faults keep parking retries, and
/// the settle loop still answers or sheds every request: parked work must
/// neither overflow the queue nor leak requests.
#[test]
fn queue_bound_holds_under_retry_pressure() {
    let _guard = ld_faultinject::test_lock();
    ld_faultinject::reset();

    let bound = 10usize;
    // Tight registry (capacity 1 per shard) so every tick rehydrates from
    // disk, and a 60% SnapshotCorrupt plan so many of those rehydrations
    // fail transiently and park retries.
    let (mut eng, keys, histories) =
        provisioned_engine("retry-bound", 57, 12, bound, 4, 1);
    ld_faultinject::install(
        ld_faultinject::FaultConfig::new(0x7e57_5eed).with_site(
            ld_faultinject::FaultSite::SnapshotCorrupt,
            0.6,
            None,
        ),
    );

    let mut submitted = 0u64;
    let mut answered = 0u64;
    let mut shed = 0u64;
    let mut id = 0u64;
    for round in 0..10u64 {
        let burst = 4 + (splitmix64(57 ^ round) % 8) as usize;
        for _ in 0..burst {
            let t = (id % keys.len() as u64) as usize;
            submitted += 1;
            if eng.submit(Request::new(id, keys[t].clone(), histories[t].clone())).is_err() {
                shed += 1;
            }
            id += 1;
            assert!(eng.queue_depth() <= bound, "queue bound broken under retries");
        }
        answered += eng.tick().len() as u64;
        assert_eq!(eng.queue_depth(), 0, "tick must drain the queue even when parking");
    }
    assert!(
        eng.stats().lifecycle.retries > 0,
        "a 60% corrupt plan over a thrashing registry must park retries"
    );

    // Settle with the faults still active: retries exhaust their budget
    // and fall back — bounded, explicit, no hangs.
    let mut settle = 0;
    while eng.pending_work() > 0 {
        settle += 1;
        assert!(settle <= 32, "retry settle must terminate");
        answered += eng.tick().len() as u64;
    }
    ld_faultinject::reset();
    assert_eq!(answered + shed, submitted, "every request answered xor shed");
}
