//! Fault-injection: the serving engine must degrade *per tenant*, never
//! per batch. A corrupt snapshot on rehydrate or a poisoned window inside
//! a fused batch drops only the victim lane to the smoothing fallback;
//! every co-batched neighbor answers bit-for-bit what it answers in a
//! fault-free run.

use ld_api::MinMaxScaler;
use ld_faultinject::{install, reset, test_lock, FaultConfig, FaultSite};
use ld_nn::{ForecasterConfig, LstmForecaster};
use ld_serve::{
    BreakerConfig, ClientKey, EngineConfig, ExecMode, LifecycleConfig, ModelSnapshot,
    RegistryConfig, Request, Response, ResponseSource, RetryPolicy, ServeEngine, SnapshotStore,
    SupervisorConfig,
};
use ld_telemetry::Tracer;
use std::collections::BTreeMap;

const HIST: usize = 10;
const TENANTS: usize = 18;

fn store(label: &str) -> SnapshotStore {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/ld-serve-faults")
        .join(label);
    let s = SnapshotStore::open(dir).expect("open store");
    s.clear().expect("clear store");
    s
}

fn build_engine(label: &str, capacity_per_shard: usize) -> (ServeEngine, Vec<ClientKey>, Vec<Vec<f64>>) {
    let model = LstmForecaster::new(ForecasterConfig {
        history_len: HIST,
        hidden_size: 5,
        num_layers: 2,
        seed: 77,
    });
    let mut eng = ServeEngine::new(
        EngineConfig {
            mode: ExecMode::Batched,
            queue_capacity: TENANTS * 2,
            registry: RegistryConfig {
                shard_count: 2,
                capacity_per_shard,
            },
            // These tests pin *same-tick* per-tenant degradation, so the
            // cross-tick lifecycle machinery (retries, breakers, drains)
            // is switched off; it has its own coverage.
            lifecycle: LifecycleConfig {
                deadline_ticks: None,
                retry: RetryPolicy {
                    base_ticks: 1,
                    max_retries: 0,
                    jitter_ticks: 0,
                },
                breaker: BreakerConfig {
                    failure_threshold: u32::MAX,
                    cooldown_ticks: 1,
                    close_streak: 1,
                },
                supervisor: SupervisorConfig {
                    degraded_ratio: 2.0,
                    unhealthy_ticks: u32::MAX,
                    recovery_ticks: 1,
                },
            },
        },
        store(label),
        Tracer::disabled(),
    );
    let mut keys = Vec::new();
    let mut histories = Vec::new();
    for t in 0..TENANTS {
        let h: Vec<f64> = (0..HIST)
            .map(|i| 20.0 + ((t * 13 + i * 5) as f64 * 0.21).sin() * 6.0)
            .collect();
        let key = ClientKey::new(format!("f-{t:03}"), "faults");
        eng.provision(key.clone(), ModelSnapshot::new(model.clone(), MinMaxScaler::fit(&h), HIST));
        keys.push(key);
        histories.push(h);
    }
    (eng, keys, histories)
}

fn run(eng: &mut ServeEngine, keys: &[ClientKey], histories: &[Vec<f64>], ticks: usize) -> Vec<Response> {
    let mut all = Vec::new();
    for tick in 0..ticks {
        for (i, key) in keys.iter().enumerate() {
            eng.submit(Request::new(
                (tick * keys.len() + i) as u64,
                key.clone(),
                histories[i].clone(),
            ))
            .expect("queue sized for fleet");
        }
        all.extend(eng.tick());
    }
    all
}

fn by_id(responses: &[Response]) -> BTreeMap<u64, &Response> {
    responses.iter().map(|r| (r.id, r)).collect()
}

#[test]
fn corrupt_rehydration_degrades_victim_without_poisoning_neighbors() {
    let _guard = test_lock();
    reset();

    // Tight registry: each full-fleet tick evicts and rehydrates, so the
    // SnapshotCorrupt site actually fires on the load path.
    let (mut clean_eng, keys, histories) = build_engine("snap-clean", 3);
    let clean = run(&mut clean_eng, &keys, &histories, 3);

    install(FaultConfig::new(0xfa_417).with_site(FaultSite::SnapshotCorrupt, 0.5, None));
    let (mut faulty_eng, _, _) = build_engine("snap-faulty", 3);
    let faulty = run(&mut faulty_eng, &keys, &histories, 3);
    let stats = faulty_eng.stats();
    reset();

    assert_eq!(clean.len(), faulty.len());
    assert!(
        stats.cache.corrupt_rehydrations > 0,
        "plan must corrupt some rehydrations: {:?}",
        stats.cache
    );
    assert!(stats.degraded > 0, "corrupt snapshots must degrade tenants");
    assert!(
        stats.degraded < stats.served,
        "degradation must stay per-tenant, not engulf the run"
    );

    let clean_map = by_id(&clean);
    for f in &faulty {
        let c = clean_map[&f.id];
        if f.degraded {
            assert_eq!(f.source, ResponseSource::Fallback);
            assert!(
                f.value.is_finite() && f.value >= 0.0,
                "fallback must answer a usable forecast (id {})",
                f.id
            );
        } else {
            assert_eq!(
                f.value.to_bits(),
                c.value.to_bits(),
                "undegraded id {} must be untouched by neighbors' faults",
                f.id
            );
        }
    }
}

#[test]
fn batch_nan_degrades_only_the_poisoned_lane() {
    let _guard = test_lock();
    reset();

    let (mut clean_eng, keys, histories) = build_engine("nan-clean", 64);
    let clean = run(&mut clean_eng, &keys, &histories, 4);
    assert!(clean.iter().all(|r| !r.degraded));

    install(FaultConfig::new(0xbad_5eed).with_site(FaultSite::BatchNan, 0.25, None));
    let (mut faulty_eng, _, _) = build_engine("nan-faulty", 64);
    let faulty = run(&mut faulty_eng, &keys, &histories, 4);
    reset();

    assert_eq!(clean.len(), faulty.len());
    let degraded: Vec<u64> = faulty.iter().filter(|r| r.degraded).map(|r| r.id).collect();
    assert!(
        !degraded.is_empty(),
        "a 25% BatchNan plan over {} lanes must hit something",
        clean.len()
    );
    assert!(
        degraded.len() < clean.len() / 2,
        "poison must not spread beyond its lanes: {degraded:?}"
    );

    let clean_map = by_id(&clean);
    for f in &faulty {
        let c = clean_map[&f.id];
        if f.degraded {
            assert_eq!(f.source, ResponseSource::Fallback);
            assert!(f.value.is_finite() && f.value >= 0.0);
        } else {
            // The co-batched survivors of a poisoned batch answer exactly
            // what the fault-free run answers — NaN never leaks across
            // lanes of a fused forward.
            assert_eq!(
                f.value.to_bits(),
                c.value.to_bits(),
                "co-batched id {} contaminated",
                f.id
            );
            assert_eq!(f.source, ResponseSource::Batched);
        }
    }
}

#[test]
fn fault_free_runs_stay_identical_after_a_plan_is_reset() {
    let _guard = test_lock();
    reset();

    let (mut a_eng, keys, histories) = build_engine("reset-a", 64);
    let a = run(&mut a_eng, &keys, &histories, 2);

    // Install and tear down a plan without running anything under it; a
    // subsequent run must not remember it.
    install(FaultConfig::new(1).with_site(FaultSite::BatchNan, 1.0, None));
    reset();

    let (mut b_eng, _, _) = build_engine("reset-b", 64);
    let b = run(&mut b_eng, &keys, &histories, 2);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.value.to_bits(), y.value.to_bits());
        assert!(!x.degraded && !y.degraded);
    }
}
