//! One-off calibration probe for thin-shape matmul dispatch (not wired
//! into CI; see the dispatcher comment in matrix.rs for the conclusions).
use ld_linalg::Matrix;
use std::hint::black_box;
use std::time::Instant;

fn bench(m: usize, k: usize, n: usize) {
    let a = Matrix::from_fn(m, k, |i, j| ((i * k + j) as f64 * 0.017).sin());
    let b = Matrix::from_fn(k, n, |i, j| ((i * n + j) as f64 * 0.013).cos());
    let time = |f: &dyn Fn() -> Matrix| {
        let mut ts: Vec<f64> = (0..9)
            .map(|_| {
                let t0 = Instant::now();
                for _ in 0..64 {
                    black_box(f());
                }
                t0.elapsed().as_secs_f64() / 64.0
            })
            .collect();
        ts.sort_by(f64::total_cmp);
        ts[4]
    };
    let tn = time(&|| a.matmul_naive(&b).unwrap());
    let tp = time(&|| a.matmul_packed(&b).unwrap());
    println!("{m:>4} x{k:>4} x{n:>4}  naive {tn:.3e}  packed {tp:.3e}  ratio {:.2}", tn / tp);
}

fn main() {
    for &(m, k, n) in &[
        (1usize, 64usize, 64usize),
        (1, 256, 256),
        (64, 64, 1),
        (256, 256, 1),
        (2, 64, 64),
        (4, 64, 64),
        (64, 64, 4),
        (8, 64, 64),
        (1, 8, 8),
    ] {
        bench(m, k, n);
    }
}
