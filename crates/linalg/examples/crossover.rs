//! Dispatcher-calibration harness: times the naive streaming kernel
//! against the packed register-tiled kernel over a sweep of square sizes,
//! printing per-size medians and the speedup ratio. Run it after touching
//! either kernel to re-derive `PACKED_FLOP_THRESHOLD`:
//!
//!     cargo run --release -p ld-linalg --example crossover

use ld_linalg::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn median_secs(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

fn main() {
    let mut rng = StdRng::seed_from_u64(1234);
    println!("{:>5} {:>12} {:>12} {:>8}", "n", "naive (s)", "packed (s)", "ratio");
    for &n in &[4usize, 8, 12, 16, 20, 24, 32, 48, 64, 96, 128, 192, 256] {
        let a = Matrix::random_uniform(n, n, 1.0, &mut rng);
        let b = Matrix::random_uniform(n, n, 1.0, &mut rng);
        let inner = (2_000_000 / (n * n * n)).clamp(1, 2000);
        let reps = 9;
        let time = |f: &dyn Fn() -> Matrix| {
            // Warmup.
            let mut sink = 0.0;
            sink += f().as_slice()[0];
            let mut samples = Vec::with_capacity(reps);
            for _ in 0..reps {
                let t0 = Instant::now();
                for _ in 0..inner {
                    sink += f().as_slice()[0];
                }
                samples.push(t0.elapsed().as_secs_f64() / inner as f64);
            }
            (median_secs(samples), sink)
        };
        let (t_naive, s1) = time(&|| a.matmul_naive(&b).unwrap());
        let (t_packed, s2) = time(&|| a.matmul_packed(&b).unwrap());
        assert!((s1 - s2).abs() < 1e-9 * s1.abs().max(1.0));
        println!(
            "{n:>5} {t_naive:>12.3e} {t_packed:>12.3e} {:>8.2}",
            t_naive / t_packed
        );
    }
}
