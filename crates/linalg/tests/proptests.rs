//! Randomized property tests for the linear-algebra substrate.
//!
//! Seeded-loop style (no external property-testing framework): each
//! property is checked over a fixed number of randomly generated cases
//! drawn from a per-test seed, so failures reproduce exactly.

use ld_linalg::{solve, vecops, Cholesky, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 32;

fn matrix(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
    let data: Vec<f64> = (0..rows * cols).map(|_| rng.gen_range(-10.0..10.0)).collect();
    Matrix::from_vec(rows, cols, data).unwrap()
}

fn vector(len: usize, rng: &mut StdRng) -> Vec<f64> {
    (0..len).map(|_| rng.gen_range(-10.0..10.0)).collect()
}

#[test]
fn matmul_associative() {
    let mut rng = StdRng::seed_from_u64(0x11A1);
    for _ in 0..CASES {
        let a = matrix(4, 3, &mut rng);
        let b = matrix(3, 5, &mut rng);
        let c = matrix(5, 2, &mut rng);
        let ab_c = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let a_bc = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        assert!(ab_c.max_abs_diff(&a_bc) < 1e-9);
    }
}

#[test]
fn matmul_distributes_over_addition() {
    let mut rng = StdRng::seed_from_u64(0x11A2);
    for _ in 0..CASES {
        let a = matrix(4, 3, &mut rng);
        let b = matrix(3, 2, &mut rng);
        let c = matrix(3, 2, &mut rng);
        let mut b_plus_c = b.clone();
        b_plus_c.add_assign(&c).unwrap();
        let lhs = a.matmul(&b_plus_c).unwrap();
        let mut rhs = a.matmul(&b).unwrap();
        rhs.add_assign(&a.matmul(&c).unwrap()).unwrap();
        assert!(lhs.max_abs_diff(&rhs) < 1e-9);
    }
}

#[test]
fn transpose_reverses_product() {
    let mut rng = StdRng::seed_from_u64(0x11A3);
    for _ in 0..CASES {
        let a = matrix(4, 3, &mut rng);
        let b = matrix(3, 5, &mut rng);
        let lhs = a.matmul(&b).unwrap().transpose();
        let rhs = b.transpose().matmul(&a.transpose()).unwrap();
        assert!(lhs.max_abs_diff(&rhs) < 1e-9);
    }
}

#[test]
fn cholesky_roundtrips_spd() {
    let mut rng = StdRng::seed_from_u64(0x11A4);
    for _ in 0..CASES {
        // B B^T + 6I is SPD for any B with bounded entries.
        let b = matrix(6, 6, &mut rng);
        let mut a = b.matmul(&b.transpose()).unwrap();
        for i in 0..6 {
            a[(i, i)] += 6.0;
        }
        let ch = Cholesky::factor(&a).unwrap();
        let recon = ch.l().matmul(&ch.l().transpose()).unwrap();
        assert!(recon.max_abs_diff(&a) < 1e-7);
    }
}

#[test]
fn cholesky_solve_is_inverse() {
    let mut rng = StdRng::seed_from_u64(0x11A5);
    for _ in 0..CASES {
        let b = matrix(5, 5, &mut rng);
        let x = vector(5, &mut rng);
        let mut a = b.matmul(&b.transpose()).unwrap();
        for i in 0..5 {
            a[(i, i)] += 5.0;
        }
        let rhs = a.matvec(&x).unwrap();
        let ch = Cholesky::factor(&a).unwrap();
        let solved = ch.solve(&rhs).unwrap();
        for (u, v) in solved.iter().zip(&x) {
            assert!((u - v).abs() < 1e-6);
        }
    }
}

#[test]
fn lstsq_residual_orthogonal_to_columns() {
    let mut rng = StdRng::seed_from_u64(0x11A6);
    for _ in 0..CASES {
        // Normal-equation optimality: A^T (A x - b) ~ 0 (up to ridge).
        let a = matrix(12, 3, &mut rng);
        let b = vector(12, &mut rng);
        let x = solve::lstsq(&a, &b, 1e-9).unwrap();
        let pred = a.matvec(&x).unwrap();
        let resid: Vec<f64> = pred.iter().zip(&b).map(|(p, t)| p - t).collect();
        let grad = a.matvec_t(&resid).unwrap();
        for g in grad {
            assert!(g.abs() < 1e-4, "gradient component {g}");
        }
    }
}

#[test]
fn dot_is_bilinear() {
    let mut rng = StdRng::seed_from_u64(0x11A7);
    for _ in 0..CASES {
        let x = vector(6, &mut rng);
        let y = vector(6, &mut rng);
        let alpha = rng.gen_range(-5.0..5.0);
        let scaled: Vec<f64> = x.iter().map(|v| v * alpha).collect();
        let lhs = vecops::dot(&scaled, &y);
        let rhs = alpha * vecops::dot(&x, &y);
        assert!((lhs - rhs).abs() < 1e-8);
    }
}

#[test]
fn norm_triangle_inequality() {
    let mut rng = StdRng::seed_from_u64(0x11A8);
    for _ in 0..CASES {
        let x = vector(8, &mut rng);
        let y = vector(8, &mut rng);
        let sum: Vec<f64> = x.iter().zip(&y).map(|(a, b)| a + b).collect();
        assert!(vecops::norm2(&sum) <= vecops::norm2(&x) + vecops::norm2(&y) + 1e-9);
    }
}

#[test]
fn variance_nonnegative_and_shift_invariant() {
    let mut rng = StdRng::seed_from_u64(0x11A9);
    for _ in 0..CASES {
        let x = vector(10, &mut rng);
        let shift = rng.gen_range(-100.0..100.0);
        let shifted: Vec<f64> = x.iter().map(|v| v + shift).collect();
        let v0 = vecops::variance(&x);
        let v1 = vecops::variance(&shifted);
        assert!(v0 >= 0.0);
        assert!((v0 - v1).abs() < 1e-6);
    }
}
