//! Property-based tests for the linear-algebra substrate.

use ld_linalg::{solve, vecops, Cholesky, Matrix};
use proptest::prelude::*;

/// Strategy: a matrix of the given shape with entries in [-10, 10].
fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-10.0..10.0f64, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v).unwrap())
}

fn vector(len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-10.0..10.0f64, len)
}

proptest! {
    #[test]
    fn matmul_associative(a in matrix(4, 3), b in matrix(3, 5), c in matrix(5, 2)) {
        let ab_c = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let a_bc = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        prop_assert!(ab_c.max_abs_diff(&a_bc) < 1e-9);
    }

    #[test]
    fn matmul_distributes_over_addition(a in matrix(4, 3), b in matrix(3, 2), c in matrix(3, 2)) {
        let mut b_plus_c = b.clone();
        b_plus_c.add_assign(&c).unwrap();
        let lhs = a.matmul(&b_plus_c).unwrap();
        let mut rhs = a.matmul(&b).unwrap();
        rhs.add_assign(&a.matmul(&c).unwrap()).unwrap();
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-9);
    }

    #[test]
    fn transpose_reverses_product(a in matrix(4, 3), b in matrix(3, 5)) {
        let lhs = a.matmul(&b).unwrap().transpose();
        let rhs = b.transpose().matmul(&a.transpose()).unwrap();
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-9);
    }

    #[test]
    fn cholesky_roundtrips_spd(b in matrix(6, 6)) {
        // B B^T + 6I is SPD for any B with bounded entries... but keep margin.
        let mut a = b.matmul(&b.transpose()).unwrap();
        for i in 0..6 { a[(i, i)] += 6.0; }
        let ch = Cholesky::factor(&a).unwrap();
        let recon = ch.l().matmul(&ch.l().transpose()).unwrap();
        prop_assert!(recon.max_abs_diff(&a) < 1e-7);
    }

    #[test]
    fn cholesky_solve_is_inverse(b in matrix(5, 5), x in vector(5)) {
        let mut a = b.matmul(&b.transpose()).unwrap();
        for i in 0..5 { a[(i, i)] += 5.0; }
        let rhs = a.matvec(&x).unwrap();
        let ch = Cholesky::factor(&a).unwrap();
        let solved = ch.solve(&rhs).unwrap();
        for (u, v) in solved.iter().zip(&x) {
            prop_assert!((u - v).abs() < 1e-6);
        }
    }

    #[test]
    fn lstsq_residual_orthogonal_to_columns(a in matrix(12, 3), b in vector(12)) {
        // Normal-equation optimality: A^T (A x - b) ~ 0 (up to ridge).
        let x = solve::lstsq(&a, &b, 1e-9).unwrap();
        let pred = a.matvec(&x).unwrap();
        let resid: Vec<f64> = pred.iter().zip(&b).map(|(p, t)| p - t).collect();
        let grad = a.matvec_t(&resid).unwrap();
        for g in grad {
            prop_assert!(g.abs() < 1e-4, "gradient component {g}");
        }
    }

    #[test]
    fn dot_is_bilinear(x in vector(6), y in vector(6), alpha in -5.0..5.0f64) {
        let scaled: Vec<f64> = x.iter().map(|v| v * alpha).collect();
        let lhs = vecops::dot(&scaled, &y);
        let rhs = alpha * vecops::dot(&x, &y);
        prop_assert!((lhs - rhs).abs() < 1e-8);
    }

    #[test]
    fn norm_triangle_inequality(x in vector(8), y in vector(8)) {
        let sum: Vec<f64> = x.iter().zip(&y).map(|(a, b)| a + b).collect();
        prop_assert!(vecops::norm2(&sum) <= vecops::norm2(&x) + vecops::norm2(&y) + 1e-9);
    }

    #[test]
    fn variance_nonnegative_and_shift_invariant(x in vector(10), shift in -100.0..100.0f64) {
        let shifted: Vec<f64> = x.iter().map(|v| v + shift).collect();
        let v0 = vecops::variance(&x);
        let v1 = vecops::variance(&shifted);
        prop_assert!(v0 >= 0.0);
        prop_assert!((v0 - v1).abs() < 1e-6);
    }
}
