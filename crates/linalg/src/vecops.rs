//! Small dense-vector kernels shared across the workspace.

use crate::guard;

/// Dot product of two equal-length slices.
///
/// # Panics
/// Panics in debug builds if lengths differ (hot path; callers guarantee
/// shapes), or if the kernel manufactures a NaN from finite products — a
/// NaN result is legitimate only when an operand pair already multiplied to
/// NaN or ±inf (see the `guard` module).
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let s: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    debug_assert!(
        !s.is_nan() || a.iter().zip(b).any(|(x, y)| !(x * y).is_finite()),
        "dot: NaN result though every elementwise product was finite"
    );
    s
}

/// Dot product evaluated with four independent accumulators.
///
/// [`dot`]'s single running sum forms a loop-carried dependency chain that
/// caps throughput at one add per FP-add latency; splitting the sum into
/// four lanes lets the compiler keep the FP pipeline full (and vectorize).
/// The summation *order* therefore differs from [`dot`] by O(eps) rounding —
/// fast paths built on this kernel are equivalence-gated against the
/// sequential reference at 1e-9 relative tolerance (`ld-perfbench --smoke`
/// and the `kernel_equivalence` suite). The lane layout is fixed, so the
/// result is still bitwise deterministic run to run.
///
/// # Panics
/// Panics in debug builds if lengths differ or the kernel manufactures a
/// NaN from finite products (same contract as [`dot`]).
#[inline]
pub fn dot4(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f64; 4];
    let a_rem = a.chunks_exact(4).remainder();
    let b_rem = b.chunks_exact(4).remainder();
    for (ca, cb) in a.chunks_exact(4).zip(b.chunks_exact(4)) {
        acc[0] += ca[0] * cb[0];
        acc[1] += ca[1] * cb[1];
        acc[2] += ca[2] * cb[2];
        acc[3] += ca[3] * cb[3];
    }
    let mut s = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for (x, y) in a_rem.iter().zip(b_rem) {
        s += x * y;
    }
    debug_assert!(
        !s.is_nan() || a.iter().zip(b).any(|(x, y)| !(x * y).is_finite()),
        "dot4: NaN result though every elementwise product was finite"
    );
    s
}

/// In-place `y += alpha * x`.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    // Debug-only sanitizer pre-scan: `finite + finite` can overflow to ±inf
    // but can never be NaN, so a NaN appearing below must have entered
    // through `y` or through a non-finite `alpha * x` product. The scan is
    // short-circuited away entirely in release builds.
    let inputs_clean = cfg!(debug_assertions)
        && y.iter()
            .zip(x.iter())
            .all(|(yi, &xi)| yi.is_finite() && (alpha * xi).is_finite());
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
    debug_assert!(
        !inputs_clean || !guard::has_nan(y),
        "axpy: NaN born from finite operands"
    );
}

/// Euclidean norm.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Squared Euclidean distance between two points.
#[inline]
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(a: &[f64]) -> f64 {
    if a.is_empty() {
        0.0
    } else {
        a.iter().sum::<f64>() / a.len() as f64
    }
}

/// Population variance; `0.0` for slices shorter than 2.
pub fn variance(a: &[f64]) -> f64 {
    if a.len() < 2 {
        return 0.0;
    }
    let m = mean(a);
    a.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / a.len() as f64
}

/// Population standard deviation.
pub fn stddev(a: &[f64]) -> f64 {
    variance(a).sqrt()
}

/// Index of the minimum value (first on ties); `None` for empty input or if
/// every entry is NaN.
pub fn argmin(a: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in a.iter().enumerate() {
        if v.is_nan() {
            continue;
        }
        match best {
            Some((_, bv)) if bv <= v => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

/// Index of the maximum value (first on ties); `None` for empty input or if
/// every entry is NaN.
pub fn argmax(a: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in a.iter().enumerate() {
        if v.is_nan() {
            continue;
        }
        match best {
            Some((_, bv)) if bv >= v => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
    }

    #[test]
    fn dot4_matches_dot_across_lengths() {
        // Cover every remainder class (len % 4) including the empty slice.
        for len in 0..23usize {
            let a: Vec<f64> = (0..len).map(|i| (i as f64 * 0.7).sin() + 0.1).collect();
            let b: Vec<f64> = (0..len).map(|i| (i as f64 * 1.3).cos() - 0.2).collect();
            let s = dot(&a, &b);
            let s4 = dot4(&a, &b);
            assert!(
                (s - s4).abs() <= 1e-12 * (1.0 + s.abs()),
                "len {len}: {s} vs {s4}"
            );
        }
    }

    #[test]
    fn axpy_updates_in_place() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, -1.0], &mut y);
        assert_eq!(y, vec![7.0, -1.0]);
    }

    #[test]
    fn sq_dist_zero_for_equal_points() {
        assert_eq!(sq_dist(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert_eq!(sq_dist(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }

    #[test]
    fn mean_variance_stddev() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert_eq!(variance(&xs), 4.0);
        assert_eq!(stddev(&xs), 2.0);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
    }

    #[test]
    fn argmin_argmax_handle_ties_and_nans() {
        assert_eq!(argmin(&[3.0, 1.0, 1.0, 2.0]), Some(1));
        assert_eq!(argmax(&[3.0, 5.0, 5.0, 2.0]), Some(1));
        assert_eq!(argmin(&[]), None);
        assert_eq!(argmin(&[f64::NAN, 2.0, 1.0]), Some(2));
        assert_eq!(argmax(&[f64::NAN, f64::NAN]), None);
    }
}
