//! Row-major dense `f64` matrix.
//!
//! Sized for the workloads in this repository: LSTM weight matrices up to a
//! few hundred rows/columns and GP Gram matrices up to a few thousand. The
//! matrix product switches to a rayon-parallel row partition once the work
//! grows past a threshold, following the data-parallelism idiom of the
//! HPC-parallel guides (sequential fallback below the threshold keeps small
//! products allocation- and scheduling-free).

use rand::Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::{LinalgError, Result};

/// Minimum number of multiply-adds before `matmul` goes parallel.
const PAR_FLOP_THRESHOLD: usize = 64 * 64 * 64;

/// Minimum number of multiply-adds before `matmul` dispatches to the
/// packed-panel register-tiled kernel. Below this the O(mk + kn) packing
/// traffic costs more than the tiled compute saves. Calibrated from the
/// `examples/crossover.rs` sweep on the CI host (median-of-9): square
/// n=4 runs at 0.60x (packing overhead swamps 64 flops), n=8 at 1.32x,
/// n=12 at 1.71x, rising monotonically to 4.0x by n=256 — so the flop
/// gate sits at the measured n=8 crossover, `8^3 = 512` multiply-adds.
const PACKED_FLOP_THRESHOLD: usize = 8 * 8 * 8;

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// Returns an error if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::ShapeMismatch {
                context: format!(
                    "from_vec: {} elements cannot fill {rows}x{cols}",
                    data.len()
                ),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Builds a matrix from nested row slices (for tests and small literals).
    ///
    /// # Panics
    /// Panics if rows are ragged.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(nrows * ncols);
        for row in rows {
            assert_eq!(row.len(), ncols, "ragged rows in Matrix::from_rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: nrows,
            cols: ncols,
            data,
        }
    }

    /// Samples every entry uniformly from `[-scale, scale]`.
    pub fn random_uniform(rows: usize, cols: usize, scale: f64, rng: &mut impl Rng) -> Self {
        Matrix {
            rows,
            cols,
            data: (0..rows * cols)
                .map(|_| rng.gen_range(-scale..=scale))
                .collect(),
        }
    }

    /// Xavier/Glorot uniform initialization for a layer with the given fan-in
    /// and fan-out, the initializer TensorFlow uses for LSTM kernels.
    pub fn xavier_uniform(rows: usize, cols: usize, rng: &mut impl Rng) -> Self {
        let limit = (6.0 / (rows + cols) as f64).sqrt();
        Self::random_uniform(rows, cols, limit, rng)
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Flat row-major view of the underlying buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat row-major view of the underlying buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrow of row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r` as a slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a fresh vector.
    pub fn col(&self, c: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// Matrix product `self * rhs`.
    ///
    /// Dispatches to the packed-panel register-tiled FMA kernel
    /// ([`Self::matmul_packed`]) once the flop count justifies the packing
    /// traffic, and to the naive streaming kernel ([`Self::matmul_naive`])
    /// below that. Results are deterministic run-to-run and
    /// `1e-9`-relative-bounded against [`Self::matmul_naive`] (the packed
    /// kernel's fused multiply-adds round once per step). Paths that need
    /// bit-level agreement with the references — the LSTM batched gate
    /// step and everything feeding the serve digests — use the bitwise
    /// kernels ([`Self::matmul_into`], [`crate::pack::PackedA`]) instead
    /// of this dispatcher. Both legs parallelize over blocks of output
    /// rows past an internal threshold (`64^3` multiply-adds) when more
    /// than one rayon thread exists.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        // Thin-row guard, from the examples/thinshape.rs probe: with fewer
        // than MR output rows the A panel is zero-padded to a full
        // micro-tile, so the kernel computes MR/m times the useful work —
        // measured 0.27x (m=1), 0.51x (m=2), 0.56x (m=4) against naive's
        // already-streaming row axpys, recovering to 1.19x at m=MR. Thin
        // *columns* stay packed (64x64x1 measured 1.93x, 256x256x1 2.14x):
        // the padded B panel still feeds full-width vector lanes where the
        // naive path strides.
        if self.cols == rhs.rows
            && self.rows >= crate::microkernel::MR
            && self.rows * self.cols * rhs.cols >= PACKED_FLOP_THRESHOLD
        {
            self.matmul_packed(rhs)
        } else {
            self.matmul_naive(rhs)
        }
    }

    /// Naive matrix product: ikj loop order streaming over `rhs` rows, with
    /// a rayon row partition past the flop threshold.
    ///
    /// This is the pre-blocking reference implementation; [`Self::matmul`]
    /// uses it for small products, and the perf-bench harness times the
    /// blocked kernel against it.
    pub fn matmul_naive(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                context: format!(
                    "matmul: ({}x{}) * ({}x{})",
                    self.rows, self.cols, rhs.rows, rhs.cols
                ),
            });
        }
        let (m, k, n) = (self.rows, self.cols, rhs.cols);
        let mut out = vec![0.0; m * n];
        let flops = m * k * n;

        let row_kernel = |r: usize, out_row: &mut [f64]| {
            let a_row = &self.data[r * k..(r + 1) * k];
            for (p, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &rhs.data[p * n..(p + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        };

        if flops >= PAR_FLOP_THRESHOLD && rayon::current_num_threads() > 1 {
            out.par_chunks_mut(n)
                .enumerate()
                .for_each(|(r, out_row)| row_kernel(r, out_row));
        } else {
            for (r, out_row) in out.chunks_mut(n).enumerate() {
                row_kernel(r, out_row);
            }
        }
        Matrix::from_vec(m, n, out)
    }

    /// Packed-panel register-tiled matrix product (FMA lanes).
    ///
    /// Packs `self` into `MR`-row micro-panels and `rhs` into `NR`-column
    /// micro-panels once per call ([`crate::pack`]), then drives the
    /// `MR x NR` register-tiled fused-multiply-add microkernel
    /// ([`crate::microkernel::gemm_fma`]) over the panel grid: each output
    /// tile accumulates entirely in registers and both operands stream in
    /// exactly the order the kernel consumes them. Edge tiles compute on
    /// zero-padded panels and store only the live corner. Each output
    /// element accumulates its `k` products in ascending order through a
    /// single accumulator, but each FMA step rounds once instead of
    /// twice, so results are `1e-9`-relative-bounded against
    /// [`Self::matmul_naive`] rather than bitwise; the equivalence suite
    /// asserts that bound. Past the parallel threshold the `MR`-row panel
    /// strips fan out across rayon workers (same per-element chains, so
    /// parallelism never changes results).
    pub fn matmul_packed(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                context: format!(
                    "matmul: ({}x{}) * ({}x{})",
                    self.rows, self.cols, rhs.rows, rhs.cols
                ),
            });
        }
        let (m, k, n) = (self.rows, self.cols, rhs.cols);
        use crate::microkernel::{self, MR};

        // Packing scratch is thread-local and reused across calls: a fresh
        // half-megabyte Vec per product would spend more time in page
        // faults than the pack itself (measured ~35% of total call time at
        // n = 256 before the cache; both pack routines fully overwrite the
        // live lanes, so stale contents are harmless).
        thread_local! {
            static PACK_SCRATCH: std::cell::RefCell<(Vec<f64>, Vec<f64>)> =
                const { std::cell::RefCell::new((Vec::new(), Vec::new())) };
        }

        let mut out = vec![0.0; m * n];
        let flops = m * k * n;
        PACK_SCRATCH.with(|cell| {
            let (apack, bpack) = &mut *cell.borrow_mut();
            apack.resize(m.div_ceil(MR).max(1) * MR * k, 0.0);
            crate::pack::pack_a_into(&self.data, m, k, apack);
            crate::pack::pack_b_into(&rhs.data, k, n, bpack);
            let (a_panels, b_panels) = (&apack[..], &bpack[..]);
            if k > 0
                && n > 0
                && flops >= PAR_FLOP_THRESHOLD
                && rayon::current_num_threads() > 1
            {
                // One strip = the rows covered by one packed-A panel; each
                // worker runs the serial kernel on its own panel, so every
                // output element keeps its single ascending-`k` accumulator.
                out.par_chunks_mut(MR * n)
                    .enumerate()
                    .for_each(|(pi, strip)| {
                        let a_panel = &a_panels[pi * MR * k..(pi + 1) * MR * k];
                        microkernel::gemm_fma(
                            strip.len() / n,
                            k,
                            n,
                            a_panel,
                            b_panels,
                            strip,
                            microkernel::Store::Assign,
                        );
                    });
            } else {
                microkernel::gemm_fma(
                    m,
                    k,
                    n,
                    a_panels,
                    b_panels,
                    &mut out,
                    microkernel::Store::Assign,
                );
            }
        });
        Matrix::from_vec(m, n, out)
    }

    /// Allocation-free matrix product `out = self * rhs`, written into a
    /// caller-owned flat row-major buffer — the per-tick hot path of the
    /// fused batch-inference kernel, where the output lives in a reused
    /// scratch arena rather than a fresh [`Matrix`].
    ///
    /// Runs serially with 2-row x 8-column register blocking, column tile
    /// outermost: each output tile accumulates entirely in registers and is
    /// stored once (no re-streaming of the output row per `k` like the
    /// naive update order), and the active `B` column panel (`k x 8`
    /// doubles) stays L1-hot while every `A` row pair sweeps past it. Each
    /// output element still accumulates its `k` products in ascending order
    /// exactly as [`Self::matmul_naive`] and [`Self::matmul_packed`] do,
    /// so results match [`Self::matmul`] **bitwise** at every shape (finite
    /// inputs; `x + 0.0*b` and the naive kernel's skip of zero `a`
    /// coefficients agree bitwise whenever `b` is finite).
    ///
    /// # Panics
    /// Panics on shape mismatch (hot path; callers guarantee shapes).
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut [f64]) {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul_into: ({}x{}) * ({}x{})",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let (m, k, n) = (self.rows, self.cols, rhs.cols);
        assert_eq!(
            out.len(),
            m * n,
            "matmul_into: output length {} != {}x{}",
            out.len(),
            m,
            n
        );
        const JB: usize = 8;
        let b_data = &rhs.data[..k * n];
        let a_data = &self.data[..m * k];
        let mut j = 0;
        while j + JB <= n {
            let mut i = 0;
            while i + 2 <= m {
                let a0 = &a_data[i * k..(i + 1) * k];
                let a1 = &a_data[(i + 1) * k..(i + 2) * k];
                let mut acc0 = [0.0f64; JB];
                let mut acc1 = [0.0f64; JB];
                for p in 0..k {
                    let b = &b_data[p * n + j..p * n + j + JB];
                    let (x0, x1) = (a0[p], a1[p]);
                    for t in 0..JB {
                        acc0[t] += x0 * b[t];
                        acc1[t] += x1 * b[t];
                    }
                }
                out[i * n + j..i * n + j + JB].copy_from_slice(&acc0);
                out[(i + 1) * n + j..(i + 1) * n + j + JB].copy_from_slice(&acc1);
                i += 2;
            }
            if i < m {
                let a0 = &a_data[i * k..(i + 1) * k];
                let mut acc0 = [0.0f64; JB];
                for p in 0..k {
                    let b = &b_data[p * n + j..p * n + j + JB];
                    let x0 = a0[p];
                    for t in 0..JB {
                        acc0[t] += x0 * b[t];
                    }
                }
                out[i * n + j..i * n + j + JB].copy_from_slice(&acc0);
            }
            j += JB;
        }
        while j < n {
            let mut i = 0;
            while i + 2 <= m {
                let a0 = &a_data[i * k..(i + 1) * k];
                let a1 = &a_data[(i + 1) * k..(i + 2) * k];
                let (mut s0, mut s1) = (0.0f64, 0.0f64);
                for p in 0..k {
                    let b = b_data[p * n + j];
                    s0 += a0[p] * b;
                    s1 += a1[p] * b;
                }
                out[i * n + j] = s0;
                out[(i + 1) * n + j] = s1;
                i += 2;
            }
            if i < m {
                let a0 = &a_data[i * k..(i + 1) * k];
                let mut s0 = 0.0f64;
                for p in 0..k {
                    s0 += a0[p] * b_data[p * n + j];
                }
                out[i * n + j] = s0;
            }
            j += 1;
        }
    }

    /// Fused `out = (out + self * rhs) + bias` with a per-row bias,
    /// accumulating into `out` without a separate combine pass.
    ///
    /// Each product element is accumulated to completion in registers
    /// (ascending `k`, identical to [`Matrix::matmul_into`]) and only then
    /// folded as `(out[i][j] + acc) + bias[i]` — the exact combine order a
    /// caller would get from a standalone product followed by an
    /// element-wise `(a + b) + bias` sweep, so results are bitwise equal to
    /// the two-pass form while touching `out` once instead of three times.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch or when `out` / `bias` lengths
    /// don't match the `self.rows x rhs.cols` product shape.
    pub fn matmul_acc_bias_into(&self, rhs: &Matrix, bias: &[f64], out: &mut [f64]) {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul_acc_bias_into: ({}x{}) * ({}x{})",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let (m, k, n) = (self.rows, self.cols, rhs.cols);
        assert_eq!(out.len(), m * n, "matmul_acc_bias_into: output length");
        assert_eq!(bias.len(), m, "matmul_acc_bias_into: bias length");
        const JB: usize = 8;
        let b_data = &rhs.data[..k * n];
        let a_data = &self.data[..m * k];
        let mut j = 0;
        while j + JB <= n {
            let mut i = 0;
            while i + 2 <= m {
                let a0 = &a_data[i * k..(i + 1) * k];
                let a1 = &a_data[(i + 1) * k..(i + 2) * k];
                let mut acc0 = [0.0f64; JB];
                let mut acc1 = [0.0f64; JB];
                for p in 0..k {
                    let b = &b_data[p * n + j..p * n + j + JB];
                    let (x0, x1) = (a0[p], a1[p]);
                    for t in 0..JB {
                        acc0[t] += x0 * b[t];
                        acc1[t] += x1 * b[t];
                    }
                }
                let (b0, b1) = (bias[i], bias[i + 1]);
                let o0 = &mut out[i * n + j..i * n + j + JB];
                for t in 0..JB {
                    o0[t] = (o0[t] + acc0[t]) + b0;
                }
                let o1 = &mut out[(i + 1) * n + j..(i + 1) * n + j + JB];
                for t in 0..JB {
                    o1[t] = (o1[t] + acc1[t]) + b1;
                }
                i += 2;
            }
            if i < m {
                let a0 = &a_data[i * k..(i + 1) * k];
                let mut acc0 = [0.0f64; JB];
                for p in 0..k {
                    let b = &b_data[p * n + j..p * n + j + JB];
                    let x0 = a0[p];
                    for t in 0..JB {
                        acc0[t] += x0 * b[t];
                    }
                }
                let b0 = bias[i];
                let o0 = &mut out[i * n + j..i * n + j + JB];
                for t in 0..JB {
                    o0[t] = (o0[t] + acc0[t]) + b0;
                }
            }
            j += JB;
        }
        while j < n {
            let mut i = 0;
            while i + 2 <= m {
                let a0 = &a_data[i * k..(i + 1) * k];
                let a1 = &a_data[(i + 1) * k..(i + 2) * k];
                let (mut s0, mut s1) = (0.0f64, 0.0f64);
                for p in 0..k {
                    let b = b_data[p * n + j];
                    s0 += a0[p] * b;
                    s1 += a1[p] * b;
                }
                out[i * n + j] = (out[i * n + j] + s0) + bias[i];
                out[(i + 1) * n + j] = (out[(i + 1) * n + j] + s1) + bias[i + 1];
                i += 2;
            }
            if i < m {
                let a0 = &a_data[i * k..(i + 1) * k];
                let mut s0 = 0.0f64;
                for p in 0..k {
                    s0 += a0[p] * b_data[p * n + j];
                }
                out[i * n + j] = (out[i * n + j] + s0) + bias[i];
            }
            j += 1;
        }
    }

    /// Matrix-vector product `self * x`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if self.cols != x.len() {
            return Err(LinalgError::ShapeMismatch {
                context: format!("matvec: ({}x{}) * {}", self.rows, self.cols, x.len()),
            });
        }
        Ok((0..self.rows)
            .map(|r| crate::vecops::dot(self.row(r), x))
            .collect())
    }

    /// Allocation-free matrix-vector product `out = self * x` with the
    /// four-lane dot kernel — the per-timestep hot path of the recurrent
    /// backward passes.
    ///
    /// # Panics
    /// Panics on shape mismatch (hot path; callers guarantee shapes).
    pub fn matvec_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(self.cols, x.len(), "matvec_into: input length");
        assert_eq!(self.rows, out.len(), "matvec_into: output length");
        for (r, o) in out.iter_mut().enumerate() {
            *o = crate::vecops::dot4(self.row(r), x);
        }
    }

    /// Transposed matrix-vector product `self^T * x`.
    pub fn matvec_t(&self, x: &[f64]) -> Result<Vec<f64>> {
        if self.rows != x.len() {
            return Err(LinalgError::ShapeMismatch {
                context: format!("matvec_t: ({}x{})^T * {}", self.rows, self.cols, x.len()),
            });
        }
        let mut out = vec![0.0; self.cols];
        self.matvec_t_into(x, &mut out);
        Ok(out)
    }

    /// Allocation-free transposed matrix-vector product `out = self^T * x`.
    ///
    /// Streams whole rows of `self` (already the cache-friendly access
    /// order for a row-major transposed product — no packing needed, unlike
    /// `matmul`) and accumulates with vectorizable row axpys.
    ///
    /// # Panics
    /// Panics on shape mismatch (hot path; callers guarantee shapes).
    pub fn matvec_t_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(self.rows, x.len(), "matvec_t_into: input length");
        assert_eq!(self.cols, out.len(), "matvec_t_into: output length");
        out.fill(0.0);
        for (r, &xr) in x.iter().enumerate() {
            if xr == 0.0 {
                continue;
            }
            for (o, &a) in out.iter_mut().zip(self.row(r)) {
                *o += a * xr;
            }
        }
    }

    /// In-place elementwise addition.
    pub fn add_assign(&mut self, rhs: &Matrix) -> Result<()> {
        self.zip_assign(rhs, "add_assign", |a, b| a + b)
    }

    /// In-place elementwise subtraction.
    pub fn sub_assign(&mut self, rhs: &Matrix) -> Result<()> {
        self.zip_assign(rhs, "sub_assign", |a, b| a - b)
    }

    /// In-place `self += alpha * rhs` (matrix axpy, the optimizer hot path).
    pub fn axpy(&mut self, alpha: f64, rhs: &Matrix) -> Result<()> {
        self.zip_assign(rhs, "axpy", |a, b| a + alpha * b)
    }

    fn zip_assign(
        &mut self,
        rhs: &Matrix,
        what: &str,
        f: impl Fn(f64, f64) -> f64,
    ) -> Result<()> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::ShapeMismatch {
                context: format!(
                    "{what}: ({}x{}) vs ({}x{})",
                    self.rows, self.cols, rhs.rows, rhs.cols
                ),
            });
        }
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a = f(*a, b);
        }
        Ok(())
    }

    /// In-place scalar multiply.
    pub fn scale(&mut self, alpha: f64) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Applies `f` to every entry in place.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for a in &mut self.data {
            *a = f(*a);
        }
    }

    /// Returns a copy with `f` applied to every entry.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&a| f(a)).collect(),
        }
    }

    /// Sets every entry to zero, keeping the allocation (per-batch gradient
    /// reset in the training loop).
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|a| a * a).sum::<f64>().sqrt()
    }

    /// Sum of squares of all entries (used for global gradient clipping).
    pub fn sum_squares(&self) -> f64 {
        self.data.iter().map(|a| a * a).sum::<f64>()
    }

    /// True if every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|a| a.is_finite())
    }

    /// Maximum absolute difference to another matrix of identical shape.
    ///
    /// # Panics
    /// Panics on shape mismatch (test helper).
    pub fn max_abs_diff(&self, rhs: &Matrix) -> f64 {
        assert_eq!(self.shape(), rhs.shape(), "max_abs_diff shape mismatch");
        self.data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_is_matmul_neutral() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let i2 = Matrix::identity(2);
        let i3 = Matrix::identity(3);
        assert_eq!(a.matmul(&i2).unwrap(), a);
        assert_eq!(i3.matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, Matrix::from_rows(&[&[58.0, 64.0], &[139.0, 154.0]]));
    }

    #[test]
    fn matmul_shape_mismatch_errors() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn matmul_into_matches_naive_bitwise() {
        let mut rng = StdRng::seed_from_u64(33);
        for &(m, k, n) in &[(1usize, 1usize, 1usize), (4, 7, 3), (64, 16, 129), (9, 80, 70)] {
            let a = Matrix::random_uniform(m, k, 1.0, &mut rng);
            let b = Matrix::random_uniform(k, n, 1.0, &mut rng);
            let expect = a.matmul_naive(&b).unwrap();
            // A dirty reused buffer must be fully overwritten.
            let mut out = vec![f64::NAN; m * n];
            a.matmul_into(&b, &mut out);
            assert_eq!(out, expect.as_slice(), "({m}x{k})*({k}x{n})");
        }
    }

    #[test]
    fn matmul_acc_bias_into_matches_two_pass_bitwise() {
        // The fused kernel must answer exactly what the unfused pipeline
        // answers: out = (out + self*rhs) + bias[row], with the product
        // accumulated to completion before the fold. Shapes cover the 2x8
        // register block, its row/column remainders, and degenerate sizes.
        let mut rng = StdRng::seed_from_u64(91);
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (2, 3, 8),
            (5, 7, 11),
            (20, 6, 40),
            (9, 80, 70),
        ] {
            let a = Matrix::random_uniform(m, k, 1.0, &mut rng);
            let b = Matrix::random_uniform(k, n, 1.0, &mut rng);
            let bias: Vec<f64> = (0..m).map(|i| 0.25 * i as f64 - 1.0).collect();
            let seed = Matrix::random_uniform(m, n, 1.0, &mut rng);

            // Two-pass reference: full product, then elementwise fold.
            let mut product = vec![0.0; m * n];
            a.matmul_into(&b, &mut product);
            let mut expect = seed.as_slice().to_vec();
            for i in 0..m {
                for j in 0..n {
                    expect[i * n + j] = (expect[i * n + j] + product[i * n + j]) + bias[i];
                }
            }

            let mut out = seed.as_slice().to_vec();
            a.matmul_acc_bias_into(&b, &bias, &mut out);
            for (idx, (got, want)) in out.iter().zip(&expect).enumerate() {
                assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "({m}x{k})*({k}x{n}) elem {idx}: fused {got} vs two-pass {want}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "matmul_into")]
    fn matmul_into_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let mut out = vec![0.0; 6];
        a.matmul_into(&b, &mut out);
    }

    #[test]
    fn parallel_and_serial_matmul_agree() {
        // Big enough to cross PAR_FLOP_THRESHOLD. The dispatcher lands on
        // the packed FMA kernel here, so the triple-loop reference is
        // matched through the documented 1e-9-relative dispatcher bound,
        // not bitwise.
        let mut rng = StdRng::seed_from_u64(7);
        let a = Matrix::random_uniform(80, 70, 1.0, &mut rng);
        let b = Matrix::random_uniform(70, 90, 1.0, &mut rng);
        let c = a.matmul(&b).unwrap();
        // Serial reference.
        let mut reference = Matrix::zeros(80, 90);
        for r in 0..80 {
            for cc in 0..90 {
                let mut s = 0.0;
                for k in 0..70 {
                    s += a[(r, k)] * b[(k, cc)];
                }
                reference[(r, cc)] = s;
            }
        }
        assert!(c.max_abs_diff(&reference) < 1e-9 * reference.frobenius_norm().max(1.0));
    }

    #[test]
    fn packed_matmul_matches_naive_within_1e9() {
        // Shapes straddle the micro-tile (8x4), the packed-dispatch
        // threshold, and the parallel threshold, including non-multiples
        // of MR/NR and the 1xN / Nx1 degenerate edges. Both kernels
        // accumulate each output through a single ascending-`p`
        // accumulator, but the packed kernel's FMA lanes round once per
        // step, so agreement is 1e-9 relative rather than bitwise — the
        // dispatcher's documented tolerance contract.
        let mut rng = StdRng::seed_from_u64(21);
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (1, 13, 9),
            (9, 13, 1),
            (3, 5, 2),
            (8, 6, 4),
            (17, 33, 9),
            (40, 300, 31),
            (70, 70, 70),
            (65, 257, 130),
        ] {
            let a = Matrix::random_uniform(m, k, 1.0, &mut rng);
            let b = Matrix::random_uniform(k, n, 1.0, &mut rng);
            let packed = a.matmul_packed(&b).unwrap();
            let naive = a.matmul_naive(&b).unwrap();
            let scale = naive.frobenius_norm().max(1.0);
            assert!(
                packed.max_abs_diff(&naive) <= 1e-9 * scale,
                "({m}x{k})*({k}x{n}): packed kernel drifts from naive by {}",
                packed.max_abs_diff(&naive)
            );
            // The public dispatcher routes to one of the two kernels it
            // was just checked against.
            let dispatched = a.matmul(&b).unwrap();
            assert!(
                dispatched == packed || dispatched == naive,
                "({m}x{k})*({k}x{n}): dispatcher produced a third answer"
            );
        }
    }

    #[test]
    fn packed_matmul_shape_mismatch_errors() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.matmul_packed(&b),
            Err(LinalgError::ShapeMismatch { .. })
        ));
        assert!(matches!(
            a.matmul_naive(&b),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn matvec_into_matches_matvec() {
        let mut rng = StdRng::seed_from_u64(23);
        let a = Matrix::random_uniform(9, 14, 1.0, &mut rng);
        let x: Vec<f64> = (0..14).map(|i| (i as f64 * 0.37).sin()).collect();
        let expect = a.matvec(&x).unwrap();
        let mut out = vec![f64::NAN; 9];
        a.matvec_into(&x, &mut out);
        for (e, o) in expect.iter().zip(&out) {
            assert!((e - o).abs() <= 1e-12 * (1.0 + e.abs()));
        }
    }

    #[test]
    fn matvec_t_into_matches_matvec_t() {
        let mut rng = StdRng::seed_from_u64(29);
        let a = Matrix::random_uniform(11, 6, 1.0, &mut rng);
        let x: Vec<f64> = (0..11).map(|i| i as f64 - 5.0).collect();
        let expect = a.matvec_t(&x).unwrap();
        let mut out = vec![f64::NAN; 6];
        a.matvec_t_into(&x, &mut out);
        assert_eq!(expect, out);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().shape(), (3, 2));
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn matvec_matches_matmul_column() {
        let a = Matrix::from_rows(&[&[1.0, -1.0], &[2.0, 0.5]]);
        let x = vec![3.0, 4.0];
        assert_eq!(a.matvec(&x).unwrap(), vec![-1.0, 8.0]);
    }

    #[test]
    fn matvec_t_matches_transpose_matvec() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = Matrix::random_uniform(5, 7, 1.0, &mut rng);
        let x: Vec<f64> = (0..5).map(|i| i as f64 - 2.0).collect();
        let via_t = a.transpose().matvec(&x).unwrap();
        let direct = a.matvec_t(&x).unwrap();
        for (u, v) in via_t.iter().zip(&direct) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Matrix::filled(2, 2, 1.0);
        let g = Matrix::filled(2, 2, 2.0);
        a.axpy(-0.5, &g).unwrap();
        assert_eq!(a, Matrix::zeros(2, 2));
        let mut b = Matrix::filled(2, 2, 3.0);
        b.scale(2.0);
        assert_eq!(b, Matrix::filled(2, 2, 6.0));
    }

    #[test]
    fn xavier_entries_within_limit() {
        let mut rng = StdRng::seed_from_u64(11);
        let m = Matrix::xavier_uniform(30, 20, &mut rng);
        let limit = (6.0 / 50.0_f64).sqrt();
        assert!(m.as_slice().iter().all(|v| v.abs() <= limit));
        // Not degenerate.
        assert!(m.frobenius_norm() > 0.0);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 2, vec![0.0; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![0.0; 4]).is_ok());
    }

    #[test]
    fn col_map_and_filled() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.col(1), vec![2.0, 4.0]);
        let doubled = a.map(|v| v * 2.0);
        assert_eq!(doubled, Matrix::from_rows(&[&[2.0, 4.0], &[6.0, 8.0]]));
        let mut b = Matrix::filled(2, 2, 1.5);
        b.map_inplace(|v| v - 0.5);
        assert_eq!(b, Matrix::filled(2, 2, 1.0));
        b.fill_zero();
        assert_eq!(b, Matrix::zeros(2, 2));
        assert!(b.is_finite());
        let mut c = Matrix::filled(1, 1, f64::NAN);
        assert!(!c.is_finite());
        c.sub_assign(&Matrix::zeros(1, 1)).unwrap();
    }

    #[test]
    fn serde_roundtrip() {
        let a = Matrix::from_rows(&[&[1.5, -2.0], &[0.0, 4.25]]);
        let json = serde_json::to_string(&a).unwrap();
        let back: Matrix = serde_json::from_str(&json).unwrap();
        assert_eq!(a, back);
    }
}
