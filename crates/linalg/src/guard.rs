//! Debug-build numeric sanitizers for the linalg boundaries.
//!
//! The fault-tolerance layer deliberately routes non-finite values through
//! these routines: a diverging trainer produces inf-scale weights, an
//! injected NaN loss flows into downstream consumers, and every routine is
//! expected to *propagate or reject* such values — never to invent them.
//! The `debug_assert!`s built on these helpers therefore check **birth, not
//! presence**: a NaN in an output is acceptable exactly when the inputs (or
//! an overflow the routine cannot avoid) already carried one. A firing
//! assert means the kernel itself manufactured a NaN from clean operands,
//! which is always a bug.
//!
//! Everything here compiles to nothing in release builds: `debug_assert!`
//! bodies are constant-folded away, and the eager scans below are guarded by
//! `cfg!(debug_assertions)` at the call sites.

/// True if any element is NaN.
#[inline]
pub(crate) fn has_nan(xs: &[f64]) -> bool {
    xs.iter().any(|v| v.is_nan())
}

/// True if any element is NaN or infinite.
#[inline]
pub(crate) fn has_nonfinite(xs: &[f64]) -> bool {
    xs.iter().any(|v| !v.is_finite())
}

/// True if any element is infinite (NaN does not count).
#[inline]
pub(crate) fn has_inf(xs: &[f64]) -> bool {
    xs.iter().any(|v| v.is_infinite())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifies_slices() {
        assert!(!has_nan(&[1.0, f64::INFINITY]));
        assert!(has_nan(&[1.0, f64::NAN]));
        assert!(has_nonfinite(&[1.0, f64::INFINITY]));
        assert!(has_nonfinite(&[f64::NAN]));
        assert!(!has_nonfinite(&[0.0, -1.0e308]));
        assert!(has_inf(&[f64::NEG_INFINITY]));
        assert!(!has_inf(&[f64::NAN, 2.0]));
    }
}
