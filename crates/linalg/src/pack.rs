//! Micro-panel packing for the register-tiled GEMM ([`crate::microkernel`]).
//!
//! A BLIS-style packed product reads both operands through flat panels laid
//! out in exactly the order the microkernel consumes them:
//!
//! - **A panels** ([`PackedA`]): the left operand is cut into row panels of
//!   [`MR`] rows. Each panel stores its `k` steps contiguously, `MR` values
//!   per step (`panel[p * MR + i] = a[i0 + i][p]`), so one k-step of the
//!   microkernel is a single contiguous `MR`-wide load. The final panel is
//!   zero-padded to `MR` rows.
//! - **B panels** ([`pack_b_into`]): the right operand of the FMA-tiled
//!   path ([`crate::Matrix::matmul_packed`]) is cut into column panels of
//!   [`NR`] columns, stored k-major (`panel[p * NR + j] = b[p][j0 + j]`),
//!   zero-padded to `NR` columns. The bitwise [`PackedA`] products consume
//!   their right operand row-major instead — the streaming kernel
//!   ([`crate::microkernel::gemm`]) wants runtime-width rows, not fixed
//!   tiles — so only the reused left weights pay a packing cost.
//!
//! Padding lanes multiply real data by `0.0` and are never stored back, so
//! they cannot affect results (finite inputs; `0.0 * x` is `±0.0`). Each
//! output element is accumulated by a single accumulator in ascending-`k`
//! order, which keeps every packed kernel **bitwise identical** to
//! [`crate::Matrix::matmul_naive`] — the repo-wide dispatch contract.

use crate::microkernel::{self, MR, NR};
use crate::Matrix;

/// A matrix packed into `MR`-row micro-panels — the GEMM/mat-vec left
/// operand. Cached by callers whose left side is reused across many
/// products (LSTM weight panels in `ld-nn`).
#[derive(Debug, Clone, PartialEq)]
pub struct PackedA {
    /// `ceil(m / MR)` panels of `k * MR` values each.
    data: Vec<f64>,
    m: usize,
    k: usize,
}

impl PackedA {
    /// Packs a flat row-major `m x k` slice.
    ///
    /// # Panics
    /// Panics if `a.len() != m * k`.
    pub fn pack(a: &[f64], m: usize, k: usize) -> Self {
        assert_eq!(a.len(), m * k, "PackedA::pack: {} != {m}x{k}", a.len());
        let panels = m.div_ceil(MR).max(1);
        let mut data = vec![0.0; panels * MR * k];
        pack_a_into(a, m, k, &mut data);
        PackedA { data, m, k }
    }

    /// Packs a [`Matrix`] (the common call site).
    pub fn from_matrix(a: &Matrix) -> Self {
        Self::pack(a.as_slice(), a.rows(), a.cols())
    }

    /// Row count of the packed matrix.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Inner (column) dimension of the packed matrix.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The raw panel buffer (`ceil(m/MR)` panels of `k * MR` values).
    pub fn panels(&self) -> &[f64] {
        &self.data
    }

    /// Unpacks back to a flat row-major `m x k` buffer — the inverse of
    /// [`PackedA::pack`], used by the round-trip property tests.
    pub fn unpack(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.m * self.k];
        if self.k == 0 {
            return out;
        }
        for (pi, panel) in self.data.chunks_exact(MR * self.k).enumerate() {
            let rows = (self.m - pi * MR).min(MR);
            for (p, step) in panel.chunks_exact(MR).enumerate() {
                for (i, &v) in step.iter().take(rows).enumerate() {
                    out[(pi * MR + i) * self.k + p] = v;
                }
            }
        }
        out
    }

    /// Allocation-free mat-vec `out = A * x` over the packed panels.
    ///
    /// Each output element is one accumulator filled in ascending-`k`
    /// order — bitwise identical to a sequential row dot
    /// ([`crate::vecops::dot`]), vectorized across the `MR` rows of a panel
    /// instead of along `k`.
    ///
    /// # Panics
    /// Panics on shape mismatch (hot path; callers guarantee shapes).
    pub fn matvec_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.k, "PackedA::matvec_into: input length");
        assert_eq!(out.len(), self.m, "PackedA::matvec_into: output length");
        if self.k == 0 {
            out.fill(0.0);
            return;
        }
        for (pi, panel) in self.data.chunks_exact(MR * self.k).enumerate() {
            let mut acc = [0.0f64; MR];
            for (step, &xv) in panel.chunks_exact(MR).zip(x) {
                for (a, &av) in acc.iter_mut().zip(step) {
                    *a += av * xv;
                }
            }
            let i0 = pi * MR;
            let rows = (self.m - i0).min(MR);
            out[i0..i0 + rows].copy_from_slice(&acc[..rows]);
        }
    }

    /// Register-blocked packed-A GEMM `out = A * rhs` against an unpacked
    /// right operand ([`crate::microkernel::gemm`] consumes `rhs`
    /// row-major; nothing is packed or allocated per call).
    ///
    /// Bitwise identical to [`Matrix::matmul_into`] /
    /// [`Matrix::matmul_naive`] at every shape (single ascending-`k`
    /// accumulator per output element).
    ///
    /// # Panics
    /// Panics on shape mismatch (hot path; callers guarantee shapes).
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut [f64]) {
        assert_eq!(self.k, rhs.rows(), "PackedA::matmul_into: inner dim");
        let n = rhs.cols();
        assert_eq!(out.len(), self.m * n, "PackedA::matmul_into: output length");
        microkernel::gemm(
            self.m,
            self.k,
            n,
            &self.data,
            rhs.as_slice(),
            out,
            microkernel::Store::Assign,
        );
    }

    /// Fused `out = (out + A * rhs) + bias` with a per-row bias: the packed
    /// twin of [`Matrix::matmul_acc_bias_into`], with the identical combine
    /// order (each product element accumulated to completion in registers,
    /// then folded as `(out + acc) + bias[row]` at store time) — bitwise
    /// equal to the two-pass form.
    ///
    /// # Panics
    /// Panics on shape mismatch (hot path; callers guarantee shapes).
    pub fn matmul_acc_bias_into(&self, rhs: &Matrix, bias: &[f64], out: &mut [f64]) {
        assert_eq!(self.k, rhs.rows(), "PackedA::matmul_acc_bias_into: inner dim");
        let n = rhs.cols();
        assert_eq!(
            out.len(),
            self.m * n,
            "PackedA::matmul_acc_bias_into: output length"
        );
        assert_eq!(bias.len(), self.m, "PackedA::matmul_acc_bias_into: bias length");
        microkernel::gemm(
            self.m,
            self.k,
            n,
            &self.data,
            rhs.as_slice(),
            out,
            microkernel::Store::AccBias(bias),
        );
    }
}

/// Packs a flat row-major `m x k` slice into `MR`-row panels, writing into
/// a pre-sized buffer (`ceil(m/MR) * MR * k`, zero-padded rows included).
///
/// # Panics
/// Panics if `out` is not exactly the packed size.
pub fn pack_a_into(a: &[f64], m: usize, k: usize, out: &mut [f64]) {
    let panels = m.div_ceil(MR).max(1);
    assert_eq!(a.len(), m * k, "pack_a_into: input size");
    assert_eq!(out.len(), panels * MR * k, "pack_a_into: output size");
    if k == 0 {
        return;
    }
    for (pi, panel) in out.chunks_exact_mut(MR * k).enumerate() {
        let i0 = pi * MR;
        let rows = m.saturating_sub(i0).min(MR);
        if rows < MR {
            panel.fill(0.0);
        }
        for i in 0..rows {
            let src = &a[(i0 + i) * k..(i0 + i + 1) * k];
            // Lockstep iterators instead of `panel[p * MR + i]` indexing:
            // the strided write lane and the sequential row read carry no
            // per-element bounds checks.
            for (dst, &v) in panel.iter_mut().skip(i).step_by(MR).zip(src) {
                *dst = v;
            }
        }
    }
}

/// Packs a flat row-major `k x n` slice into `NR`-column panels
/// (`ceil(n/NR)` panels of `k * NR` values, k-major, zero-padded columns),
/// growing `out` as needed. Returns nothing; the panel count is implied by
/// `n`.
pub fn pack_b_into(b: &[f64], k: usize, n: usize, out: &mut Vec<f64>) {
    assert_eq!(b.len(), k * n, "pack_b_into: input size");
    let panels = n.div_ceil(NR).max(1);
    out.resize(panels * NR * k, 0.0);
    if k == 0 {
        return;
    }
    // Padding columns in a partial final panel must be zero on every call
    // (the scratch buffer may hold stale lanes from a previous pack); full
    // panels are fully overwritten below, so only the tail needs clearing.
    if !n.is_multiple_of(NR) || n == 0 {
        out[(panels - 1) * NR * k..].fill(0.0);
    }
    if n == 0 {
        return;
    }
    // One sequential pass over B: each source row is read once and its
    // `NR`-wide chunks scattered to their panels, instead of re-streaming
    // the whole matrix once per panel.
    for (p, brow) in b.chunks_exact(n).enumerate() {
        for (pj, chunk) in brow.chunks(NR).enumerate() {
            out[pj * NR * k + p * NR..][..chunk.len()].copy_from_slice(chunk);
        }
    }
}

/// Unpacks an `NR`-column panel buffer back to flat row-major `k x n` —
/// the inverse of [`pack_b_into`], for the round-trip property tests.
pub fn unpack_b(packed: &[f64], k: usize, n: usize) -> Vec<f64> {
    let panels = n.div_ceil(NR).max(1);
    assert_eq!(packed.len(), panels * NR * k, "unpack_b: packed size");
    let mut out = vec![0.0; k * n];
    if k == 0 {
        return out;
    }
    for (pj, panel) in packed.chunks_exact(NR * k).enumerate() {
        let j0 = pj * NR;
        let cols = n.saturating_sub(j0).min(NR);
        for p in 0..k {
            out[p * n + j0..p * n + j0 + cols]
                .copy_from_slice(&panel[p * NR..p * NR + cols]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Shapes covering full tiles, edge tiles in both dimensions, and the
    /// degenerate 1xN / Nx1 cases.
    const SHAPES: &[(usize, usize)] = &[
        (1, 1),
        (1, 13),
        (13, 1),
        (MR, NR),
        (MR - 1, NR + 1),
        (2 * MR + 3, 17),
        (31, 2 * NR + 1),
        (64, 64),
    ];

    #[test]
    fn pack_a_round_trips_bitwise() {
        let mut rng = StdRng::seed_from_u64(71);
        for &(m, k) in SHAPES {
            let a: Vec<f64> = (0..m * k).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let packed = PackedA::pack(&a, m, k);
            assert_eq!(packed.unpack(), a, "{m}x{k} A round trip");
            // Every lane whose global row index falls past `m` is padding
            // and must be exactly zero.
            for (pi, panel) in packed.panels().chunks_exact(MR * k).enumerate() {
                for step in panel.chunks_exact(MR) {
                    for (i, &v) in step.iter().enumerate() {
                        if pi * MR + i >= m {
                            assert_eq!(
                                v.to_bits(),
                                0.0f64.to_bits(),
                                "padding lane not zero ({m}x{k})"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn pack_b_round_trips_bitwise() {
        let mut rng = StdRng::seed_from_u64(72);
        for &(k, n) in SHAPES {
            let b: Vec<f64> = (0..k * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let mut packed = Vec::new();
            pack_b_into(&b, k, n, &mut packed);
            assert_eq!(unpack_b(&packed, k, n), b, "{k}x{n} B round trip");
        }
    }

    #[test]
    fn packed_matvec_matches_sequential_dot_bitwise() {
        let mut rng = StdRng::seed_from_u64(73);
        for &(m, k) in SHAPES {
            let a = Matrix::random_uniform(m, k, 1.0, &mut rng);
            let x: Vec<f64> = (0..k).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let packed = PackedA::from_matrix(&a);
            let mut out = vec![f64::NAN; m];
            packed.matvec_into(&x, &mut out);
            for (r, &got) in out.iter().enumerate() {
                let want = crate::vecops::dot(a.row(r), &x);
                assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "{m}x{k} row {r}: packed {got} vs dot {want}"
                );
            }
        }
    }

    #[test]
    fn pack_buffer_reuse_is_stateless() {
        // A larger pack followed by a smaller one through the same scratch
        // must produce exactly the fresh-buffer panels.
        let mut rng = StdRng::seed_from_u64(74);
        let big: Vec<f64> = (0..9 * 11).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let small: Vec<f64> = (0..3 * 2).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut warm = Vec::new();
        pack_b_into(&big, 9, 11, &mut warm);
        pack_b_into(&small, 3, 2, &mut warm);
        let mut cold = Vec::new();
        pack_b_into(&small, 3, 2, &mut cold);
        assert_eq!(warm, cold);
    }
}
