//! The f64 GEMM kernels driven by [`crate::pack`]: a streaming packed-A
//! kernel under the bitwise contract and a register-tiled FMA microkernel
//! for maximum throughput.
//!
//! Determinism contract: in both kernels every output element is owned by
//! **one** accumulator filled in ascending-`k` order, and zero-padded
//! panel lanes contribute `acc + (±0.0 * x)` terms that never reach a live
//! element, so edge tiles cannot perturb results. The kernels differ in
//! how the multiply-accumulate is expressed:
//!
//! - [`gemm`] runs the packed-A panels against a **row-major** right
//!   operand with plain multiply-then-add lanes — **bitwise identical** to
//!   [`crate::Matrix::matmul_naive`] (modulo the documented `-0.0`
//!   accumulator edge that [`crate::Matrix::matmul_into`] already
//!   accepts). Its register tile is deliberately the exact accumulation
//!   idiom of [`crate::Matrix::matmul_into`] — named `[f64; 8]`
//!   accumulator rows over an 8-wide column block, `k` innermost — which
//!   LLVM's SLP pass turns into one 512-bit lane per accumulator in every
//!   build; the packed-A layout then allows four accumulator rows per
//!   pass instead of two, because each k-step's four broadcasts come from
//!   one contiguous panel line. (A wider `MR x NR` tile of nested
//!   accumulator arrays was tried first and made vectorization a per-call-
//!   site lottery — some instantiations ran 9x slower than others.) This
//!   is the kernel behind every path under a bitwise contract: the LSTM
//!   batched gate step and the serve digests.
//! - [`gemm_fma`] is the BLIS-style microkernel: an `MR x NR` register
//!   tile per output block, packed-B column panels, and `f64::mul_add`
//!   lanes so LLVM emits fused multiply-add instructions — roughly twice
//!   the multiply-add throughput, at the cost of FMA's single rounding per
//!   step. Results are deterministic run-to-run but only
//!   `1e-9`-relative-bounded against the plain kernels; only
//!   [`crate::Matrix::matmul_packed`] (whose callers all assert through
//!   tolerances) uses it.

/// Micro-tile rows: one packed-A step is `MR` contiguous values.
pub const MR: usize = 8;

/// Micro-tile columns: one packed-B step is `NR` contiguous values.
pub const NR: usize = 16;

/// Vector-lane width the FMA accumulator tile is carved into: each tile
/// row is two `NRH`-wide halves, so every accumulator maps onto exactly
/// one 512-bit register (8 doubles) and LLVM's scalar-promotion keeps the
/// whole `MR x NR` tile in registers across the `k` loop instead of
/// spilling a 16-wide row it cannot type as a single vector.
const NRH: usize = NR / 2;

/// How a finished product block is committed to the output buffer.
#[derive(Clone, Copy)]
pub enum Store<'a> {
    /// `out = acc` — a plain product.
    Assign,
    /// `out = (out + acc) + bias[row]` — the fused accumulate+bias fold
    /// used by the LSTM batched gate step, with the same combine order as
    /// [`crate::Matrix::matmul_acc_bias_into`]: the product is accumulated
    /// to completion from zero first, then folded into `out` in one pass.
    AccBias(&'a [f64]),
}

/// Column-block width of the bitwise kernel's register tile: one [`f64`]
/// accumulator array of this length is exactly one 512-bit register.
const JB: usize = 8;

/// Register-blocked packed-A GEMM with plain multiply/add lanes — bitwise
/// identical to the naive reference kernels. Computes the `m x n` product
/// (flat row-major `out`) from pre-packed A panels (`ceil(m/MR)` panels of
/// `MR * k`, see [`crate::pack::PackedA`]) and an **unpacked** row-major
/// `k x n` right operand `b`.
///
/// Traversal: per A panel, per [`JB`]-wide column block, four named
/// `[f64; JB]` accumulator rows run the whole `k` loop in registers —
/// [`crate::Matrix::matmul_into`]'s accumulation idiom, doubled in rows
/// (four independent add chains per vector port instead of two hides more
/// of the add latency; the packed panel makes each k-step's four
/// broadcasts one contiguous line). Per output element the arithmetic is
/// still a single ascending-`k` plain multiply/add chain starting from
/// zero, which is what keeps the kernel bitwise; leftover columns
/// (`n % JB`) fall back to scalar dots with the identical chain.
///
/// # Panics
/// Panics if the panel buffer, `b`, or `out` do not match the stated
/// shapes (hot path; callers guarantee shapes).
pub fn gemm(
    m: usize,
    k: usize,
    n: usize,
    a_panels: &[f64],
    b: &[f64],
    out: &mut [f64],
    store: Store<'_>,
) {
    let mp = m.div_ceil(MR).max(1);
    assert_eq!(a_panels.len(), mp * MR * k, "gemm: packed A size");
    assert_eq!(b.len(), k * n, "gemm: rhs size");
    assert_eq!(out.len(), m * n, "gemm: output size");
    if let Store::AccBias(bias) = store {
        assert_eq!(bias.len(), m, "gemm: bias length");
    }
    if k == 0 || n == 0 {
        // No products to accumulate: a degenerate shape reduces to the
        // store fold with a zero accumulator.
        match store {
            Store::Assign => out.fill(0.0),
            Store::AccBias(bias) => {
                for (row, &bi) in out.chunks_exact_mut(n.max(1)).zip(bias) {
                    for o in row.iter_mut() {
                        *o = (*o + 0.0) + bi;
                    }
                }
            }
        }
        return;
    }
    for (pi, a_panel) in a_panels.chunks_exact(MR * k).enumerate() {
        let i0 = pi * MR;
        let rows = (m - i0).min(MR);
        let mut j = 0;
        while j + JB <= n {
            // Row quads: `r0` is 0 or 4 (`MR` = 8), so the four-lane
            // broadcast window below is always in bounds; padding lanes of
            // a short final panel are computed (zero contributions) and
            // clipped at store time.
            let mut r0 = 0;
            while r0 < rows {
                let live = (rows - r0).min(4);
                let mut acc0 = [0.0f64; JB];
                let mut acc1 = [0.0f64; JB];
                let mut acc2 = [0.0f64; JB];
                let mut acc3 = [0.0f64; JB];
                for p in 0..k {
                    let bq = &b[p * n + j..p * n + j + JB];
                    let ap = &a_panel[p * MR + r0..p * MR + r0 + 4];
                    let (x0, x1, x2, x3) = (ap[0], ap[1], ap[2], ap[3]);
                    for t in 0..JB {
                        acc0[t] += x0 * bq[t];
                        acc1[t] += x1 * bq[t];
                        acc2[t] += x2 * bq[t];
                        acc3[t] += x3 * bq[t];
                    }
                }
                let accs = [&acc0, &acc1, &acc2, &acc3];
                for (r, accr) in accs.into_iter().enumerate().take(live) {
                    let row = i0 + r0 + r;
                    let o = &mut out[row * n + j..row * n + j + JB];
                    match store {
                        Store::Assign => o.copy_from_slice(accr),
                        Store::AccBias(bias) => {
                            let bi = bias[row];
                            for (ov, &cv) in o.iter_mut().zip(accr) {
                                *ov = (*ov + cv) + bi;
                            }
                        }
                    }
                }
                r0 += 4;
            }
            j += JB;
        }
        // Column remainder: scalar ascending-`k` dots, same chain.
        for jj in j..n {
            for i in 0..rows {
                let mut acc = 0.0f64;
                for p in 0..k {
                    acc += a_panel[p * MR + i] * b[p * n + jj];
                }
                let o = &mut out[(i0 + i) * n + jj];
                match store {
                    Store::Assign => *o = acc,
                    Store::AccBias(bias) => *o = (*o + acc) + bias[i0 + i],
                }
            }
        }
    }
}

/// Register-tiled packed-panel GEMM with fused multiply-add lanes —
/// maximum throughput, `1e-9`-relative-bounded (not bitwise) against
/// [`gemm`] / [`crate::Matrix::matmul_naive`]. Computes the `m x n`
/// product from pre-packed A panels and pre-packed B column panels
/// (`ceil(n/NR)` panels of `NR * k`, see [`crate::pack::pack_b_into`]).
///
/// # Panics
/// Panics if the panel buffers or `out` do not match the stated shapes
/// (hot path; callers guarantee shapes).
pub fn gemm_fma(
    m: usize,
    k: usize,
    n: usize,
    a_panels: &[f64],
    b_panels: &[f64],
    out: &mut [f64],
    store: Store<'_>,
) {
    let mp = m.div_ceil(MR).max(1);
    let np = n.div_ceil(NR).max(1);
    assert_eq!(a_panels.len(), mp * MR * k, "gemm_fma: packed A size");
    assert_eq!(b_panels.len(), np * NR * k, "gemm_fma: packed B size");
    assert_eq!(out.len(), m * n, "gemm_fma: output size");
    if let Store::AccBias(bias) = store {
        assert_eq!(bias.len(), m, "gemm_fma: bias length");
    }
    if k == 0 {
        // No products to accumulate: a degenerate inner dimension reduces
        // to the store fold with a zero accumulator.
        match store {
            Store::Assign => out.fill(0.0),
            Store::AccBias(bias) => {
                for (row, &bi) in out.chunks_exact_mut(n.max(1)).zip(bias) {
                    for o in row.iter_mut() {
                        *o = (*o + 0.0) + bi;
                    }
                }
            }
        }
        return;
    }
    // B-panel-outer order: one `NR * k` B panel is reused by every A panel
    // before the next is touched, so the larger packed operand stays hot in
    // L1 while the A panels stream. Per-tile accumulation order is
    // unchanged (each output tile is one ascending-`k` pass), so tile visit
    // order does not affect results.
    for (pj, b_panel) in b_panels.chunks_exact(NR * k).enumerate() {
        let j0 = pj * NR;
        let cols = n.saturating_sub(j0).min(NR);
        for (pi, a_panel) in a_panels.chunks_exact(MR * k).enumerate() {
            let i0 = pi * MR;
            let rows = m.saturating_sub(i0).min(MR);

            // Full-tile compute: padding lanes are zeros and never stored.
            // Row `i` of the tile lives in `acc_lo[i]` (columns 0..NRH) and
            // `acc_hi[i]` (columns NRH..NR); each half is one vector
            // register wide.
            let mut acc_lo = [[0.0f64; NRH]; MR];
            let mut acc_hi = [[0.0f64; NRH]; MR];
            for (a_step, b_step) in a_panel.chunks_exact(MR).zip(b_panel.chunks_exact(NR)) {
                let (b_lo, b_hi) = b_step.split_at(NRH);
                for (row, &av) in acc_lo.iter_mut().zip(a_step) {
                    for (c, &bv) in row.iter_mut().zip(b_lo) {
                        *c = av.mul_add(bv, *c);
                    }
                }
                for (row, &av) in acc_hi.iter_mut().zip(a_step) {
                    for (c, &bv) in row.iter_mut().zip(b_hi) {
                        *c = av.mul_add(bv, *c);
                    }
                }
            }

            // Clipped store: only the live `rows x cols` corner is written.
            match store {
                Store::Assign => {
                    for (i, (row_lo, row_hi)) in
                        acc_lo.iter().zip(&acc_hi).take(rows).enumerate()
                    {
                        let o0 = (i0 + i) * n + j0;
                        let lo = cols.min(NRH);
                        out[o0..o0 + lo].copy_from_slice(&row_lo[..lo]);
                        if cols > NRH {
                            out[o0 + NRH..o0 + cols]
                                .copy_from_slice(&row_hi[..cols - NRH]);
                        }
                    }
                }
                Store::AccBias(bias) => {
                    for (i, (row_lo, row_hi)) in
                        acc_lo.iter().zip(&acc_hi).take(rows).enumerate()
                    {
                        let bi = bias[i0 + i];
                        let o0 = (i0 + i) * n + j0;
                        let lo = cols.min(NRH);
                        for (o, &c) in out[o0..o0 + lo].iter_mut().zip(row_lo) {
                            *o = (*o + c) + bi;
                        }
                        if cols > NRH {
                            for (o, &c) in
                                out[o0 + NRH..o0 + cols].iter_mut().zip(row_hi)
                            {
                                *o = (*o + c) + bi;
                            }
                        }
                    }
                }
            }
        }
    }
}
