//! General linear solving: Gaussian elimination with partial pivoting and
//! (ridge-damped) least squares via the normal equations.
//!
//! The regression baselines of Table II (linear/quadratic/cubic regression,
//! AR/ARMA/ARIMA fitting, Wood et al.'s robust regression) all reduce to
//! least-squares problems of modest dimension; these routines are their
//! numerical backend.

use crate::{guard, Cholesky, LinalgError, Matrix, Result};

/// Solves a general square system `A x = b` by Gaussian elimination with
/// partial pivoting.
pub fn solve_square(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    let n = a.rows();
    if a.cols() != n {
        return Err(LinalgError::ShapeMismatch {
            context: format!("solve_square: {}x{} not square", a.rows(), a.cols()),
        });
    }
    if b.len() != n {
        return Err(LinalgError::ShapeMismatch {
            context: format!("solve_square: rhs {} vs dim {n}", b.len()),
        });
    }
    let mut aug = a.clone();
    let mut rhs = b.to_vec();
    for col in 0..n {
        // Partial pivot: largest magnitude in the remaining column, under
        // the IEEE total order. A NaN anywhere in the column wins the
        // selection (NaN sorts above +inf by magnitude), fails the finite
        // pivot check below, and surfaces as a deterministic `Singular`
        // instead of an order-dependent result.
        let mut pivot_row = col;
        for i in (col + 1)..n {
            if aug[(i, col)].abs().total_cmp(&aug[(pivot_row, col)].abs()).is_gt() {
                pivot_row = i;
            }
        }
        let pivot = aug[(pivot_row, col)];
        if pivot.abs() < 1e-12 || !pivot.is_finite() {
            return Err(LinalgError::Singular);
        }
        if pivot_row != col {
            for k in 0..n {
                let tmp = aug[(col, k)];
                aug[(col, k)] = aug[(pivot_row, k)];
                aug[(pivot_row, k)] = tmp;
            }
            rhs.swap(col, pivot_row);
        }
        for row in (col + 1)..n {
            let factor = aug[(row, col)] / pivot;
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                let v = aug[(col, k)];
                aug[(row, k)] -= factor * v;
            }
            rhs[row] -= factor * rhs[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut s = rhs[row];
        for k in (row + 1)..n {
            s -= aug[(row, k)] * x[k];
        }
        x[row] = s / aug[(row, row)];
    }
    // Sanitizer: every pivot was checked finite, so a NaN in the solution can
    // only descend from a non-finite entry in the original system (a NaN off
    // the pivot columns passes the pivot checks) or from an intermediate
    // overflow, which leaves a visible ±inf entry behind.
    debug_assert!(
        !guard::has_nan(&x)
            || guard::has_nonfinite(b)
            || !a.is_finite()
            || guard::has_inf(&x),
        "solve_square: NaN born from a finite system without overflow"
    );
    Ok(x)
}

/// Solves `min_x ||A x - b||^2 + ridge * ||x||^2` via the normal equations
/// `(A^T A + ridge I) x = A^T b`, factored with Cholesky.
///
/// A small positive `ridge` keeps rank-deficient design matrices (constant
/// workload segments produce them constantly) solvable; pass `0.0` for pure
/// least squares on a well-conditioned design.
pub fn lstsq(a: &Matrix, b: &[f64], ridge: f64) -> Result<Vec<f64>> {
    if a.rows() != b.len() {
        return Err(LinalgError::ShapeMismatch {
            context: format!("lstsq: {} rows vs rhs {}", a.rows(), b.len()),
        });
    }
    let at = a.transpose();
    let mut ata = at.matmul(a)?;
    for i in 0..ata.rows() {
        ata[(i, i)] += ridge;
    }
    let atb = a.matvec_t(b)?;
    match Cholesky::factor(&ata) {
        Ok(ch) => ch.solve(&atb),
        // Rank-deficient: retry with jitter proportional to the diagonal.
        Err(LinalgError::NotPositiveDefinite { .. }) => {
            let scale = (0..ata.rows())
                .map(|i| ata[(i, i)].abs())
                .fold(0.0, f64::max)
                .max(1.0);
            let ch = Cholesky::factor_with_jitter(&ata, scale * 1e-10, 12)?;
            ch.solve(&atb)
        }
        Err(e) => Err(e),
    }
}

/// Weighted ridge least squares: `min_x sum_i w_i (a_i . x - b_i)^2 + ridge||x||^2`.
///
/// The workhorse of Wood et al.'s iteratively-reweighted robust regression.
pub fn weighted_lstsq(a: &Matrix, b: &[f64], w: &[f64], ridge: f64) -> Result<Vec<f64>> {
    if a.rows() != b.len() || a.rows() != w.len() {
        return Err(LinalgError::ShapeMismatch {
            context: format!(
                "weighted_lstsq: {} rows vs rhs {} vs weights {}",
                a.rows(),
                b.len(),
                w.len()
            ),
        });
    }
    // Scale rows by sqrt(w) and reuse the plain solver.
    let mut aw = a.clone();
    let mut bw = b.to_vec();
    for i in 0..a.rows() {
        let s = w[i].max(0.0).sqrt();
        for v in aw.row_mut(i) {
            *v *= s;
        }
        bw[i] *= s;
    }
    lstsq(&aw, &bw, ridge)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn square_solve_recovers_solution() {
        let a = Matrix::from_rows(&[&[2.0, 1.0, -1.0], &[-3.0, -1.0, 2.0], &[-2.0, 1.0, 2.0]]);
        let x = solve_square(&a, &[8.0, -11.0, -3.0]).unwrap();
        let expect = [2.0, 3.0, -1.0];
        for (u, v) in x.iter().zip(&expect) {
            assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn square_solve_detects_singular() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(
            solve_square(&a, &[1.0, 2.0]),
            Err(LinalgError::Singular)
        ));
    }

    #[test]
    fn square_solve_needs_pivoting() {
        // Zero on the initial pivot position forces a row swap.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = solve_square(&a, &[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12 && (x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn square_solve_with_nan_is_singular_not_a_panic() {
        // Regression: pivot selection used partial_cmp and could panic (or
        // pick an arbitrary row) on NaN. Under total_cmp a NaN wins the
        // magnitude contest, fails the finite-pivot check, and the solve
        // reports Singular — same outcome wherever the NaN sits.
        for idx in 0..4 {
            let mut rows = [[1.0, 2.0], [3.0, 4.0]];
            rows[idx / 2][idx % 2] = f64::NAN;
            let a = Matrix::from_rows(&[&rows[0], &rows[1]]);
            assert!(
                matches!(solve_square(&a, &[1.0, 1.0]), Err(LinalgError::Singular)),
                "NaN at flat index {idx} must yield Singular"
            );
        }
    }

    #[test]
    fn lstsq_exact_on_consistent_system() {
        let mut rng = StdRng::seed_from_u64(9);
        let a = Matrix::random_uniform(30, 4, 1.0, &mut rng);
        let x_true = [1.0, -2.0, 0.5, 3.0];
        let b = a.matvec(&x_true).unwrap();
        let x = lstsq(&a, &b, 0.0).unwrap();
        for (u, v) in x.iter().zip(&x_true) {
            assert!((u - v).abs() < 1e-8);
        }
    }

    #[test]
    fn lstsq_fits_line_through_noisy_points() {
        // y = 2x + 1 exactly; design [x, 1].
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let a = Matrix::from_fn(5, 2, |r, c| if c == 0 { xs[r] } else { 1.0 });
        let b: Vec<f64> = xs.iter().map(|x| 2.0 * x + 1.0).collect();
        let coef = lstsq(&a, &b, 0.0).unwrap();
        assert!((coef[0] - 2.0).abs() < 1e-10);
        assert!((coef[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn lstsq_survives_rank_deficiency() {
        // Duplicate columns: infinitely many solutions; ridge pins one down.
        let a = Matrix::from_fn(6, 2, |r, _| r as f64);
        let b: Vec<f64> = (0..6).map(|r| 3.0 * r as f64).collect();
        let x = lstsq(&a, &b, 1e-8).unwrap();
        // Prediction must still be right even if coefficients split arbitrarily.
        let pred = a.matvec(&x).unwrap();
        for (p, t) in pred.iter().zip(&b) {
            assert!((p - t).abs() < 1e-4);
        }
    }

    #[test]
    fn weighted_lstsq_ignores_zero_weight_outlier() {
        // Points on y = x except one wild outlier that gets weight 0.
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let mut ys: Vec<f64> = xs.to_vec();
        ys[2] = 100.0;
        let a = Matrix::from_fn(5, 2, |r, c| if c == 0 { xs[r] } else { 1.0 });
        let w = [1.0, 1.0, 0.0, 1.0, 1.0];
        let coef = weighted_lstsq(&a, &ys, &w, 0.0).unwrap();
        assert!((coef[0] - 1.0).abs() < 1e-9);
        assert!(coef[1].abs() < 1e-9);
    }
}
