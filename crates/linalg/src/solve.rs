//! General linear solving: Gaussian elimination with partial pivoting and
//! (ridge-damped) least squares via the normal equations.
//!
//! The regression baselines of Table II (linear/quadratic/cubic regression,
//! AR/ARMA/ARIMA fitting, Wood et al.'s robust regression) all reduce to
//! least-squares problems of modest dimension; these routines are their
//! numerical backend.

use crate::{guard, Cholesky, LinalgError, Matrix, Result};
use std::sync::atomic::{AtomicBool, Ordering};

/// Process-wide toggle routing [`lstsq`] through [`lstsq_reference`]
/// (transpose + explicit `A^T A` product) instead of the fused-accumulation
/// fast path. Benchmarks flip it to time the pre-change semantics; both
/// paths are bitwise identical, so this is never a correctness knob.
static REFERENCE_LSTSQ: AtomicBool = AtomicBool::new(false);

/// Routes [`lstsq`] through the reference normal-equations build when `on`.
pub fn set_reference_lstsq(on: bool) {
    REFERENCE_LSTSQ.store(on, Ordering::Relaxed);
}

/// Solves a general square system `A x = b` by Gaussian elimination with
/// partial pivoting.
pub fn solve_square(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    let n = a.rows();
    if a.cols() != n {
        return Err(LinalgError::ShapeMismatch {
            context: format!("solve_square: {}x{} not square", a.rows(), a.cols()),
        });
    }
    if b.len() != n {
        return Err(LinalgError::ShapeMismatch {
            context: format!("solve_square: rhs {} vs dim {n}", b.len()),
        });
    }
    let mut aug = a.clone();
    let mut rhs = b.to_vec();
    for col in 0..n {
        // Partial pivot: largest magnitude in the remaining column, under
        // the IEEE total order. A NaN anywhere in the column wins the
        // selection (NaN sorts above +inf by magnitude), fails the finite
        // pivot check below, and surfaces as a deterministic `Singular`
        // instead of an order-dependent result.
        let mut pivot_row = col;
        for i in (col + 1)..n {
            if aug[(i, col)].abs().total_cmp(&aug[(pivot_row, col)].abs()).is_gt() {
                pivot_row = i;
            }
        }
        let pivot = aug[(pivot_row, col)];
        if pivot.abs() < 1e-12 || !pivot.is_finite() {
            return Err(LinalgError::Singular);
        }
        if pivot_row != col {
            for k in 0..n {
                let tmp = aug[(col, k)];
                aug[(col, k)] = aug[(pivot_row, k)];
                aug[(pivot_row, k)] = tmp;
            }
            rhs.swap(col, pivot_row);
        }
        for row in (col + 1)..n {
            let factor = aug[(row, col)] / pivot;
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                let v = aug[(col, k)];
                aug[(row, k)] -= factor * v;
            }
            rhs[row] -= factor * rhs[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut s = rhs[row];
        for k in (row + 1)..n {
            s -= aug[(row, k)] * x[k];
        }
        x[row] = s / aug[(row, row)];
    }
    // Sanitizer: every pivot was checked finite, so a NaN in the solution can
    // only descend from a non-finite entry in the original system (a NaN off
    // the pivot columns passes the pivot checks) or from an intermediate
    // overflow, which leaves a visible ±inf entry behind.
    debug_assert!(
        !guard::has_nan(&x)
            || guard::has_nonfinite(b)
            || !a.is_finite()
            || guard::has_inf(&x),
        "solve_square: NaN born from a finite system without overflow"
    );
    Ok(x)
}

/// Solves `min_x ||A x - b||^2 + ridge * ||x||^2` via the normal equations
/// `(A^T A + ridge I) x = A^T b`, factored with Cholesky.
///
/// A small positive `ridge` keeps rank-deficient design matrices (constant
/// workload segments produce them constantly) solvable; pass `0.0` for pure
/// least squares on a well-conditioned design.
pub fn lstsq(a: &Matrix, b: &[f64], ridge: f64) -> Result<Vec<f64>> {
    if REFERENCE_LSTSQ.load(Ordering::Relaxed) {
        return lstsq_reference(a, b, ridge);
    }
    if a.rows() != b.len() {
        return Err(LinalgError::ShapeMismatch {
            context: format!("lstsq: {} rows vs rhs {}", a.rows(), b.len()),
        });
    }
    // Fused normal-equations build: `ata[i][j] += a[r][i] * a[r][j]` over
    // ascending rows, streaming each design row once with no transpose
    // materialization. Per output element this is the same single
    // ascending-`r` accumulator with the same zero-skip as
    // [`Matrix::matmul_naive`], so it is bitwise identical to the
    // reference build.
    let (rows, cols) = (a.rows(), a.cols());
    let mut ata = Matrix::zeros(cols, cols);
    for r in 0..rows {
        let arow = &a.as_slice()[r * cols..(r + 1) * cols];
        for (i, &v) in arow.iter().enumerate() {
            if v == 0.0 {
                continue;
            }
            let out = &mut ata.as_mut_slice()[i * cols..(i + 1) * cols];
            for (o, &w) in out.iter_mut().zip(arow) {
                *o += v * w;
            }
        }
    }
    let atb = a.matvec_t(b)?;
    solve_normal(ata, &atb, ridge)
}

/// The pre-change [`lstsq`] semantics: materialize `A^T`, build `A^T A`
/// with the naive streaming product, then solve. Retained as the bitwise
/// reference the fused build is pinned against (and timed against by
/// `ld-perfbench`).
pub fn lstsq_reference(a: &Matrix, b: &[f64], ridge: f64) -> Result<Vec<f64>> {
    if a.rows() != b.len() {
        return Err(LinalgError::ShapeMismatch {
            context: format!("lstsq: {} rows vs rhs {}", a.rows(), b.len()),
        });
    }
    let at = a.transpose();
    let ata = at.matmul_naive(a)?;
    let atb = a.matvec_t(b)?;
    solve_normal(ata, &atb, ridge)
}

/// Shared tail of the least-squares paths: ridge-damp the diagonal, factor
/// with Cholesky, and retry with proportional jitter on rank deficiency.
fn solve_normal(mut ata: Matrix, atb: &[f64], ridge: f64) -> Result<Vec<f64>> {
    for i in 0..ata.rows() {
        ata[(i, i)] += ridge;
    }
    match Cholesky::factor(&ata) {
        Ok(ch) => ch.solve(atb),
        // Rank-deficient: retry with jitter proportional to the diagonal.
        Err(LinalgError::NotPositiveDefinite { .. }) => {
            let scale = (0..ata.rows())
                .map(|i| ata[(i, i)].abs())
                .fold(0.0, f64::max)
                .max(1.0);
            let ch = Cholesky::factor_with_jitter(&ata, scale * 1e-10, 12)?;
            ch.solve(atb)
        }
        Err(e) => Err(e),
    }
}

/// Weighted ridge least squares: `min_x sum_i w_i (a_i . x - b_i)^2 + ridge||x||^2`.
///
/// The workhorse of Wood et al.'s iteratively-reweighted robust regression.
pub fn weighted_lstsq(a: &Matrix, b: &[f64], w: &[f64], ridge: f64) -> Result<Vec<f64>> {
    if a.rows() != b.len() || a.rows() != w.len() {
        return Err(LinalgError::ShapeMismatch {
            context: format!(
                "weighted_lstsq: {} rows vs rhs {} vs weights {}",
                a.rows(),
                b.len(),
                w.len()
            ),
        });
    }
    // Scale rows by sqrt(w) and reuse the plain solver.
    let mut aw = a.clone();
    let mut bw = b.to_vec();
    for i in 0..a.rows() {
        let s = w[i].max(0.0).sqrt();
        for v in aw.row_mut(i) {
            *v *= s;
        }
        bw[i] *= s;
    }
    lstsq(&aw, &bw, ridge)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn square_solve_recovers_solution() {
        let a = Matrix::from_rows(&[&[2.0, 1.0, -1.0], &[-3.0, -1.0, 2.0], &[-2.0, 1.0, 2.0]]);
        let x = solve_square(&a, &[8.0, -11.0, -3.0]).unwrap();
        let expect = [2.0, 3.0, -1.0];
        for (u, v) in x.iter().zip(&expect) {
            assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn square_solve_detects_singular() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(
            solve_square(&a, &[1.0, 2.0]),
            Err(LinalgError::Singular)
        ));
    }

    #[test]
    fn square_solve_needs_pivoting() {
        // Zero on the initial pivot position forces a row swap.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = solve_square(&a, &[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12 && (x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn square_solve_with_nan_is_singular_not_a_panic() {
        // Regression: pivot selection used partial_cmp and could panic (or
        // pick an arbitrary row) on NaN. Under total_cmp a NaN wins the
        // magnitude contest, fails the finite-pivot check, and the solve
        // reports Singular — same outcome wherever the NaN sits.
        for idx in 0..4 {
            let mut rows = [[1.0, 2.0], [3.0, 4.0]];
            rows[idx / 2][idx % 2] = f64::NAN;
            let a = Matrix::from_rows(&[&rows[0], &rows[1]]);
            assert!(
                matches!(solve_square(&a, &[1.0, 1.0]), Err(LinalgError::Singular)),
                "NaN at flat index {idx} must yield Singular"
            );
        }
    }

    #[test]
    fn lstsq_exact_on_consistent_system() {
        let mut rng = StdRng::seed_from_u64(9);
        let a = Matrix::random_uniform(30, 4, 1.0, &mut rng);
        let x_true = [1.0, -2.0, 0.5, 3.0];
        let b = a.matvec(&x_true).unwrap();
        let x = lstsq(&a, &b, 0.0).unwrap();
        for (u, v) in x.iter().zip(&x_true) {
            assert!((u - v).abs() < 1e-8);
        }
    }

    #[test]
    fn lstsq_fits_line_through_noisy_points() {
        // y = 2x + 1 exactly; design [x, 1].
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let a = Matrix::from_fn(5, 2, |r, c| if c == 0 { xs[r] } else { 1.0 });
        let b: Vec<f64> = xs.iter().map(|x| 2.0 * x + 1.0).collect();
        let coef = lstsq(&a, &b, 0.0).unwrap();
        assert!((coef[0] - 2.0).abs() < 1e-10);
        assert!((coef[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn lstsq_survives_rank_deficiency() {
        // Duplicate columns: infinitely many solutions; ridge pins one down.
        let a = Matrix::from_fn(6, 2, |r, _| r as f64);
        let b: Vec<f64> = (0..6).map(|r| 3.0 * r as f64).collect();
        let x = lstsq(&a, &b, 1e-8).unwrap();
        // Prediction must still be right even if coefficients split arbitrarily.
        let pred = a.matvec(&x).unwrap();
        for (p, t) in pred.iter().zip(&b) {
            assert!((p - t).abs() < 1e-4);
        }
    }

    #[test]
    fn fused_lstsq_matches_reference_bitwise() {
        // The fused A^T A accumulation replays the reference build's exact
        // per-element operation order, so the two solution vectors must be
        // bit-identical — including on designs with zero entries (the
        // naive kernel's zero-skip) and rank-deficient columns (the jitter
        // retry path).
        let mut rng = StdRng::seed_from_u64(21);
        for &(rows, cols) in &[(5usize, 2usize), (30, 4), (64, 9), (120, 12)] {
            let mut a = Matrix::random_uniform(rows, cols, 1.0, &mut rng);
            a[(0, 0)] = 0.0;
            a[(rows / 2, cols - 1)] = 0.0;
            let b: Vec<f64> = (0..rows).map(|r| (r as f64 * 0.37).sin()).collect();
            for &ridge in &[0.0, 1e-6] {
                let fast = lstsq(&a, &b, ridge).unwrap();
                let reference = lstsq_reference(&a, &b, ridge).unwrap();
                assert_eq!(fast.len(), reference.len());
                for (f, r) in fast.iter().zip(&reference) {
                    assert_eq!(f.to_bits(), r.to_bits(), "{rows}x{cols} ridge {ridge}");
                }
                // The process-wide knob routes the public entry point to
                // the reference body.
                set_reference_lstsq(true);
                let via_knob = lstsq(&a, &b, ridge).unwrap();
                set_reference_lstsq(false);
                for (f, r) in via_knob.iter().zip(&reference) {
                    assert_eq!(f.to_bits(), r.to_bits());
                }
            }
        }
    }

    #[test]
    fn weighted_lstsq_ignores_zero_weight_outlier() {
        // Points on y = x except one wild outlier that gets weight 0.
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let mut ys: Vec<f64> = xs.to_vec();
        ys[2] = 100.0;
        let a = Matrix::from_fn(5, 2, |r, c| if c == 0 { xs[r] } else { 1.0 });
        let w = [1.0, 1.0, 0.0, 1.0, 1.0];
        let coef = weighted_lstsq(&a, &ys, &w, 0.0).unwrap();
        assert!((coef[0] - 1.0).abs() < 1e-9);
        assert!(coef[1].abs() < 1e-9);
    }
}
