//! Cholesky factorization and triangular solves.
//!
//! Gaussian-process regression (the Bayesian-optimization surrogate of the
//! paper, Section III-A) reduces to factorizing the kernel Gram matrix
//! `K + sigma^2 I = L L^T` and back-substituting. This module provides that
//! factorization plus the solves and log-determinant the GP needs.

use crate::{guard, LinalgError, Matrix, Result};

/// Lower-triangular Cholesky factor `L` with `A = L * L^T`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factorizes a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read. Fails with
    /// [`LinalgError::NotPositiveDefinite`] if a pivot is not strictly
    /// positive (numerically), which the GP layer uses to trigger jitter.
    pub fn factor(a: &Matrix) -> Result<Self> {
        let n = a.rows();
        if a.cols() != n {
            return Err(LinalgError::ShapeMismatch {
                context: format!("cholesky: {}x{} not square", a.rows(), a.cols()),
            });
        }
        let mut l = Matrix::zeros(n, n);
        for j in 0..n {
            let mut diag = a[(j, j)];
            for k in 0..j {
                diag -= l[(j, k)] * l[(j, k)];
            }
            if diag <= 0.0 || !diag.is_finite() {
                return Err(LinalgError::NotPositiveDefinite { pivot: j });
            }
            let ljj = diag.sqrt();
            l[(j, j)] = ljj;
            for i in (j + 1)..n {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = s / ljj;
            }
        }
        // Sanitizer: a successful factorization implies a finite factor. Any
        // non-finite entry written to column j would poison the column-i
        // diagonal for some i > j and surface as NotPositiveDefinite above,
        // so a NaN/inf reaching this point is a bug in the loop itself.
        debug_assert!(
            l.as_slice().iter().all(|v| v.is_finite()),
            "cholesky: factorization succeeded with a non-finite factor"
        );
        Ok(Cholesky { l })
    }

    /// Factorizes `a + jitter * I`, growing the jitter geometrically until
    /// the factorization succeeds or `max_tries` is exhausted.
    ///
    /// This is the standard GP numerical-stability loop: Gram matrices of
    /// near-duplicate points are PSD but not PD in floating point.
    pub fn factor_with_jitter(a: &Matrix, initial_jitter: f64, max_tries: usize) -> Result<Self> {
        match Self::factor(a) {
            Ok(c) => return Ok(c),
            Err(LinalgError::NotPositiveDefinite { .. }) => {}
            Err(e) => return Err(e),
        }
        let n = a.rows();
        let mut jitter = initial_jitter;
        for _ in 0..max_tries {
            let mut aj = a.clone();
            for i in 0..n {
                aj[(i, i)] += jitter;
            }
            match Self::factor(&aj) {
                Ok(c) => return Ok(c),
                Err(LinalgError::NotPositiveDefinite { .. }) => jitter *= 10.0,
                Err(e) => return Err(e),
            }
        }
        Err(LinalgError::NotPositiveDefinite { pivot: 0 })
    }

    /// The lower-triangular factor `L`.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Solves `L y = b` (forward substitution).
    pub fn solve_lower(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                context: format!("solve_lower: rhs {} vs dim {n}", b.len()),
            });
        }
        let mut y = b.to_vec();
        for i in 0..n {
            let mut s = y[i];
            for (k, yk) in y.iter().enumerate().take(i) {
                s -= self.l[(i, k)] * yk;
            }
            y[i] = s / self.l[(i, i)];
        }
        // Sanitizer: with a finite factor (guaranteed by `factor`), a NaN in
        // the solution can only descend from a NaN/inf in the rhs or from an
        // intermediate overflow, which leaves a visible ±inf entry behind.
        debug_assert!(
            !guard::has_nan(&y) || guard::has_nonfinite(b) || guard::has_inf(&y),
            "solve_lower: NaN born from a finite rhs without overflow"
        );
        Ok(y)
    }

    /// Solves `L^T x = b` (backward substitution).
    pub fn solve_upper(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                context: format!("solve_upper: rhs {} vs dim {n}", b.len()),
            });
        }
        let mut x = b.to_vec();
        for i in (0..n).rev() {
            let mut s = x[i];
            for (k, xk) in x.iter().enumerate().take(n).skip(i + 1) {
                s -= self.l[(k, i)] * xk;
            }
            x[i] = s / self.l[(i, i)];
        }
        // Same birth-not-presence invariant as `solve_lower`.
        debug_assert!(
            !guard::has_nan(&x) || guard::has_nonfinite(b) || guard::has_inf(&x),
            "solve_upper: NaN born from a finite rhs without overflow"
        );
        Ok(x)
    }

    /// Solves the full system `A x = b` via the two triangular solves.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let y = self.solve_lower(b)?;
        self.solve_upper(&y)
    }

    /// `log det A = 2 * sum_i log L_ii`, needed by the GP log marginal
    /// likelihood.
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_spd(n: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let b = Matrix::random_uniform(n, n, 1.0, &mut rng);
        // B * B^T + n * I is comfortably positive definite.
        let mut a = b.matmul(&b.transpose()).unwrap();
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        a
    }

    #[test]
    fn factor_reconstructs_matrix() {
        let a = random_spd(12, 42);
        let ch = Cholesky::factor(&a).unwrap();
        let recon = ch.l().matmul(&ch.l().transpose()).unwrap();
        assert!(recon.max_abs_diff(&a) < 1e-9);
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = random_spd(10, 1);
        let x_true: Vec<f64> = (0..10).map(|i| (i as f64) * 0.3 - 1.0).collect();
        let b = a.matvec(&x_true).unwrap();
        let ch = Cholesky::factor(&a).unwrap();
        let x = ch.solve(&b).unwrap();
        for (u, v) in x.iter().zip(&x_true) {
            assert!((u - v).abs() < 1e-8, "{u} vs {v}");
        }
    }

    #[test]
    fn triangular_solves_compose() {
        let a = random_spd(8, 5);
        let ch = Cholesky::factor(&a).unwrap();
        let b: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let y = ch.solve_lower(&b).unwrap();
        // L y should reproduce b.
        let ly = ch.l().matvec(&y).unwrap();
        for (u, v) in ly.iter().zip(&b) {
            assert!((u - v).abs() < 1e-10);
        }
        let x = ch.solve_upper(&y).unwrap();
        let ax = a.matvec(&x).unwrap();
        for (u, v) in ax.iter().zip(&b) {
            assert!((u - v).abs() < 1e-8);
        }
    }

    #[test]
    fn log_det_matches_known_diagonal() {
        let a = Matrix::from_rows(&[&[4.0, 0.0], &[0.0, 9.0]]);
        let ch = Cholesky::factor(&a).unwrap();
        assert!((ch.log_det() - (36.0_f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn indefinite_matrix_rejected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(matches!(
            Cholesky::factor(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn jitter_rescues_semidefinite_matrix() {
        // Rank-1 PSD matrix: ones * ones^T.
        let a = Matrix::filled(4, 4, 1.0);
        assert!(Cholesky::factor(&a).is_err());
        let ch = Cholesky::factor_with_jitter(&a, 1e-10, 12).unwrap();
        assert_eq!(ch.dim(), 4);
    }

    #[test]
    fn non_square_rejected() {
        let a = Matrix::zeros(3, 4);
        assert!(matches!(
            Cholesky::factor(&a),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }
}
