//! Dense linear algebra substrate for the LoadDynamics reproduction.
//!
//! The paper's stack (TensorFlow, GPyOpt, scikit-learn) sits on top of dense
//! `f64` linear algebra. This crate provides exactly the pieces the upper
//! layers need, implemented from scratch:
//!
//! - [`Matrix`]: a row-major dense matrix with the usual arithmetic, a
//!   packed-panel register-tiled matrix product for large operands
//!   ([`pack`]/[`microkernel`]), and serde support so trained models can be
//!   snapshotted.
//! - [`cholesky`]: Cholesky factorization and triangular solves, the
//!   numerical core of Gaussian-process regression.
//! - [`vecops`]: small dense-vector kernels (dot, axpy, norms) shared by the
//!   neural-network and statistics code.
//! - [`solve`]: general least-squares / linear-system solving via normal
//!   equations with ridge damping, used by the regression baselines.
//!
//! All routines are deterministic; anything randomized takes an explicit RNG.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod cholesky;
mod guard;
pub mod matrix;
pub mod microkernel;
pub mod pack;
pub mod solve;
pub mod vecops;

pub use cholesky::Cholesky;
pub use matrix::Matrix;

/// Error type for linear-algebra failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Operand shapes are incompatible for the requested operation.
    ShapeMismatch {
        /// Human-readable description of the operation and shapes involved.
        context: String,
    },
    /// The matrix is not (numerically) positive definite.
    NotPositiveDefinite {
        /// Index of the pivot that failed.
        pivot: usize,
    },
    /// The system is singular or too ill-conditioned to solve.
    Singular,
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::ShapeMismatch { context } => {
                write!(f, "shape mismatch: {context}")
            }
            LinalgError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix not positive definite (pivot {pivot})")
            }
            LinalgError::Singular => write!(f, "singular system"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, LinalgError>;
