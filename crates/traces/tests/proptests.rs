//! Randomized property tests for the trace generators: structural
//! invariants that must hold for any seed. Seeded-loop style: each
//! property runs over a fixed number of randomly drawn seeds so failures
//! reproduce exactly.

use ld_api::Series;
use ld_traces::generators::{azure, facebook, google, lcg, wikipedia};
use ld_traces::{all_configurations, WorkloadKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn check_valid_jar_series(s: &Series) {
    assert!(!s.is_empty());
    assert!(
        s.values
            .iter()
            .all(|v| v.is_finite() && *v >= 0.0 && v.fract() == 0.0),
        "JARs must be non-negative integers"
    );
}

/// Every family produces valid counts for any seed and is
/// seed-deterministic.
#[test]
fn generators_valid_and_deterministic() {
    let mut rng = StdRng::seed_from_u64(0x66F1);
    for _ in 0..6 {
        let seed = rng.gen_range(0..10_000u64);
        for kind in WorkloadKind::ALL {
            let a = kind.generate_base(seed);
            let b = kind.generate_base(seed);
            check_valid_jar_series(&a);
            assert_eq!(a.values, b.values, "{kind:?} not deterministic");
        }
    }
}

/// Different seeds produce different traces (the generators are actually
/// stochastic, not constant).
#[test]
fn different_seeds_differ() {
    let mut rng = StdRng::seed_from_u64(0x66F2);
    for _ in 0..6 {
        let seed = rng.gen_range(0..10_000u64);
        for kind in WorkloadKind::ALL {
            let a = kind.generate_base(seed);
            let b = kind.generate_base(seed + 1);
            assert_ne!(a.values, b.values);
        }
    }
}

/// Magnitude ordering across families is stable for any seed:
/// Wikipedia >> Google >> (LCG, Facebook, Azure).
#[test]
fn family_magnitudes_ordered() {
    let mut rng = StdRng::seed_from_u64(0x66F3);
    for _ in 0..6 {
        let seed = rng.gen_range(0..1_000u64);
        let wiki = wikipedia::generate(seed).mean();
        let google = google::generate(seed).mean();
        let lcg_m = lcg::generate(seed).mean();
        let fb = facebook::generate(seed).mean();
        let az = azure::generate(seed).mean();
        assert!(wiki > google * 2.0, "wiki {wiki} vs google {google}");
        assert!(google > lcg_m * 100.0, "google {google} vs lcg {lcg_m}");
        assert!(lcg_m > az, "lcg {lcg_m} vs azure {az}");
        assert!(fb < 30.0 && az < 30.0, "fb {fb} az {az}");
    }
}

/// All configurations build successfully for any seed, at the right
/// interval and a nontrivial length.
#[test]
fn all_configurations_build() {
    let mut rng = StdRng::seed_from_u64(0x66F4);
    for _ in 0..4 {
        let seed = rng.gen_range(0..500u64);
        for config in all_configurations() {
            let s = config.build(seed);
            assert_eq!(s.interval_mins, config.interval_mins);
            assert!(s.len() >= 100, "{} too short: {}", config.label(), s.len());
            check_valid_jar_series(&s);
        }
    }
}

/// Wikipedia keeps strong daily seasonality for any seed; Google never
/// develops one. This is the structural contrast Fig. 1 is about.
#[test]
fn seasonality_contrast_is_robust() {
    let mut rng = StdRng::seed_from_u64(0x66F5);
    for _ in 0..6 {
        let seed = rng.gen_range(0..200u64);
        let day = ld_traces::generators::INTERVALS_PER_DAY;
        let wiki = wikipedia::generate(seed);
        let google = google::generate(seed);
        assert!(
            wiki.autocorrelation(day) > 0.6,
            "wiki daily AC {}",
            wiki.autocorrelation(day)
        );
        assert!(
            google.autocorrelation(day).abs() < 0.5,
            "google daily AC {}",
            google.autocorrelation(day)
        );
    }
}
