//! Property-based tests for the trace generators: structural invariants
//! that must hold for any seed and any parameterization in sane ranges.

use ld_api::Series;
use ld_traces::generators::{azure, facebook, google, lcg, wikipedia};
use ld_traces::{all_configurations, WorkloadKind};
use proptest::prelude::*;

fn check_valid_jar_series(s: &Series) {
    assert!(!s.is_empty());
    assert!(
        s.values.iter().all(|v| v.is_finite() && *v >= 0.0 && v.fract() == 0.0),
        "JARs must be non-negative integers"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every family produces valid counts for any seed and is
    /// seed-deterministic.
    #[test]
    fn generators_valid_and_deterministic(seed in 0u64..10_000) {
        for kind in WorkloadKind::ALL {
            let a = kind.generate_base(seed);
            let b = kind.generate_base(seed);
            check_valid_jar_series(&a);
            prop_assert_eq!(&a.values, &b.values, "{:?} not deterministic", kind);
        }
    }

    /// Different seeds produce different traces (the generators are
    /// actually stochastic, not constant).
    #[test]
    fn different_seeds_differ(seed in 0u64..10_000) {
        for kind in WorkloadKind::ALL {
            let a = kind.generate_base(seed);
            let b = kind.generate_base(seed + 1);
            prop_assert_ne!(&a.values, &b.values);
        }
    }

    /// Magnitude ordering across families is stable for any seed:
    /// Wikipedia >> Google >> (LCG, Facebook, Azure).
    #[test]
    fn family_magnitudes_ordered(seed in 0u64..1_000) {
        let wiki = wikipedia::generate(seed).mean();
        let google = google::generate(seed).mean();
        let lcg_m = lcg::generate(seed).mean();
        let fb = facebook::generate(seed).mean();
        let az = azure::generate(seed).mean();
        prop_assert!(wiki > google * 2.0, "wiki {wiki} vs google {google}");
        prop_assert!(google > lcg_m * 100.0, "google {google} vs lcg {lcg_m}");
        prop_assert!(lcg_m > az, "lcg {lcg_m} vs azure {az}");
        prop_assert!(fb < 30.0 && az < 30.0, "fb {fb} az {az}");
    }

    /// All 14 configurations build successfully for any seed, at the right
    /// interval and a nontrivial length.
    #[test]
    fn all_configurations_build(seed in 0u64..500) {
        for config in all_configurations() {
            let s = config.build(seed);
            prop_assert_eq!(s.interval_mins, config.interval_mins);
            prop_assert!(s.len() >= 100, "{} too short: {}", config.label(), s.len());
            check_valid_jar_series(&s);
        }
    }

    /// Wikipedia keeps strong daily seasonality for any seed; Google never
    /// develops one. This is the structural contrast Fig. 1 is about.
    #[test]
    fn seasonality_contrast_is_robust(seed in 0u64..200) {
        let day = ld_traces::generators::INTERVALS_PER_DAY;
        let wiki = wikipedia::generate(seed);
        let google = google::generate(seed);
        prop_assert!(wiki.autocorrelation(day) > 0.6, "wiki daily AC {}", wiki.autocorrelation(day));
        prop_assert!(google.autocorrelation(day).abs() < 0.5, "google daily AC {}", google.autocorrelation(day));
    }
}
