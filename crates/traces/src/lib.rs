//! Synthetic workload traces calibrated to the five traces of the paper's
//! Table I.
//!
//! The paper evaluates on real traces (Google cluster 2011, Facebook Hadoop,
//! Wikipedia/Wikibench, Azure public dataset, LCG from the Grid Workloads
//! Archive) that cannot be redistributed here. Each generator in
//! [`generators`] reproduces the *published shape* of its trace — the
//! pattern family (seasonal / bursty / regime-shifting / spiky), the
//! magnitude of per-interval JARs, and the trace duration — because those
//! are what the paper's claims quantify over. Arrivals are drawn from a
//! Poisson process around a per-family intensity function, so the
//! irreducible prediction error scales like `1/sqrt(JAR)` exactly as the
//! paper observes ("smaller JARs are more susceptible to the random
//! burstiness").
//!
//! [`config`] enumerates the paper's 14 workload configurations
//! (trace x interval length) and materializes any of them as a
//! [`ld_api::Series`].

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod config;
pub mod generators;
pub mod rng;
pub mod stats;

pub use config::{all_configurations, TraceConfig, WorkloadKind};
pub use stats::{PatternClass, TraceProfile};
