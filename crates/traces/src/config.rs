//! The 14 workload configurations of Table I.
//!
//! A *workload configuration* is a trace plus an interval length
//! (Section IV-A). Wikipedia, LCG and Google use 5/10/30 minutes; Azure
//! uses 10/30/60 (its 5-minute JARs are too small); Facebook covers a
//! single day and uses only 5/10.

use ld_api::Series;

use crate::generators;

/// The five trace families of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// Wikipedia web requests (Wikibench).
    Wikipedia,
    /// LCG grid jobs (Grid Workloads Archive).
    Lcg,
    /// Microsoft Azure VM requests.
    Azure,
    /// Google cluster jobs.
    Google,
    /// Facebook Hadoop jobs.
    Facebook,
}

impl WorkloadKind {
    /// All five families, in Table I order.
    pub const ALL: [WorkloadKind; 5] = [
        WorkloadKind::Wikipedia,
        WorkloadKind::Lcg,
        WorkloadKind::Azure,
        WorkloadKind::Google,
        WorkloadKind::Facebook,
    ];

    /// Short trace name as used in the paper's figures.
    pub fn short_name(&self) -> &'static str {
        match self {
            WorkloadKind::Wikipedia => "wiki",
            WorkloadKind::Lcg => "LCG",
            WorkloadKind::Azure => "AZ",
            WorkloadKind::Google => "GL",
            WorkloadKind::Facebook => "FB",
        }
    }

    /// Workload category from Table I.
    pub fn category(&self) -> &'static str {
        match self {
            WorkloadKind::Wikipedia => "Web",
            WorkloadKind::Lcg => "HPC",
            WorkloadKind::Azure => "Public Cloud",
            WorkloadKind::Google => "Data Center",
            WorkloadKind::Facebook => "Data Center",
        }
    }

    /// The interval lengths (minutes) this trace is evaluated at (Table I).
    pub fn intervals(&self) -> &'static [u32] {
        match self {
            WorkloadKind::Wikipedia => &[5, 10, 30],
            WorkloadKind::Lcg => &[5, 10, 30],
            WorkloadKind::Azure => &[10, 30, 60],
            WorkloadKind::Google => &[5, 10, 30],
            WorkloadKind::Facebook => &[5, 10],
        }
    }

    /// Generates the base 5-minute series for this family.
    pub fn generate_base(&self, seed: u64) -> Series {
        match self {
            WorkloadKind::Wikipedia => generators::wikipedia::generate(seed),
            WorkloadKind::Lcg => generators::lcg::generate(seed),
            WorkloadKind::Azure => generators::azure::generate(seed),
            WorkloadKind::Google => generators::google::generate(seed),
            WorkloadKind::Facebook => generators::facebook::generate(seed),
        }
    }
}

/// One of the paper's 14 workload configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceConfig {
    /// Trace family.
    pub kind: WorkloadKind,
    /// Interval length in minutes.
    pub interval_mins: u32,
}

impl TraceConfig {
    /// Builds the configuration's series by generating the base trace and
    /// aggregating to the configured interval.
    ///
    /// When the [`ld_faultinject`] `trace` site is active, values are
    /// deterministically corrupted (NaN / negatives keyed off the seed) and
    /// then repaired through [`Series::sanitized`] — the harness's way of
    /// exercising the ingestion repair path on otherwise-valid traces.
    pub fn build(&self, seed: u64) -> Series {
        self.build_reported(seed).0
    }

    /// [`TraceConfig::build`] that also returns what (if anything) the
    /// sanitizer repaired after fault injection.
    pub fn build_reported(&self, seed: u64) -> (Series, ld_api::SanitizeReport) {
        let base = self.kind.generate_base(seed);
        assert_eq!(
            self.interval_mins % base.interval_mins,
            0,
            "interval {} not a multiple of base {}",
            self.interval_mins,
            base.interval_mins
        );
        let factor = (self.interval_mins / base.interval_mins) as usize;
        let mut s = base.aggregate(factor);
        s.name = self.label();
        if ld_faultinject::is_active() {
            let corrupted: Vec<f64> = s
                .values
                .iter()
                .enumerate()
                .map(|(i, &v)| {
                    ld_faultinject::corrupt_value(
                        ld_faultinject::FaultSite::TraceCorrupt,
                        seed.rotate_left(17) ^ i as u64,
                        v,
                    )
                })
                .collect();
            let (repaired, report) = Series::sanitized(s.name.clone(), s.interval_mins, corrupted)
                .expect("interval validated above");
            return (repaired, report);
        }
        (s, ld_api::SanitizeReport::default())
    }

    /// Figure-style label, e.g. `"GL-30min"`.
    pub fn label(&self) -> String {
        format!("{}-{}min", self.kind.short_name(), self.interval_mins)
    }
}

impl std::fmt::Display for TraceConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// All 14 workload configurations in Table I order.
pub fn all_configurations() -> Vec<TraceConfig> {
    let mut out = Vec::with_capacity(14);
    for kind in WorkloadKind::ALL {
        for &interval_mins in kind.intervals() {
            out.push(TraceConfig {
                kind,
                interval_mins,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_fourteen_configurations() {
        let configs = all_configurations();
        assert_eq!(configs.len(), 14);
        // 3 + 3 + 3 + 3 + 2 per Table I.
        let count = |k: WorkloadKind| configs.iter().filter(|c| c.kind == k).count();
        assert_eq!(count(WorkloadKind::Wikipedia), 3);
        assert_eq!(count(WorkloadKind::Lcg), 3);
        assert_eq!(count(WorkloadKind::Azure), 3);
        assert_eq!(count(WorkloadKind::Google), 3);
        assert_eq!(count(WorkloadKind::Facebook), 2);
    }

    #[test]
    fn azure_skips_five_minutes() {
        assert!(!WorkloadKind::Azure.intervals().contains(&5));
        assert!(WorkloadKind::Azure.intervals().contains(&60));
    }

    #[test]
    fn build_aggregates_to_requested_interval() {
        let c = TraceConfig {
            kind: WorkloadKind::Facebook,
            interval_mins: 10,
        };
        let s = c.build(0);
        assert_eq!(s.interval_mins, 10);
        assert_eq!(s.len(), 144);
        assert_eq!(s.name, "FB-10min");
    }

    #[test]
    fn build_is_deterministic() {
        let c = TraceConfig {
            kind: WorkloadKind::Lcg,
            interval_mins: 30,
        };
        assert_eq!(c.build(5).values, c.build(5).values);
    }

    #[test]
    fn aggregation_conserves_total_jobs() {
        let base = WorkloadKind::Google.generate_base(1);
        let agg = base.aggregate(6);
        let total_base: f64 = base.values[..agg.len() * 6].iter().sum();
        let total_agg: f64 = agg.values.iter().sum();
        assert!((total_base - total_agg).abs() < 1e-6);
    }

    #[test]
    fn labels_match_paper_convention() {
        let configs = all_configurations();
        assert!(configs.iter().any(|c| c.label() == "wiki-5min"));
        assert!(configs.iter().any(|c| c.label() == "AZ-60min"));
        assert!(configs.iter().any(|c| c.label() == "GL-30min"));
    }
}
