//! Distribution samplers for the trace generators.
//!
//! Only `rand`'s uniform source is taken as a dependency; Poisson,
//! Gaussian and log-normal variates are derived here so the generators stay
//! self-contained and deterministic across `rand` minor versions.

use ld_api::FrameworkError;
use rand::Rng;

/// Standard normal variate via the Box–Muller transform.
pub fn normal(rng: &mut impl Rng) -> f64 {
    // Guard u1 away from 0 to keep ln finite.
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Normal variate with the given mean and standard deviation.
pub fn normal_with(rng: &mut impl Rng, mean: f64, std: f64) -> f64 {
    mean + std * normal(rng)
}

/// Log-normal variate with the given parameters of the underlying normal.
pub fn lognormal(rng: &mut impl Rng, mu: f64, sigma: f64) -> f64 {
    (mu + sigma * normal(rng)).exp()
}

/// Poisson variate with intensity `lambda >= 0`.
///
/// Uses Knuth's product method below `lambda = 30` and a
/// continuity-corrected normal approximation above (error is irrelevant at
/// those counts; the approximation keeps large-intensity traces cheap).
///
/// # Panics
/// Panics on negative or non-finite `lambda` — the generators compute
/// intensities from bounded closed forms. Use [`try_poisson`] when the
/// intensity comes from untrusted arithmetic.
pub fn poisson(rng: &mut impl Rng, lambda: f64) -> u64 {
    try_poisson(rng, lambda).unwrap_or_else(|_| panic!("bad lambda {lambda}"))
}

/// [`poisson`] with validation instead of a panic: a negative or
/// non-finite intensity is reported as [`FrameworkError::InvalidInput`],
/// so a corrupted intensity process degrades one sample instead of killing
/// the whole trace build.
pub fn try_poisson(rng: &mut impl Rng, lambda: f64) -> Result<u64, FrameworkError> {
    if !(lambda >= 0.0 && lambda.is_finite()) {
        return Err(FrameworkError::invalid_input(format!(
            "poisson intensity must be finite and non-negative, got {lambda}"
        )));
    }
    Ok(poisson_unchecked(rng, lambda))
}

fn poisson_unchecked(rng: &mut impl Rng, lambda: f64) -> u64 {
    if lambda == 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.gen::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
            // Defensive bound: P(k > lambda + 30 sqrt(lambda) + 100) ~ 0.
            if k > (lambda.max(0.0) as u64) + 200 {
                return k;
            }
        }
    }
    let v = normal_with(rng, lambda, lambda.sqrt()) + 0.5;
    if v.is_finite() && v > 0.0 {
        v.min(u64::MAX as f64) as u64
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let xs: Vec<f64> = (0..20000).map(|_| normal(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn poisson_small_lambda_moments() {
        let mut rng = StdRng::seed_from_u64(2);
        let lambda = 4.0;
        let xs: Vec<f64> = (0..20000).map(|_| poisson(&mut rng, lambda) as f64).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!((mean - lambda).abs() < 0.1, "mean {mean}");
        assert!((var - lambda).abs() < 0.3, "var {var}");
    }

    #[test]
    fn poisson_large_lambda_uses_sane_approximation() {
        let mut rng = StdRng::seed_from_u64(3);
        let lambda = 10_000.0;
        let xs: Vec<f64> = (0..5000).map(|_| poisson(&mut rng, lambda) as f64).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - lambda).abs() < 10.0, "mean {mean}");
        // Relative spread ~ 1/sqrt(lambda) = 1%.
        assert!(xs.iter().all(|&x| x > lambda * 0.9 && x < lambda * 1.1));
    }

    #[test]
    fn poisson_zero_lambda_is_zero() {
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(poisson(&mut rng, 0.0), 0);
    }

    #[test]
    fn try_poisson_rejects_bad_lambda_without_panicking() {
        let mut rng = StdRng::seed_from_u64(6);
        assert!(try_poisson(&mut rng, f64::NAN).is_err());
        assert!(try_poisson(&mut rng, -1.0).is_err());
        assert!(try_poisson(&mut rng, f64::INFINITY).is_err());
        assert!(try_poisson(&mut rng, 5.0).is_ok());
    }

    #[test]
    fn try_poisson_matches_poisson_on_valid_lambda() {
        let a: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(7);
            (0..100).map(|_| poisson(&mut rng, 12.0)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(7);
            (0..100).map(|_| try_poisson(&mut rng, 12.0).unwrap()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "bad lambda")]
    fn poisson_still_panics_on_bad_lambda() {
        let mut rng = StdRng::seed_from_u64(8);
        poisson(&mut rng, -2.0);
    }

    #[test]
    fn lognormal_is_positive_with_right_median() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut xs: Vec<f64> = (0..10001).map(|_| lognormal(&mut rng, 2.0, 0.5)).collect();
        assert!(xs.iter().all(|&x| x > 0.0));
        xs.sort_by(f64::total_cmp);
        let median = xs[xs.len() / 2];
        assert!((median - 2.0f64.exp()).abs() < 0.5, "median {median}");
    }
}
