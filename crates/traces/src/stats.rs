//! Workload characterization: the quantitative version of the paper's
//! Section I taxonomy ("cyclic, bursty or increasing" patterns).
//!
//! [`TraceProfile`] summarizes a series with the indicators the paper's
//! discussion leans on — burstiness (how far counts deviate from a Poisson
//! process), seasonality (dominant cycle from the autocorrelation
//! function), and trend — and [`TraceProfile::pattern`] maps them to the
//! coarse pattern classes of Fig. 1.

use ld_api::Series;

/// Coarse workload-pattern classes from the paper's introduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatternClass {
    /// Strong periodic structure (Wikipedia).
    Seasonal,
    /// Dominated by bursts / heavy fluctuation (Facebook, LCG).
    Bursty,
    /// Sustained monotone growth or decline.
    Trending,
    /// None of the above dominates (Google's noisy plateau).
    Irregular,
}

/// Summary statistics of one workload series.
#[derive(Debug, Clone)]
pub struct TraceProfile {
    /// Mean JAR.
    pub mean: f64,
    /// Coefficient of variation.
    pub cv: f64,
    /// Index of dispersion (variance / mean); 1 for a Poisson process,
    /// larger = burstier than random arrivals.
    pub fano_factor: f64,
    /// Peak-to-mean ratio.
    pub peak_to_mean: f64,
    /// Lag of the strongest autocorrelation peak (if any) and its value.
    pub dominant_cycle: Option<(usize, f64)>,
    /// Relative linear trend over the series: (end-fit − start-fit) / mean.
    pub relative_trend: f64,
}

impl TraceProfile {
    /// Profiles a series. `max_lag` bounds the seasonality scan (pass at
    /// least one expected cycle length, e.g. a day of intervals).
    pub fn of(series: &Series, max_lag: usize) -> TraceProfile {
        let n = series.len();
        assert!(n >= 8, "series too short to profile");
        let mean = series.mean();
        let cv = series.coeff_of_variation();
        let var = (cv * mean).powi(2);
        let fano_factor = if mean > 0.0 { var / mean } else { 0.0 };
        let peak_to_mean = if mean > 0.0 { series.max() / mean } else { 0.0 };

        // Seasonality: strongest autocorrelation at lag >= 3, scanning to
        // max_lag, requiring a local peak (ac(l) > ac(l-1) and ac(l+1)).
        let limit = max_lag.min(n / 2);
        let mut dominant_cycle: Option<(usize, f64)> = None;
        if limit >= 5 {
            let acs: Vec<f64> = (0..=limit).map(|l| series.autocorrelation(l)).collect();
            for lag in 3..limit {
                let ac = acs[lag];
                if ac > acs[lag - 1]
                    && ac >= acs[lag + 1]
                    && dominant_cycle.is_none_or(|(_, best)| ac > best)
                {
                    dominant_cycle = Some((lag, ac));
                }
            }
        }

        // Trend: least-squares slope over normalized time, relative to the
        // mean level.
        let tm = (n - 1) as f64 / 2.0;
        let mut num = 0.0;
        let mut den = 0.0;
        for (i, &v) in series.values.iter().enumerate() {
            let dt = i as f64 - tm;
            num += dt * (v - mean);
            den += dt * dt;
        }
        let slope = if den > 0.0 { num / den } else { 0.0 };
        let relative_trend = if mean > 0.0 {
            slope * (n - 1) as f64 / mean
        } else {
            0.0
        };

        TraceProfile {
            mean,
            cv,
            fano_factor,
            peak_to_mean,
            dominant_cycle,
            relative_trend,
        }
    }

    /// Maps the profile to a coarse pattern class.
    pub fn pattern(&self) -> PatternClass {
        if let Some((_, ac)) = self.dominant_cycle {
            if ac > 0.5 {
                return PatternClass::Seasonal;
            }
        }
        if self.relative_trend.abs() > 0.5 {
            return PatternClass::Trending;
        }
        if self.cv > 0.5 || self.peak_to_mean > 3.0 {
            return PatternClass::Bursty;
        }
        PatternClass::Irregular
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::INTERVALS_PER_DAY;
    use crate::WorkloadKind;

    #[test]
    fn wikipedia_classified_seasonal() {
        let s = WorkloadKind::Wikipedia.generate_base(0).aggregate(6);
        let profile = TraceProfile::of(&s, INTERVALS_PER_DAY / 6 * 2);
        assert_eq!(profile.pattern(), PatternClass::Seasonal);
        let (lag, ac) = profile.dominant_cycle.expect("cycle expected");
        // Daily cycle at 30-minute intervals = 48.
        assert!((40..=56).contains(&lag), "cycle lag {lag}");
        assert!(ac > 0.7);
    }

    #[test]
    fn facebook_classified_bursty() {
        let s = WorkloadKind::Facebook.generate_base(0);
        let profile = TraceProfile::of(&s, 64);
        assert_eq!(profile.pattern(), PatternClass::Bursty);
        // Arrival counts are far over-dispersed vs Poisson.
        assert!(profile.fano_factor > 2.0, "fano {}", profile.fano_factor);
    }

    #[test]
    fn google_not_seasonal() {
        let s = WorkloadKind::Google.generate_base(0).aggregate(6);
        let profile = TraceProfile::of(&s, INTERVALS_PER_DAY / 6 * 2);
        // Whatever the class, it must not be Seasonal — that is the entire
        // Fig. 1 contrast with Wikipedia.
        assert_ne!(profile.pattern(), PatternClass::Seasonal);
    }

    #[test]
    fn synthetic_ramp_classified_trending() {
        let s = ld_api::Series::new("ramp", 30, (0..200).map(|i| 10.0 + i as f64).collect());
        let profile = TraceProfile::of(&s, 50);
        assert_eq!(profile.pattern(), PatternClass::Trending);
        assert!(profile.relative_trend > 1.0);
    }

    #[test]
    fn constant_series_is_irregular_with_zero_indices() {
        let s = ld_api::Series::new("flat", 30, vec![50.0; 100]);
        let profile = TraceProfile::of(&s, 30);
        assert_eq!(profile.pattern(), PatternClass::Irregular);
        assert_eq!(profile.cv, 0.0);
        assert!(profile.relative_trend.abs() < 1e-9);
        assert!((profile.peak_to_mean - 1.0).abs() < 1e-9);
    }

    #[test]
    fn poisson_like_series_has_fano_near_one() {
        // Pure Poisson arrivals: Fano factor ~ 1.
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let values: Vec<f64> = (0..2000)
            .map(|_| crate::rng::poisson(&mut rng, 20.0) as f64)
            .collect();
        let s = ld_api::Series::new("poisson", 5, values);
        let profile = TraceProfile::of(&s, 50);
        assert!((profile.fano_factor - 1.0).abs() < 0.15, "fano {}", profile.fano_factor);
    }
}
