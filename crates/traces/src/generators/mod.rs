//! The five trace-family generators.
//!
//! Every generator emits a base series at 5-minute resolution (the finest
//! interval in Table I); coarser configurations aggregate it. All generators
//! share the same construction: a deterministic-plus-stochastic *intensity*
//! process `lambda(t)` capturing the family's published pattern, sampled
//! through a Poisson process so that low-JAR configurations inherit the
//! irreducible `1/sqrt(JAR)` burstiness the paper highlights.
//!
//! | Family | Published shape reproduced here |
//! |---|---|
//! | [`wikipedia`] | strong diurnal seasonality, weekly modulation, ~5M req / 30 min |
//! | [`google`] | high-volume non-periodic noise, spikes concentrated in the first half, ~800k jobs / 30 min |
//! | [`facebook`] | single-day trace, small JARs, heavy bursts |
//! | [`azure`] | small JARs, multi-day regime shifts, mild diurnal component |
//! | [`lcg`] | bursty HPC arrivals with heavy-tailed batch submissions and lulls |

pub mod azure;
pub mod facebook;
pub mod google;
pub mod lcg;
pub mod wikipedia;

/// Number of 5-minute intervals per day.
pub const INTERVALS_PER_DAY: usize = 288;

/// Smoothly varying diurnal factor in `[-1, 1]` peaking mid-afternoon.
///
/// `t` is the interval index at 5-minute resolution.
pub(crate) fn diurnal(t: usize) -> f64 {
    let day_frac = (t % INTERVALS_PER_DAY) as f64 / INTERVALS_PER_DAY as f64;
    // Peak around 15:00, trough around 03:00.
    (2.0 * std::f64::consts::PI * (day_frac - 0.375)).sin()
}

/// Day-of-week factor: weekdays 1.0, Saturday/Sunday reduced.
pub(crate) fn weekly(t: usize, weekend_factor: f64) -> f64 {
    let day = (t / INTERVALS_PER_DAY) % 7;
    if day >= 5 {
        weekend_factor
    } else {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diurnal_is_periodic_and_bounded() {
        for t in 0..600 {
            let v = diurnal(t);
            assert!((-1.0..=1.0).contains(&v));
            assert!((v - diurnal(t + INTERVALS_PER_DAY)).abs() < 1e-12);
        }
    }

    #[test]
    fn diurnal_peaks_afternoon_troughs_night() {
        // 15:00 = interval 180, 03:00 = interval 36.
        assert!(diurnal(180) > 0.99);
        assert!(diurnal(36) < -0.99);
    }

    #[test]
    fn weekly_distinguishes_weekends() {
        assert_eq!(weekly(0, 0.8), 1.0); // day 0
        assert_eq!(weekly(5 * INTERVALS_PER_DAY, 0.8), 0.8); // day 5
        assert_eq!(weekly(6 * INTERVALS_PER_DAY, 0.8), 0.8); // day 6
        assert_eq!(weekly(7 * INTERVALS_PER_DAY, 0.8), 1.0); // wraps
    }
}
