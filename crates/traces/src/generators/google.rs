//! Google data-center job workload (2011 cluster trace).
//!
//! Fig. 1a of the paper shows ~750–850k jobs per 30-minute interval over
//! 29 days with no clear periodicity, persistent noise, and tall spikes
//! concentrated in the first half of the trace. Volume is large, so the
//! prediction difficulty comes from the autocorrelated intensity noise and
//! the spikes, not Poisson burstiness.

use ld_api::Series;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::generators::INTERVALS_PER_DAY;
use crate::rng::{normal_with, poisson};

/// Parameters of the Google generator.
#[derive(Debug, Clone, Copy)]
pub struct GoogleParams {
    /// Trace length in days (the real trace covers 29).
    pub days: usize,
    /// Mean jobs per 5-minute interval (~135k -> ~810k per 30 min).
    pub base_rate: f64,
    /// AR(1) coefficient of the multiplicative intensity noise.
    pub noise_phi: f64,
    /// Innovation std of the intensity noise.
    pub noise_std: f64,
    /// Per-interval probability of starting a spike in the first half.
    pub spike_prob_first_half: f64,
    /// Same for the second half (the paper's trace calms down).
    pub spike_prob_second_half: f64,
    /// Spike magnitude range (multiplier on the base intensity).
    pub spike_magnitude: (f64, f64),
    /// Spike duration range in intervals.
    pub spike_duration: (usize, usize),
}

impl Default for GoogleParams {
    fn default() -> Self {
        GoogleParams {
            days: 29,
            base_rate: 135_000.0,
            noise_phi: 0.75,
            noise_std: 0.075,
            spike_prob_first_half: 0.012,
            spike_prob_second_half: 0.002,
            spike_magnitude: (1.5, 3.5),
            spike_duration: (2, 10),
        }
    }
}

/// Generates the Google trace at 5-minute resolution.
pub fn generate(seed: u64) -> Series {
    generate_with(GoogleParams::default(), seed)
}

/// Generates with explicit parameters.
pub fn generate_with(p: GoogleParams, seed: u64) -> Series {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x600613_u64);
    let n = p.days * INTERVALS_PER_DAY;
    let mut values = Vec::with_capacity(n);
    let mut noise = 0.0f64;
    // Slow level wander, mean-reverting around the base rate.
    let mut level_drift = 0.0f64;
    let mut spike_left = 0usize;
    let mut spike_mult = 1.0f64;
    for t in 0..n {
        noise = p.noise_phi * noise + normal_with(&mut rng, 0.0, p.noise_std);
        level_drift = 0.999 * level_drift + normal_with(&mut rng, 0.0, 0.0015);
        let spike_prob = if t < n / 2 {
            p.spike_prob_first_half
        } else {
            p.spike_prob_second_half
        };
        if spike_left == 0 && rng.gen::<f64>() < spike_prob {
            spike_left = rng.gen_range(p.spike_duration.0..=p.spike_duration.1);
            spike_mult = rng.gen_range(p.spike_magnitude.0..=p.spike_magnitude.1);
        }
        let spike = if spike_left > 0 {
            spike_left -= 1;
            spike_mult
        } else {
            1.0
        };
        let lambda = p.base_rate * (1.0 + noise).max(0.05) * (1.0 + level_drift) * spike;
        values.push(poisson(&mut rng, lambda) as f64);
    }
    Series::new("google", 5, values)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn magnitude_matches_paper_scale() {
        let s = generate(0).aggregate(6);
        let mean = s.mean();
        assert!(
            (600_000.0..1_200_000.0).contains(&mean),
            "mean 30-min volume {mean}"
        );
    }

    #[test]
    fn no_daily_seasonality() {
        let s = generate(1);
        let day = s.autocorrelation(INTERVALS_PER_DAY);
        assert!(day.abs() < 0.35, "unexpected daily autocorrelation {day}");
        // But short-range dependency exists (AR noise): lag-1 is clearly
        // positive, satisfying the Eq. (1) assumption.
        assert!(s.autocorrelation(1) > 0.3);
    }

    #[test]
    fn spikes_concentrated_in_first_half() {
        let s = generate(2);
        let half = s.len() / 2;
        let thresh = s.mean() * 1.8;
        let first = s.values[..half].iter().filter(|&&v| v > thresh).count();
        let second = s.values[half..].iter().filter(|&&v| v > thresh).count();
        assert!(
            first > second * 2,
            "first-half spikes {first} vs second-half {second}"
        );
        assert!(first > 0, "no spikes generated at all");
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(generate(9).values, generate(9).values);
        assert_ne!(generate(9).values, generate(10).values);
    }

    #[test]
    fn noisier_than_wikipedia() {
        let g = generate(3);
        let w = super::super::wikipedia::generate(3);
        assert!(g.coeff_of_variation() > w.coeff_of_variation() * 0.8);
        // Google relative interval-to-interval movement is larger.
        let step = |s: &Series| {
            let mut r = Vec::new();
            for w in s.values.windows(2) {
                if w[0] > 0.0 {
                    r.push(((w[1] - w[0]) / w[0]).abs());
                }
            }
            r.iter().sum::<f64>() / r.len() as f64
        };
        assert!(step(&g) > step(&w));
    }

    #[test]
    fn expected_length() {
        assert_eq!(generate(0).len(), 29 * INTERVALS_PER_DAY);
    }
}
