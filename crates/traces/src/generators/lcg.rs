//! LCG high-performance-computing grid workload (Grid Workloads Archive).
//!
//! Fig. 8b of the paper shows bursty HPC job arrivals: jobs land in
//! batches (a user submits a campaign), interleaved with lulls, with weak
//! day-scale structure. The generator drives a moderate Poisson intensity
//! with an AR(1) log-level plus heavy-tailed batch submissions.

use ld_api::Series;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::generators::{diurnal, INTERVALS_PER_DAY};
use crate::rng::{lognormal, normal_with, poisson};

/// Parameters of the LCG generator.
#[derive(Debug, Clone, Copy)]
pub struct LcgParams {
    /// Trace length in days (the archive's LCG trace covers ~11).
    pub days: usize,
    /// Baseline jobs per 5-minute interval.
    pub base_rate: f64,
    /// AR(1) coefficient of the log-intensity.
    pub log_phi: f64,
    /// Innovation std of the log-intensity.
    pub log_std: f64,
    /// Per-interval probability of a submission campaign.
    pub campaign_prob: f64,
    /// Log-normal (mu, sigma) of campaign sizes, in jobs per interval.
    pub campaign_lognormal: (f64, f64),
    /// Campaign duration range in intervals.
    pub campaign_duration: (usize, usize),
    /// Relative diurnal amplitude (weak; grids run around the clock).
    pub diurnal_amplitude: f64,
}

impl Default for LcgParams {
    fn default() -> Self {
        LcgParams {
            days: 11,
            base_rate: 14.0,
            log_phi: 0.85,
            log_std: 0.24,
            campaign_prob: 0.02,
            campaign_lognormal: (2.8, 0.7),
            campaign_duration: (3, 18),
            diurnal_amplitude: 0.15,
        }
    }
}

/// Generates the LCG trace at 5-minute resolution.
pub fn generate(seed: u64) -> Series {
    generate_with(LcgParams::default(), seed)
}

/// Generates with explicit parameters.
pub fn generate_with(p: LcgParams, seed: u64) -> Series {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x1C6_u64);
    let n = p.days * INTERVALS_PER_DAY;
    let mut values = Vec::with_capacity(n);
    let mut log_level = 0.0f64;
    let mut campaign_left = 0usize;
    let mut campaign_rate = 0.0f64;
    for t in 0..n {
        log_level = p.log_phi * log_level + normal_with(&mut rng, 0.0, p.log_std);
        if campaign_left == 0 && rng.gen::<f64>() < p.campaign_prob {
            campaign_left = rng.gen_range(p.campaign_duration.0..=p.campaign_duration.1);
            campaign_rate = lognormal(&mut rng, p.campaign_lognormal.0, p.campaign_lognormal.1);
        }
        let campaign = if campaign_left > 0 {
            campaign_left -= 1;
            campaign_rate
        } else {
            0.0
        };
        let seasonal = 1.0 + p.diurnal_amplitude * diurnal(t);
        let lambda = p.base_rate * seasonal * log_level.exp() + campaign;
        values.push(poisson(&mut rng, lambda) as f64);
    }
    Series::new("lcg", 5, values)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moderate_volume() {
        let s = generate(0);
        let mean = s.mean();
        assert!((8.0..50.0).contains(&mean), "mean 5-min JAR {mean}");
    }

    #[test]
    fn bursty_with_heavy_tail() {
        let s = generate(1);
        assert!(s.coeff_of_variation() > 0.6, "CV {}", s.coeff_of_variation());
        assert!(s.max() > s.mean() * 4.0, "max {} mean {}", s.max(), s.mean());
    }

    #[test]
    fn persistent_short_range_dependency() {
        // The AR(1) log-level gives strong lag-1 correlation — the Eq. (1)
        // assumption that past JARs inform the next one.
        let s = generate(2);
        assert!(s.autocorrelation(1) > 0.5);
        // ...but weak day-scale structure.
        assert!(s.autocorrelation(INTERVALS_PER_DAY).abs() < 0.4);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(generate(3).values, generate(3).values);
        assert_ne!(generate(3).values, generate(4).values);
    }

    #[test]
    fn expected_length() {
        assert_eq!(generate(0).len(), 11 * INTERVALS_PER_DAY);
    }
}
