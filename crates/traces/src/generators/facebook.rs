//! Facebook data-center (Hadoop) job workload.
//!
//! Fig. 1c of the paper shows a single day of strongly fluctuating,
//! low-volume job arrivals. The paper evaluates it only at 5- and
//! 10-minute intervals and reports its *highest* errors here (43 % at
//! 5 min) because per-interval JARs are small — a property this generator
//! reproduces by keeping the Poisson intensity low (a handful of jobs per
//! 5 minutes) with heavy bursts layered on top.

use ld_api::Series;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::generators::{diurnal, INTERVALS_PER_DAY};
use crate::rng::{lognormal, normal_with, poisson};

/// Parameters of the Facebook generator.
#[derive(Debug, Clone, Copy)]
pub struct FacebookParams {
    /// Trace length in days (the real trace covers one day).
    pub days: usize,
    /// Mean jobs per 5-minute interval.
    pub base_rate: f64,
    /// Relative diurnal amplitude (mild; batch jobs run around the clock).
    pub diurnal_amplitude: f64,
    /// Per-interval probability of a burst *episode* starting. MapReduce
    /// job submissions cluster into campaigns, so elevated load persists
    /// for several intervals rather than spiking i.i.d.
    pub episode_prob: f64,
    /// Episode duration range in intervals.
    pub episode_duration: (usize, usize),
    /// Log-normal parameters (mu, sigma) of episode extra intensity (jobs
    /// per interval while the episode lasts).
    pub episode_lognormal: (f64, f64),
    /// AR(1) coefficient of intensity noise.
    pub noise_phi: f64,
    /// Innovation std of intensity noise.
    pub noise_std: f64,
}

impl Default for FacebookParams {
    fn default() -> Self {
        FacebookParams {
            days: 1,
            base_rate: 7.0,
            diurnal_amplitude: 0.1,
            episode_prob: 0.03,
            episode_duration: (6, 18),
            episode_lognormal: (2.2, 0.5),
            noise_phi: 0.6,
            noise_std: 0.16,
        }
    }
}

/// Generates the Facebook trace at 5-minute resolution.
pub fn generate(seed: u64) -> Series {
    generate_with(FacebookParams::default(), seed)
}

/// Generates with explicit parameters.
pub fn generate_with(p: FacebookParams, seed: u64) -> Series {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xFACEB_u64);
    let n = p.days * INTERVALS_PER_DAY;
    let mut values = Vec::with_capacity(n);
    let mut noise = 0.0f64;
    let mut episode_left = 0usize;
    let mut episode_rate = 0.0f64;
    for t in 0..n {
        noise = p.noise_phi * noise + normal_with(&mut rng, 0.0, p.noise_std);
        if episode_left == 0 && rng.gen::<f64>() < p.episode_prob {
            episode_left = rng.gen_range(p.episode_duration.0..=p.episode_duration.1);
            episode_rate = lognormal(&mut rng, p.episode_lognormal.0, p.episode_lognormal.1);
        }
        let episode = if episode_left > 0 {
            episode_left -= 1;
            episode_rate
        } else {
            0.0
        };
        let seasonal = 1.0 + p.diurnal_amplitude * diurnal(t);
        let lambda = p.base_rate * seasonal * (1.0 + noise).max(0.05) + episode;
        values.push(poisson(&mut rng, lambda) as f64);
    }
    Series::new("facebook", 5, values)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jars_are_small() {
        let s = generate(0);
        let mean = s.mean();
        assert!((3.0..15.0).contains(&mean), "mean 5-min JAR {mean}");
    }

    #[test]
    fn single_day_length() {
        assert_eq!(generate(0).len(), INTERVALS_PER_DAY);
    }

    #[test]
    fn highly_bursty() {
        let s = generate(1);
        // CV well above Poisson-only at this intensity: bursts add mass.
        assert!(s.coeff_of_variation() > 0.5, "CV {}", s.coeff_of_variation());
        // Max should dwarf the mean (visible spikes in Fig 1c).
        assert!(s.max() > s.mean() * 3.0);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(generate(4).values, generate(4).values);
        assert_ne!(generate(4).values, generate(5).values);
    }

    #[test]
    fn counts_are_integers_and_nonnegative() {
        let s = generate(2);
        assert!(s.values.iter().all(|&v| v >= 0.0 && v.fract() == 0.0));
    }

    #[test]
    fn aggregation_reduces_relative_burstiness() {
        // The paper: FB at 10-minute intervals is easier than at 5.
        let s = generate(3);
        let cv5 = s.coeff_of_variation();
        let cv10 = s.aggregate(2).coeff_of_variation();
        assert!(cv10 < cv5, "cv10 {cv10} vs cv5 {cv5}");
    }
}
