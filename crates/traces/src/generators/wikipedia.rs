//! Wikipedia web-request workload (Wikibench).
//!
//! Fig. 1b of the paper shows ~5 million user requests per 30-minute
//! interval with a pronounced daily cycle and a weekly envelope — the
//! canonical "strong seasonality" workload that pattern-based predictors
//! (CloudScale's FFT) handle well. Request volume is so large that Poisson
//! noise is negligible; residual difficulty comes from slow level drift.

use ld_api::Series;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::generators::{diurnal, weekly, INTERVALS_PER_DAY};
use crate::rng::{normal_with, poisson};

/// Parameters of the Wikipedia generator.
#[derive(Debug, Clone, Copy)]
pub struct WikipediaParams {
    /// Trace length in days.
    pub days: usize,
    /// Mean requests per 5-minute interval (paper scale: ~0.9M).
    pub base_rate: f64,
    /// Relative amplitude of the daily cycle.
    pub diurnal_amplitude: f64,
    /// Weekend traffic factor.
    pub weekend_factor: f64,
    /// Std of the slow multiplicative level drift per interval.
    pub drift_std: f64,
    /// Std of fast multiplicative intensity noise.
    pub noise_std: f64,
}

impl Default for WikipediaParams {
    fn default() -> Self {
        WikipediaParams {
            days: 28,
            base_rate: 900_000.0,
            diurnal_amplitude: 0.45,
            weekend_factor: 0.88,
            drift_std: 0.002,
            noise_std: 0.012,
        }
    }
}

/// Generates the Wikipedia trace at 5-minute resolution.
pub fn generate(seed: u64) -> Series {
    generate_with(WikipediaParams::default(), seed)
}

/// Generates with explicit parameters.
pub fn generate_with(p: WikipediaParams, seed: u64) -> Series {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5716_u64);
    let n = p.days * INTERVALS_PER_DAY;
    let mut values = Vec::with_capacity(n);
    // Slow mean-reverting level drift (stays within a few percent).
    let mut drift = 0.0f64;
    for t in 0..n {
        drift = 0.995 * drift + normal_with(&mut rng, 0.0, p.drift_std);
        let seasonal = 1.0 + p.diurnal_amplitude * diurnal(t);
        let level = p.base_rate * seasonal * weekly(t, p.weekend_factor) * (1.0 + drift);
        let noisy = level * (1.0 + normal_with(&mut rng, 0.0, p.noise_std));
        values.push(poisson(&mut rng, noisy.max(0.0)) as f64);
    }
    Series::new("wiki", 5, values)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn magnitude_matches_paper_scale() {
        let s = generate(0);
        // 30-minute aggregate should sit around 5.4M requests (Fig 1b).
        let agg = s.aggregate(6);
        let mean = agg.mean();
        assert!(
            (4_000_000.0..7_000_000.0).contains(&mean),
            "mean 30-min volume {mean}"
        );
    }

    #[test]
    fn has_strong_daily_seasonality() {
        let s = generate(1);
        // Autocorrelation at lag = 1 day should dominate a half-day lag.
        let day = s.autocorrelation(INTERVALS_PER_DAY);
        let half = s.autocorrelation(INTERVALS_PER_DAY / 2);
        assert!(day > 0.8, "daily autocorrelation {day}");
        assert!(day > half, "day {day} vs half-day {half}");
    }

    #[test]
    fn weekends_are_quieter() {
        let s = generate(2);
        let mut weekday = Vec::new();
        let mut weekend = Vec::new();
        for (t, &v) in s.values.iter().enumerate() {
            if (t / INTERVALS_PER_DAY) % 7 >= 5 {
                weekend.push(v);
            } else {
                weekday.push(v);
            }
        }
        let wk = weekday.iter().sum::<f64>() / weekday.len() as f64;
        let we = weekend.iter().sum::<f64>() / weekend.len() as f64;
        assert!(we < wk, "weekend {we} weekday {wk}");
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(generate(7).values, generate(7).values);
        assert_ne!(generate(7).values, generate(8).values);
    }

    #[test]
    fn low_relative_noise() {
        // The irreducible noise of this workload is small: consecutive
        // intervals differ by a few percent, not tens of percent.
        let s = generate(3);
        let mut rel = Vec::new();
        for w in s.values.windows(2) {
            if w[0] > 0.0 {
                rel.push(((w[1] - w[0]) / w[0]).abs());
            }
        }
        let mean_rel = rel.iter().sum::<f64>() / rel.len() as f64;
        assert!(mean_rel < 0.08, "mean relative step {mean_rel}");
    }

    #[test]
    fn expected_length() {
        assert_eq!(generate(0).len(), 28 * INTERVALS_PER_DAY);
    }
}
