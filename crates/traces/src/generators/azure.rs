//! Microsoft Azure public-cloud VM-request workload (Cortez et al. 2017).
//!
//! Fig. 8a of the paper shows a low-volume series with visible step-like
//! regime shifts — the level holds for a day or more, then jumps. The paper
//! notes JARs are "very small at 5-minute intervals", so Azure is evaluated
//! only at 10/30/60 minutes and remains the hardest workload at 10 minutes
//! (43 % error, the one configuration where LoadDynamics does not win).

use ld_api::Series;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::generators::{diurnal, INTERVALS_PER_DAY};
use crate::rng::{normal_with, poisson};

/// Parameters of the Azure generator.
#[derive(Debug, Clone, Copy)]
pub struct AzureParams {
    /// Trace length in days.
    pub days: usize,
    /// Range of per-regime mean requests per 5-minute interval.
    pub level_range: (f64, f64),
    /// Regime duration range in days.
    pub regime_days: (f64, f64),
    /// Relative diurnal amplitude.
    pub diurnal_amplitude: f64,
    /// AR(1) coefficient of intensity noise.
    pub noise_phi: f64,
    /// Innovation std of intensity noise.
    pub noise_std: f64,
}

impl Default for AzureParams {
    fn default() -> Self {
        AzureParams {
            days: 30,
            level_range: (2.0, 7.0),
            regime_days: (1.0, 4.0),
            diurnal_amplitude: 0.2,
            noise_phi: 0.5,
            noise_std: 0.1,
        }
    }
}

/// Generates the Azure trace at 5-minute resolution.
pub fn generate(seed: u64) -> Series {
    generate_with(AzureParams::default(), seed)
}

/// Generates with explicit parameters.
pub fn generate_with(p: AzureParams, seed: u64) -> Series {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xA27E_u64);
    let n = p.days * INTERVALS_PER_DAY;
    let mut values = Vec::with_capacity(n);
    let mut noise = 0.0f64;
    let mut level = rng.gen_range(p.level_range.0..=p.level_range.1);
    let mut regime_left = ld_api::num::to_count(
        rng.gen_range(p.regime_days.0..=p.regime_days.1) * INTERVALS_PER_DAY as f64,
    );
    for t in 0..n {
        if regime_left == 0 {
            level = rng.gen_range(p.level_range.0..=p.level_range.1);
            regime_left = ld_api::num::to_count(
                rng.gen_range(p.regime_days.0..=p.regime_days.1) * INTERVALS_PER_DAY as f64,
            );
        }
        regime_left -= 1;
        noise = p.noise_phi * noise + normal_with(&mut rng, 0.0, p.noise_std);
        let seasonal = 1.0 + p.diurnal_amplitude * diurnal(t);
        let lambda = (level * seasonal * (1.0 + noise)).max(0.0);
        values.push(poisson(&mut rng, lambda) as f64);
    }
    Series::new("azure", 5, values)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jars_small_at_five_minutes() {
        let s = generate(0);
        assert!(s.mean() < 10.0, "5-min mean {}", s.mean());
        // Many zero intervals are expected at this intensity — that is why
        // the paper avoids the 5-minute configuration.
        let zeros = s.values.iter().filter(|&&v| v == 0.0).count();
        assert!(zeros > 0);
    }

    #[test]
    fn regime_shifts_present() {
        // Daily means should differ by large factors across regimes.
        let s = generate(1);
        let daily: Vec<f64> = s
            .values
            .chunks(INTERVALS_PER_DAY)
            .map(|d| d.iter().sum::<f64>() / d.len() as f64)
            .collect();
        let min = daily.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = daily.iter().cloned().fold(0.0, f64::max);
        assert!(max / min.max(0.1) > 1.5, "daily range {min}..{max}");
    }

    #[test]
    fn hour_aggregation_reaches_case_study_scale() {
        // The auto-scaling study uses 60-minute Azure intervals scaled so
        // fewer than 50 VMs arrive per interval; the raw series is already
        // in the tens.
        let s = generate(2).aggregate(12);
        assert_eq!(s.interval_mins, 60);
        let mean = s.mean();
        assert!((20.0..90.0).contains(&mean), "60-min mean {mean}");
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(generate(6).values, generate(6).values);
        assert_ne!(generate(6).values, generate(7).values);
    }

    #[test]
    fn expected_length() {
        assert_eq!(generate(0).len(), 30 * INTERVALS_PER_DAY);
    }
}
