//! Baseline workload predictors — everything the paper compares
//! LoadDynamics against.
//!
//! Three state-of-the-art techniques (Section IV-A):
//!
//! - [`cloudinsight`]: the council-of-experts ensemble of Kim et al. 2018,
//!   backed by the 21 member predictors of Table II (all implemented here:
//!   naive, regression, time-series and ML families),
//! - [`cloudscale`]: Shen et al. 2011 — FFT repeating-pattern detection
//!   with a discrete-time Markov-chain fallback,
//! - [`wood`]: Wood et al. — robust linear regression (IRLS with Huber
//!   weights) refined online.
//!
//! Member-predictor families:
//!
//! | Module | Table II entries |
//! |---|---|
//! | [`naive`] | mean, kNN |
//! | [`regression`] | local & global linear / quadratic / cubic regression |
//! | [`smoothing`] | WMA, EMA, Holt–Winters DES, Brown's DES |
//! | [`arima`] | AR, ARMA, ARIMA |
//! | [`svr`] | linear SVR, Gaussian (RBF) SVR |
//! | [`tree`], [`forest`], [`boosting`] | decision tree, random forest, extra trees, gradient boosting |
//!
//! All predictors implement [`ld_api::Predictor`] and are exercised by the
//! same walk-forward harness as LoadDynamics itself.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod arima;
pub mod boosting;
pub mod cloudinsight;
pub mod cloudscale;
pub mod features;
pub mod fft;
pub mod forest;
pub mod ml;
pub mod naive;
pub mod regression;
pub mod smoothing;
pub mod svr;
pub mod tree;
pub mod wood;

pub use cloudinsight::CloudInsight;
pub use cloudscale::CloudScale;
pub use wood::WoodPredictor;
