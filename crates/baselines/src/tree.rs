//! CART regression tree — the "Decision Tree" member of Table II and the
//! base learner for the forest and boosting members.
//!
//! Splits minimize the weighted sum of child variances (equivalently,
//! maximize variance reduction). Two split policies are supported: exact
//! best-split search (CART / random forest) and random-threshold splits
//! (extra trees).
//!
//! Fitting runs on a flat row-major copy of the sample matrix: the split
//! search sorts `(value, target)` key pairs gathered once per candidate
//! feature into a scratch buffer reused across nodes, instead of sorting
//! freshly-allocated index lists through `Vec<Vec<f64>>` pointer chases.
//! The stable sort sees the same key sequence in the same order, every
//! floating-point accumulation keeps its order, and the RNG draw sequence
//! is untouched, so the fitted tree is **bitwise identical** to the
//! retained reference builder — [`set_reference_fit`] flips fits back to
//! the reference path so benchmarks can time the pre-change semantics.

use rand::Rng;
use std::sync::atomic::{AtomicBool, Ordering};

use crate::ml::Regressor;

/// Process-wide toggle routing [`Regressor::fit`] for trees through the
/// retained reference builder (per-node index-list sorts over the nested
/// sample rows) instead of the flat-slab key-sort fast path. Benchmarks
/// flip it to time the pre-change semantics; both builders grow bitwise
/// identical trees, so this is never a correctness knob.
static REFERENCE_FIT: AtomicBool = AtomicBool::new(false);

/// Routes tree fits through the reference builder when `on`.
pub fn set_reference_fit(on: bool) {
    REFERENCE_FIT.store(on, Ordering::Relaxed);
}

/// Split-selection policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitPolicy {
    /// Exhaustive best split over candidate features (CART).
    Best,
    /// Uniformly random threshold per candidate feature (extra trees).
    Random,
}

/// Tree growth configuration.
#[derive(Debug, Clone, Copy)]
pub struct TreeConfig {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples in a leaf.
    pub min_samples_leaf: usize,
    /// Minimum samples to attempt a split.
    pub min_samples_split: usize,
    /// Number of candidate features per split (`None` = all).
    pub max_features: Option<usize>,
    /// Split policy.
    pub policy: SplitPolicy,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 8,
            min_samples_leaf: 2,
            min_samples_split: 4,
            max_features: None,
            policy: SplitPolicy::Best,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf(f64),
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A fitted regression tree.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    config: TreeConfig,
    seed: u64,
}

impl DecisionTree {
    /// An unfitted tree with the given configuration and RNG seed (the seed
    /// matters for `max_features` subsampling and random splits).
    pub fn new(config: TreeConfig, seed: u64) -> Self {
        DecisionTree {
            nodes: Vec::new(),
            config,
            seed,
        }
    }

    /// Number of nodes in the fitted tree (0 before fitting).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Depth of the fitted tree.
    pub fn depth(&self) -> usize {
        fn depth_of(nodes: &[Node], idx: usize) -> usize {
            match nodes[idx] {
                Node::Leaf(_) => 1,
                Node::Split { left, right, .. } => {
                    1 + depth_of(nodes, left).max(depth_of(nodes, right))
                }
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            depth_of(&self.nodes, 0)
        }
    }

    /// Reference builder, retained verbatim for [`set_reference_fit`]:
    /// each best-split scan clones and sorts the node's index list and
    /// gathers features through the nested `xs` rows.
    fn build_reference(
        &mut self,
        xs: &[Vec<f64>],
        ys: &[f64],
        idxs: &mut [usize],
        depth: usize,
        rng: &mut impl Rng,
    ) -> usize {
        let mean = idxs.iter().map(|&i| ys[i]).sum::<f64>() / idxs.len() as f64;
        let sse: f64 = idxs.iter().map(|&i| (ys[i] - mean).powi(2)).sum();
        if depth >= self.config.max_depth
            || idxs.len() < self.config.min_samples_split
            || sse <= 1e-12
        {
            self.nodes.push(Node::Leaf(mean));
            return self.nodes.len() - 1;
        }

        let d = xs[0].len();
        let n_feats = self.config.max_features.unwrap_or(d).clamp(1, d);
        // Choose candidate features without replacement (partial shuffle).
        let mut feats: Vec<usize> = (0..d).collect();
        for i in 0..n_feats {
            let j = rng.gen_range(i..d);
            feats.swap(i, j);
        }
        let candidates = &feats[..n_feats];

        let mut best: Option<(f64, usize, f64)> = None; // (score, feature, threshold)
        for &f in candidates {
            match self.config.policy {
                SplitPolicy::Best => {
                    // Sort by feature, scan split points with prefix sums.
                    let mut sorted: Vec<usize> = idxs.to_vec();
                    sorted.sort_by(|&a, &b| xs[a][f].total_cmp(&xs[b][f]));
                    let n = sorted.len();
                    let total_sum: f64 = sorted.iter().map(|&i| ys[i]).sum();
                    let total_sq: f64 = sorted.iter().map(|&i| ys[i] * ys[i]).sum();
                    let mut lsum = 0.0;
                    let mut lsq = 0.0;
                    for k in 0..n - 1 {
                        let yi = ys[sorted[k]];
                        lsum += yi;
                        lsq += yi * yi;
                        // Can't split between equal feature values.
                        if xs[sorted[k]][f] == xs[sorted[k + 1]][f] {
                            continue;
                        }
                        let nl = k + 1;
                        let nr = n - nl;
                        if nl < self.config.min_samples_leaf || nr < self.config.min_samples_leaf
                        {
                            continue;
                        }
                        let rsum = total_sum - lsum;
                        let rsq = total_sq - lsq;
                        let child_sse = (lsq - lsum * lsum / nl as f64)
                            + (rsq - rsum * rsum / nr as f64);
                        let threshold = 0.5 * (xs[sorted[k]][f] + xs[sorted[k + 1]][f]);
                        if best.is_none_or(|(s, _, _)| child_sse < s) {
                            best = Some((child_sse, f, threshold));
                        }
                    }
                }
                SplitPolicy::Random => {
                    let lo = idxs.iter().map(|&i| xs[i][f]).fold(f64::INFINITY, f64::min);
                    let hi = idxs
                        .iter()
                        .map(|&i| xs[i][f])
                        .fold(f64::NEG_INFINITY, f64::max);
                    if hi <= lo {
                        continue;
                    }
                    // A few random candidate thresholds per feature keeps
                    // single-feature trees (the degenerate but legal case)
                    // from stalling on one unlucky draw.
                    for _ in 0..4 {
                        let threshold = rng.gen_range(lo..hi);
                        let (mut lsum, mut lsq, mut nl) = (0.0, 0.0, 0usize);
                        let (mut rsum, mut rsq, mut nr) = (0.0, 0.0, 0usize);
                        for &i in idxs.iter() {
                            let y = ys[i];
                            if xs[i][f] <= threshold {
                                lsum += y;
                                lsq += y * y;
                                nl += 1;
                            } else {
                                rsum += y;
                                rsq += y * y;
                                nr += 1;
                            }
                        }
                        if nl < self.config.min_samples_leaf
                            || nr < self.config.min_samples_leaf
                        {
                            continue;
                        }
                        let child_sse =
                            (lsq - lsum * lsum / nl as f64) + (rsq - rsum * rsum / nr as f64);
                        if best.is_none_or(|(s, _, _)| child_sse < s) {
                            best = Some((child_sse, f, threshold));
                        }
                    }
                }
            }
        }

        let Some((_, feature, threshold)) = best else {
            self.nodes.push(Node::Leaf(mean));
            return self.nodes.len() - 1;
        };

        // Partition indices in place.
        let mut mid = 0;
        for k in 0..idxs.len() {
            if xs[idxs[k]][feature] <= threshold {
                idxs.swap(k, mid);
                mid += 1;
            }
        }
        debug_assert!(mid > 0 && mid < idxs.len());

        // Reserve the split node, then build children.
        let node_idx = self.nodes.len();
        self.nodes.push(Node::Leaf(mean)); // placeholder
        let (left_idxs, right_idxs) = idxs.split_at_mut(mid);
        let left = self.build_reference(xs, ys, left_idxs, depth + 1, rng);
        let right = self.build_reference(xs, ys, right_idxs, depth + 1, rng);
        self.nodes[node_idx] = Node::Split {
            feature,
            threshold,
            left,
            right,
        };
        node_idx
    }

    /// Fast builder over a flat row-major sample slab (`n x d`).
    ///
    /// Per candidate feature the node's `(value, target)` pairs are
    /// gathered into `keys` (reused across every node of the fit) and
    /// stably sorted by value — the same key sequence, initial order, and
    /// tie handling as the reference builder's index sort, so the scan
    /// accumulates the identical sums in the identical order and picks the
    /// identical split. The RNG is consumed by the same draws in the same
    /// sequence. Trees are bitwise identical to [`Self::build_reference`].
    #[allow(clippy::too_many_arguments)]
    fn build_flat(
        &mut self,
        flat: &[f64],
        d: usize,
        ys: &[f64],
        idxs: &mut [usize],
        depth: usize,
        rng: &mut impl Rng,
        keys: &mut Vec<(f64, f64)>,
    ) -> usize {
        let mean = idxs.iter().map(|&i| ys[i]).sum::<f64>() / idxs.len() as f64;
        let sse: f64 = idxs.iter().map(|&i| (ys[i] - mean).powi(2)).sum();
        if depth >= self.config.max_depth
            || idxs.len() < self.config.min_samples_split
            || sse <= 1e-12
        {
            self.nodes.push(Node::Leaf(mean));
            return self.nodes.len() - 1;
        }

        let n_feats = self.config.max_features.unwrap_or(d).clamp(1, d);
        // Choose candidate features without replacement (partial shuffle).
        let mut feats: Vec<usize> = (0..d).collect();
        for i in 0..n_feats {
            let j = rng.gen_range(i..d);
            feats.swap(i, j);
        }
        let candidates = &feats[..n_feats];

        let mut best: Option<(f64, usize, f64)> = None; // (score, feature, threshold)
        for &f in candidates {
            match self.config.policy {
                SplitPolicy::Best => {
                    // Gather (value, target) pairs in node order, then sort
                    // by value and scan split points with prefix sums. The
                    // stable sort keeps tied values in node order exactly
                    // like the reference index sort.
                    keys.clear();
                    keys.extend(idxs.iter().map(|&i| (flat[i * d + f], ys[i])));
                    keys.sort_by(|a, b| a.0.total_cmp(&b.0));
                    let n = keys.len();
                    let total_sum: f64 = keys.iter().map(|kv| kv.1).sum();
                    let total_sq: f64 = keys.iter().map(|kv| kv.1 * kv.1).sum();
                    let mut lsum = 0.0;
                    let mut lsq = 0.0;
                    for k in 0..n - 1 {
                        let (v, yi) = keys[k];
                        lsum += yi;
                        lsq += yi * yi;
                        // Can't split between equal feature values.
                        if v == keys[k + 1].0 {
                            continue;
                        }
                        let nl = k + 1;
                        let nr = n - nl;
                        if nl < self.config.min_samples_leaf || nr < self.config.min_samples_leaf
                        {
                            continue;
                        }
                        let rsum = total_sum - lsum;
                        let rsq = total_sq - lsq;
                        let child_sse = (lsq - lsum * lsum / nl as f64)
                            + (rsq - rsum * rsum / nr as f64);
                        let threshold = 0.5 * (v + keys[k + 1].0);
                        if best.is_none_or(|(s, _, _)| child_sse < s) {
                            best = Some((child_sse, f, threshold));
                        }
                    }
                }
                SplitPolicy::Random => {
                    let lo = idxs
                        .iter()
                        .map(|&i| flat[i * d + f])
                        .fold(f64::INFINITY, f64::min);
                    let hi = idxs
                        .iter()
                        .map(|&i| flat[i * d + f])
                        .fold(f64::NEG_INFINITY, f64::max);
                    if hi <= lo {
                        continue;
                    }
                    // A few random candidate thresholds per feature keeps
                    // single-feature trees (the degenerate but legal case)
                    // from stalling on one unlucky draw.
                    for _ in 0..4 {
                        let threshold = rng.gen_range(lo..hi);
                        let (mut lsum, mut lsq, mut nl) = (0.0, 0.0, 0usize);
                        let (mut rsum, mut rsq, mut nr) = (0.0, 0.0, 0usize);
                        for &i in idxs.iter() {
                            let y = ys[i];
                            if flat[i * d + f] <= threshold {
                                lsum += y;
                                lsq += y * y;
                                nl += 1;
                            } else {
                                rsum += y;
                                rsq += y * y;
                                nr += 1;
                            }
                        }
                        if nl < self.config.min_samples_leaf
                            || nr < self.config.min_samples_leaf
                        {
                            continue;
                        }
                        let child_sse =
                            (lsq - lsum * lsum / nl as f64) + (rsq - rsum * rsum / nr as f64);
                        if best.is_none_or(|(s, _, _)| child_sse < s) {
                            best = Some((child_sse, f, threshold));
                        }
                    }
                }
            }
        }

        let Some((_, feature, threshold)) = best else {
            self.nodes.push(Node::Leaf(mean));
            return self.nodes.len() - 1;
        };

        // Partition indices in place.
        let mut mid = 0;
        for k in 0..idxs.len() {
            if flat[idxs[k] * d + feature] <= threshold {
                idxs.swap(k, mid);
                mid += 1;
            }
        }
        debug_assert!(mid > 0 && mid < idxs.len());

        // Reserve the split node, then build children.
        let node_idx = self.nodes.len();
        self.nodes.push(Node::Leaf(mean)); // placeholder
        let (left_idxs, right_idxs) = idxs.split_at_mut(mid);
        let left = self.build_flat(flat, d, ys, left_idxs, depth + 1, rng, keys);
        let right = self.build_flat(flat, d, ys, right_idxs, depth + 1, rng, keys);
        self.nodes[node_idx] = Node::Split {
            feature,
            threshold,
            left,
            right,
        };
        node_idx
    }
}

impl Regressor for DecisionTree {
    fn fit(&mut self, xs: &[Vec<f64>], ys: &[f64]) {
        assert_eq!(xs.len(), ys.len());
        self.nodes.clear();
        if xs.is_empty() {
            return;
        }
        let mut idxs: Vec<usize> = (0..xs.len()).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed);
        use rand::SeedableRng;
        if REFERENCE_FIT.load(Ordering::Relaxed) {
            self.build_reference(xs, ys, &mut idxs, 0, &mut rng);
            return;
        }
        // Flatten the sample rows once; the builder then gathers features
        // with one multiply instead of a pointer chase per access.
        let d = xs[0].len();
        let mut flat = Vec::with_capacity(xs.len() * d);
        for row in xs {
            debug_assert_eq!(row.len(), d);
            flat.extend_from_slice(row);
        }
        let mut keys = Vec::with_capacity(xs.len());
        self.build_flat(&flat, d, ys, &mut idxs, 0, &mut rng, &mut keys);
    }

    fn predict(&self, x: &[f64]) -> f64 {
        if self.nodes.is_empty() {
            return 0.0;
        }
        let mut idx = 0usize;
        loop {
            match self.nodes[idx] {
                Node::Leaf(v) => return v,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    idx = if x[feature] <= threshold { left } else { right };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_data() -> (Vec<Vec<f64>>, Vec<f64>) {
        // y = 10 for x < 0.5, y = 20 otherwise.
        let xs: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 / 39.0]).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| if x[0] < 0.5 { 10.0 } else { 20.0 })
            .collect();
        (xs, ys)
    }

    #[test]
    fn learns_a_step_function_exactly() {
        let (xs, ys) = step_data();
        let mut tree = DecisionTree::new(TreeConfig::default(), 0);
        tree.fit(&xs, &ys);
        assert_eq!(tree.predict(&[0.1]), 10.0);
        assert_eq!(tree.predict(&[0.9]), 20.0);
        // One split suffices.
        assert!(tree.node_count() <= 5, "nodes {}", tree.node_count());
    }

    #[test]
    fn respects_max_depth() {
        let xs: Vec<Vec<f64>> = (0..128).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = (0..128).map(|i| (i % 17) as f64).collect();
        let mut tree = DecisionTree::new(
            TreeConfig {
                max_depth: 3,
                ..TreeConfig::default()
            },
            0,
        );
        tree.fit(&xs, &ys);
        assert!(tree.depth() <= 4, "depth {}", tree.depth()); // root + 3
    }

    #[test]
    fn constant_targets_yield_single_leaf() {
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let ys = vec![5.0; 20];
        let mut tree = DecisionTree::new(TreeConfig::default(), 0);
        tree.fit(&xs, &ys);
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.predict(&[100.0]), 5.0);
    }

    #[test]
    fn piecewise_fit_on_two_features() {
        // y depends only on feature 1; tree must find it.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for a in 0..10 {
            for b in 0..10 {
                xs.push(vec![a as f64, b as f64]);
                ys.push(if b < 5 { 0.0 } else { 100.0 });
            }
        }
        let mut tree = DecisionTree::new(TreeConfig::default(), 0);
        tree.fit(&xs, &ys);
        assert_eq!(tree.predict(&[3.0, 2.0]), 0.0);
        assert_eq!(tree.predict(&[3.0, 8.0]), 100.0);
    }

    #[test]
    fn random_policy_still_reduces_error() {
        let (xs, ys) = step_data();
        let mut tree = DecisionTree::new(
            TreeConfig {
                policy: SplitPolicy::Random,
                max_depth: 6,
                ..TreeConfig::default()
            },
            42,
        );
        tree.fit(&xs, &ys);
        let mse: f64 = xs
            .iter()
            .zip(&ys)
            .map(|(x, y)| (tree.predict(x) - y).powi(2))
            .sum::<f64>()
            / xs.len() as f64;
        // Plain mean would give MSE 25; random splits must do much better.
        assert!(mse < 5.0, "mse {mse}");
    }

    #[test]
    fn min_samples_leaf_enforced() {
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let mut tree = DecisionTree::new(
            TreeConfig {
                min_samples_leaf: 5,
                ..TreeConfig::default()
            },
            0,
        );
        tree.fit(&xs, &ys);
        // Only one split can satisfy 5+5.
        assert!(tree.node_count() <= 3);
    }

    #[test]
    fn empty_fit_predicts_zero() {
        let mut tree = DecisionTree::new(TreeConfig::default(), 0);
        tree.fit(&[], &[]);
        assert_eq!(tree.predict(&[1.0]), 0.0);
    }

    #[test]
    fn flat_builder_matches_reference_bitwise() {
        // Multi-feature data with deliberate tied values so the stable-sort
        // tie handling is exercised, under every policy / subsampling combo.
        let xs: Vec<Vec<f64>> = (0..90)
            .map(|i| {
                vec![
                    (i % 9) as f64 * 0.5, // heavy ties
                    ((i as f64) * 0.37).sin(),
                    (i / 10) as f64,
                    ((i * 7) % 13) as f64 * 0.1,
                ]
            })
            .collect();
        let ys: Vec<f64> = (0..90)
            .map(|i| ((i as f64) * 0.11).cos() * 5.0 + ((i * 3) % 11) as f64)
            .collect();
        for (policy, max_features) in [
            (SplitPolicy::Best, None),
            (SplitPolicy::Best, Some(2)),
            (SplitPolicy::Random, None),
            (SplitPolicy::Random, Some(2)),
        ] {
            let config = TreeConfig {
                policy,
                max_features,
                ..TreeConfig::default()
            };
            let mut fast = DecisionTree::new(config, 17);
            fast.fit(&xs, &ys);
            let mut reference = DecisionTree::new(config, 17);
            let mut idxs: Vec<usize> = (0..xs.len()).collect();
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(reference.seed);
            reference.build_reference(&xs, &ys, &mut idxs, 0, &mut rng);
            assert_eq!(fast.node_count(), reference.node_count(), "{policy:?}");
            for x in &xs {
                assert_eq!(
                    fast.predict(x).to_bits(),
                    reference.predict(x).to_bits(),
                    "{policy:?} max_features {max_features:?}"
                );
            }
        }
    }
}
