//! Polynomial trend-regression members of Table II: local and global
//! regression with linear, quadratic and cubic models.
//!
//! "Global" fits the polynomial over the whole (recent, capped) history;
//! "local" fits only the last few dozen intervals. Both regress the JAR on
//! normalized time and extrapolate one step ahead.

use ld_api::Predictor;
use ld_linalg::{solve, Matrix};

use crate::features::recent;

/// Scope of the trend fit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegressionScope {
    /// Fit over the recent capped history (default cap 2048 intervals).
    Global,
    /// Fit over a short local window (default 24 intervals).
    Local,
}

/// Polynomial trend regression of a configurable degree.
#[derive(Debug, Clone)]
pub struct PolyRegression {
    /// 1 = linear, 2 = quadratic, 3 = cubic.
    pub degree: usize,
    /// Local or global fitting scope.
    pub scope: RegressionScope,
    /// Window for local fits.
    pub local_window: usize,
    /// History cap for global fits.
    pub global_cap: usize,
}

impl PolyRegression {
    /// Creates a member with the paper-pool defaults.
    pub fn new(degree: usize, scope: RegressionScope) -> Self {
        assert!((1..=3).contains(&degree), "degree must be 1..=3");
        PolyRegression {
            degree,
            scope,
            local_window: 24,
            global_cap: 2048,
        }
    }

    fn fit_window<'a>(&self, history: &'a [f64]) -> &'a [f64] {
        match self.scope {
            RegressionScope::Global => recent(history, self.global_cap),
            RegressionScope::Local => recent(history, self.local_window),
        }
    }
}

/// Fits `y ~ poly(t)` on `ys` over normalized time and returns the
/// extrapolation at the next step.
pub fn poly_extrapolate(ys: &[f64], degree: usize) -> f64 {
    let n = ys.len();
    if n == 0 {
        return 0.0;
    }
    if n <= degree {
        return ys[n - 1];
    }
    // Normalize time to [0, 1] for conditioning; next step is at
    // (n) / (n - 1) > 1.
    let design = Matrix::from_fn(n, degree + 1, |r, c| {
        let t = r as f64 / (n - 1).max(1) as f64;
        t.powi(c as i32)
    });
    match solve::lstsq(&design, ys, 1e-9) {
        Ok(coef) => {
            let t_next = n as f64 / (n - 1).max(1) as f64;
            coef.iter()
                .enumerate()
                .map(|(c, &b)| b * t_next.powi(c as i32))
                .sum()
        }
        Err(_) => ys[n - 1],
    }
}

impl Predictor for PolyRegression {
    fn name(&self) -> String {
        let deg = match self.degree {
            1 => "Linear",
            2 => "Quadratic",
            _ => "Cubic",
        };
        let scope = match self.scope {
            RegressionScope::Global => "Global",
            RegressionScope::Local => "Local",
        };
        format!("{scope}{deg}Reg")
    }

    fn fit(&mut self, _history: &[f64]) {}

    fn predict(&mut self, history: &[f64]) -> f64 {
        poly_extrapolate(self.fit_window(history), self.degree)
    }
}

/// The six regression members of Table II.
pub fn all_regression_members() -> Vec<Box<dyn Predictor>> {
    let mut out: Vec<Box<dyn Predictor>> = Vec::with_capacity(6);
    for scope in [RegressionScope::Local, RegressionScope::Global] {
        for degree in 1..=3 {
            out.push(Box::new(PolyRegression::new(degree, scope)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_extrapolates_exact_line() {
        let ys: Vec<f64> = (0..20).map(|i| 3.0 + 2.0 * i as f64).collect();
        let p = poly_extrapolate(&ys, 1);
        assert!((p - (3.0 + 2.0 * 20.0)).abs() < 1e-6, "pred {p}");
    }

    #[test]
    fn quadratic_extrapolates_parabola() {
        let ys: Vec<f64> = (0..20).map(|i| (i * i) as f64).collect();
        let p = poly_extrapolate(&ys, 2);
        assert!((p - 400.0).abs() < 1e-4, "pred {p}");
    }

    #[test]
    fn cubic_extrapolates_cubic() {
        let ys: Vec<f64> = (0..15).map(|i| (i as f64).powi(3) * 0.1).collect();
        let p = poly_extrapolate(&ys, 3);
        assert!((p - 337.5).abs() < 1e-3, "pred {p}");
    }

    #[test]
    fn degenerate_history_returns_last() {
        assert_eq!(poly_extrapolate(&[5.0], 3), 5.0);
        assert_eq!(poly_extrapolate(&[], 1), 0.0);
        assert_eq!(poly_extrapolate(&[1.0, 2.0], 3), 2.0);
    }

    #[test]
    fn local_scope_tracks_recent_trend_change() {
        // Flat for 100 intervals then a steep ramp in the last 24: the
        // local fit should predict much higher than the global fit.
        let mut ys = vec![10.0; 100];
        for i in 0..24 {
            ys.push(10.0 + (i + 1) as f64 * 5.0);
        }
        let mut local = PolyRegression::new(1, RegressionScope::Local);
        let mut global = PolyRegression::new(1, RegressionScope::Global);
        let pl = local.predict(&ys);
        let pg = global.predict(&ys);
        assert!(pl > pg, "local {pl} global {pg}");
        assert!(pl > 120.0, "local should continue the ramp: {pl}");
    }

    #[test]
    fn member_pool_has_six_distinct_names() {
        let members = all_regression_members();
        assert_eq!(members.len(), 6);
        let names: std::collections::HashSet<String> =
            members.iter().map(|m| m.name()).collect();
        assert_eq!(names.len(), 6);
        assert!(names.contains("LocalLinearReg"));
        assert!(names.contains("GlobalCubicReg"));
    }
}
