//! Sliding-window feature extraction shared by the ML member predictors.
//!
//! The ML members of Table II (SVR, trees, forests, boosting) treat
//! one-step-ahead forecasting as supervised regression on the previous `w`
//! JARs — the same framing as LoadDynamics' Eq. (1), with `w` fixed instead
//! of tuned.

/// Builds `(window, next-value)` pairs from a history.
///
/// Returns empty vectors if the history is shorter than `w + 1`.
pub fn window_dataset(history: &[f64], w: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    if w == 0 || history.len() <= w {
        return (Vec::new(), Vec::new());
    }
    let mut xs = Vec::with_capacity(history.len() - w);
    let mut ys = Vec::with_capacity(history.len() - w);
    for i in w..history.len() {
        xs.push(history[i - w..i].to_vec());
        ys.push(history[i]);
    }
    (xs, ys)
}

/// The most recent `w` values, padded on the left with the earliest value
/// when the history is shorter than `w` (so predictors always have a
/// feature vector to work with during warm-up).
pub fn last_window(history: &[f64], w: usize) -> Vec<f64> {
    assert!(w > 0, "window must be positive");
    assert!(!history.is_empty(), "history must be non-empty");
    if history.len() >= w {
        history[history.len() - w..].to_vec()
    } else {
        let pad = w - history.len();
        let mut out = vec![history[0]; pad];
        out.extend_from_slice(history);
        out
    }
}

/// Caps a training history to its most recent `max_points` values — ML
/// members refit frequently, and ancient history adds cost without
/// improving one-step forecasts.
pub fn recent(history: &[f64], max_points: usize) -> &[f64] {
    if history.len() > max_points {
        &history[history.len() - max_points..]
    } else {
        history
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_dataset_alignment() {
        let h = [1.0, 2.0, 3.0, 4.0];
        let (xs, ys) = window_dataset(&h, 2);
        assert_eq!(xs, vec![vec![1.0, 2.0], vec![2.0, 3.0]]);
        assert_eq!(ys, vec![3.0, 4.0]);
    }

    #[test]
    fn window_dataset_too_short() {
        let (xs, ys) = window_dataset(&[1.0, 2.0], 2);
        assert!(xs.is_empty() && ys.is_empty());
        let (xs, _) = window_dataset(&[1.0, 2.0, 3.0], 0);
        assert!(xs.is_empty());
    }

    #[test]
    fn last_window_exact_and_padded() {
        assert_eq!(last_window(&[1.0, 2.0, 3.0], 2), vec![2.0, 3.0]);
        assert_eq!(last_window(&[5.0, 6.0], 4), vec![5.0, 5.0, 5.0, 6.0]);
    }

    #[test]
    fn recent_truncates_from_front() {
        let h = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(recent(&h, 3), &[3.0, 4.0, 5.0]);
        assert_eq!(recent(&h, 10), &h[..]);
    }
}
