//! Autoregressive members of Table II: AR, ARMA and ARIMA.
//!
//! AR(p) is fit by ordinary least squares on the lag matrix. ARMA(p, q)
//! uses the Hannan–Rissanen two-stage procedure: a long autoregression
//! estimates the innovation series, then the final model regresses on both
//! value lags and innovation lags. ARIMA(p, d, q) differences the series
//! `d` times, applies ARMA, and integrates back.

use ld_api::Predictor;
use ld_linalg::{solve, Matrix};

use crate::features::recent;

/// Fits `y_t = c + sum_i phi_i y_{t-i}` by OLS and returns `(coef, resid)`
/// where `coef = [phi_1..phi_p, c]`; `resid[t]` aligns with `ys[p + t]`.
fn fit_ar(ys: &[f64], p: usize) -> Option<(Vec<f64>, Vec<f64>)> {
    let n = ys.len();
    if n < p + 2 || p == 0 {
        return None;
    }
    let rows = n - p;
    let design = Matrix::from_fn(rows, p + 1, |r, c| {
        if c < p {
            ys[p + r - 1 - c] // lag c+1
        } else {
            1.0
        }
    });
    let targets: Vec<f64> = ys[p..].to_vec();
    let coef = solve::lstsq(&design, &targets, 1e-8).ok()?;
    let resid: Vec<f64> = (0..rows)
        .map(|r| {
            let mut pred = coef[p];
            for c in 0..p {
                pred += coef[c] * ys[p + r - 1 - c];
            }
            targets[r] - pred
        })
        .collect();
    Some((coef, resid))
}

/// One-step AR forecast from fitted coefficients.
fn ar_forecast(ys: &[f64], coef: &[f64], p: usize) -> f64 {
    let n = ys.len();
    let mut pred = coef[p];
    for c in 0..p {
        pred += coef[c] * ys[n - 1 - c];
    }
    pred
}

/// AR(p) forecaster.
#[derive(Debug, Clone)]
pub struct Ar {
    /// Autoregressive order.
    pub p: usize,
    /// History cap for refitting.
    pub max_history: usize,
}

impl Default for Ar {
    fn default() -> Self {
        Ar {
            p: 8,
            max_history: 1024,
        }
    }
}

impl Predictor for Ar {
    fn name(&self) -> String {
        "AR".into()
    }

    fn fit(&mut self, _history: &[f64]) {}

    fn predict(&mut self, history: &[f64]) -> f64 {
        let h = recent(history, self.max_history);
        match fit_ar(h, self.p.min(h.len().saturating_sub(2))) {
            Some((coef, _)) => ar_forecast(h, &coef, coef.len() - 1),
            None => *h.last().unwrap(),
        }
    }
}

/// Core ARMA(p, q) one-step forecast via Hannan–Rissanen; returns `None`
/// when the history is too short.
fn arma_forecast(ys: &[f64], p: usize, q: usize) -> Option<f64> {
    let n = ys.len();
    let long_p = (p + q + 2).min(n / 3);
    let (_, resid) = fit_ar(ys, long_p)?;
    // resid[t] aligns with ys[long_p + t]; build the joint regression
    // y_t = c + sum phi_i y_{t-i} + sum theta_j e_{t-j}.
    let offset = long_p + q; // first usable target index into ys
    let start = offset.max(p);
    if n <= start + 2 {
        return None;
    }
    let rows = n - start;
    let design = Matrix::from_fn(rows, p + q + 1, |r, c| {
        let t = start + r;
        if c < p {
            ys[t - 1 - c]
        } else if c < p + q {
            let lag = c - p + 1; // innovation lag
            resid[t - lag - long_p]
        } else {
            1.0
        }
    });
    let targets: Vec<f64> = ys[start..].to_vec();
    let coef = solve::lstsq(&design, &targets, 1e-8).ok()?;
    // Forecast at t = n.
    let mut pred = coef[p + q];
    for c in 0..p {
        pred += coef[c] * ys[n - 1 - c];
    }
    for j in 1..=q {
        let idx = n - j;
        if idx >= long_p {
            pred += coef[p + j - 1] * resid[idx - long_p];
        }
    }
    Some(pred)
}

/// ARMA(p, q) forecaster.
#[derive(Debug, Clone)]
pub struct Arma {
    /// AR order.
    pub p: usize,
    /// MA order.
    pub q: usize,
    /// History cap for refitting.
    pub max_history: usize,
}

impl Default for Arma {
    fn default() -> Self {
        Arma {
            p: 4,
            q: 2,
            max_history: 1024,
        }
    }
}

impl Predictor for Arma {
    fn name(&self) -> String {
        "ARMA".into()
    }

    fn fit(&mut self, _history: &[f64]) {}

    fn predict(&mut self, history: &[f64]) -> f64 {
        let h = recent(history, self.max_history);
        arma_forecast(h, self.p, self.q)
            .unwrap_or_else(|| Ar::default().predict(h))
    }
}

/// ARIMA(p, d, q) forecaster.
#[derive(Debug, Clone)]
pub struct Arima {
    /// AR order.
    pub p: usize,
    /// Differencing order (0, 1 or 2).
    pub d: usize,
    /// MA order.
    pub q: usize,
    /// History cap for refitting.
    pub max_history: usize,
}

impl Default for Arima {
    fn default() -> Self {
        Arima {
            p: 4,
            d: 1,
            q: 2,
            max_history: 1024,
        }
    }
}

impl Predictor for Arima {
    fn name(&self) -> String {
        "ARIMA".into()
    }

    fn fit(&mut self, _history: &[f64]) {}

    fn predict(&mut self, history: &[f64]) -> f64 {
        let h = recent(history, self.max_history).to_vec();
        assert!(self.d <= 2, "d > 2 unsupported");
        // Difference d times, remembering the last value of each level.
        let mut levels = Vec::with_capacity(self.d);
        let mut cur = h;
        for _ in 0..self.d {
            if cur.len() < 2 {
                break;
            }
            levels.push(*cur.last().unwrap());
            cur = cur.windows(2).map(|w| w[1] - w[0]).collect();
        }
        let mut pred = arma_forecast(&cur, self.p, self.q).unwrap_or_else(|| {
            if cur.is_empty() {
                0.0
            } else {
                *cur.last().unwrap()
            }
        });
        // Integrate back.
        for lv in levels.iter().rev() {
            pred += lv;
        }
        pred
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Seeded AR(2) process with white uniform innovations.
    fn ar2_series(n: usize) -> Vec<f64> {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(1234);
        let (phi1, phi2, c) = (0.6, 0.3, 5.0);
        let mut ys = vec![50.0, 52.0];
        for t in 2..n {
            let e = rng.gen::<f64>() - 0.5;
            let v = c + phi1 * ys[t - 1] + phi2 * ys[t - 2] + e;
            ys.push(v);
        }
        ys
    }

    #[test]
    fn ar_recovers_ar_process() {
        let ys = ar2_series(400);
        let (coef, _) = fit_ar(&ys, 2).unwrap();
        assert!((coef[0] - 0.6).abs() < 0.1, "phi1 {}", coef[0]);
        assert!((coef[1] - 0.3).abs() < 0.1, "phi2 {}", coef[1]);
        let mut p = Ar { p: 2, max_history: 1024 };
        let pred = p.predict(&ys);
        let truth = 5.0 + 0.6 * ys[399] + 0.3 * ys[398];
        assert!((pred - truth).abs() / truth < 0.05, "pred {pred} vs {truth}");
    }

    #[test]
    fn ar_on_linear_trend_tracks_growth() {
        let ys: Vec<f64> = (0..200).map(|i| 10.0 + 3.0 * i as f64).collect();
        let mut p = Ar::default();
        let pred = p.predict(&ys);
        let truth = 10.0 + 3.0 * 200.0;
        assert!((pred - truth).abs() < 3.0, "pred {pred} vs {truth}");
    }

    #[test]
    fn arma_at_least_matches_naive_on_ar_data() {
        let ys = ar2_series(300);
        let mut arma = Arma::default();
        let pred = arma.predict(&ys);
        let truth = 5.0 + 0.6 * ys[299] + 0.3 * ys[298];
        assert!((pred - truth).abs() / truth < 0.1, "pred {pred} vs {truth}");
    }

    #[test]
    fn arima_handles_random_walk_with_drift() {
        // y_t = y_{t-1} + 2: differencing makes it constant.
        let ys: Vec<f64> = (0..150).map(|i| 100.0 + 2.0 * i as f64).collect();
        let mut p = Arima::default();
        let pred = p.predict(&ys);
        assert!((pred - 400.0).abs() < 2.0, "pred {pred}");
    }

    #[test]
    fn all_fall_back_gracefully_on_tiny_history() {
        let h = [3.0, 4.0];
        assert!(Ar::default().predict(&h).is_finite());
        assert!(Arma::default().predict(&h).is_finite());
        assert!(Arima::default().predict(&h).is_finite());
        let h1 = [3.0];
        assert_eq!(Ar::default().predict(&h1), 3.0);
        assert!(Arima::default().predict(&h1).is_finite());
    }

    #[test]
    fn constant_series_predicts_constant() {
        let h = vec![25.0; 120];
        for pred in [
            Ar::default().predict(&h),
            Arma::default().predict(&h),
            Arima::default().predict(&h),
        ] {
            assert!((pred - 25.0).abs() < 1e-3, "pred {pred}");
        }
    }
}
