//! Epsilon-insensitive support-vector regression — the "Linear and
//! Gaussian SVMs" members of Table II.
//!
//! The dual is solved by cyclic coordinate ascent with exact per-coordinate
//! line search. The bias is absorbed by augmenting the kernel with a
//! constant (`K' = K + 1`), which removes the equality constraint and makes
//! the box-constrained dual separable — each coordinate update is then a
//! clipped exact minimizer, so the sweep converges monotonically. Features
//! and targets are standardized internally.

use ld_linalg::vecops;

use crate::ml::Regressor;

/// Kernel choice for [`Svr`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SvrKernel {
    /// Linear kernel `x . z` (the "Linear SVM").
    Linear,
    /// Gaussian RBF `exp(-gamma ||x - z||^2)` (the "Gaussian SVM").
    Rbf {
        /// Bandwidth parameter.
        gamma: f64,
    },
}

/// Epsilon-SVR trained by coordinate ascent on the (bias-augmented) dual.
#[derive(Debug, Clone)]
pub struct Svr {
    /// Kernel.
    pub kernel: SvrKernel,
    /// Box constraint `C`.
    pub c: f64,
    /// Epsilon-insensitive tube half-width (in standardized target units).
    pub epsilon: f64,
    /// Maximum coordinate-ascent sweeps.
    pub max_sweeps: usize,
    /// Convergence tolerance on the largest coordinate change per sweep.
    pub tol: f64,
    // Fitted state.
    betas: Vec<f64>,
    support: Vec<Vec<f64>>,
    x_mean: Vec<f64>,
    x_std: Vec<f64>,
    y_mean: f64,
    y_std: f64,
}

impl Svr {
    /// A linear SVR with library defaults.
    pub fn linear() -> Self {
        Svr::new(SvrKernel::Linear)
    }

    /// An RBF SVR; `gamma` defaults to `1 / window` after standardization
    /// once fitted (set here to 0.125 for the default window of 8).
    pub fn rbf() -> Self {
        Svr::new(SvrKernel::Rbf { gamma: 0.125 })
    }

    /// SVR with an explicit kernel and default training knobs.
    pub fn new(kernel: SvrKernel) -> Self {
        Svr {
            kernel,
            c: 10.0,
            epsilon: 0.05,
            max_sweeps: 60,
            tol: 1e-4,
            betas: Vec::new(),
            support: Vec::new(),
            x_mean: Vec::new(),
            x_std: Vec::new(),
            y_mean: 0.0,
            y_std: 1.0,
        }
    }

    fn kernel_eval(&self, a: &[f64], b: &[f64]) -> f64 {
        let base = match self.kernel {
            SvrKernel::Linear => vecops::dot(a, b),
            SvrKernel::Rbf { gamma } => (-gamma * vecops::sq_dist(a, b)).exp(),
        };
        base + 1.0 // bias absorption
    }

    fn standardize(&self, x: &[f64]) -> Vec<f64> {
        x.iter()
            .zip(self.x_mean.iter().zip(&self.x_std))
            .map(|(&v, (&m, &s))| (v - m) / s)
            .collect()
    }
}

impl Regressor for Svr {
    fn fit(&mut self, xs: &[Vec<f64>], ys: &[f64]) {
        assert_eq!(xs.len(), ys.len());
        let n = xs.len();
        if n == 0 {
            return;
        }
        let d = xs[0].len();

        // Standardization constants.
        self.x_mean = (0..d)
            .map(|j| xs.iter().map(|x| x[j]).sum::<f64>() / n as f64)
            .collect();
        self.x_std = (0..d)
            .map(|j| {
                let m = self.x_mean[j];
                let v = xs.iter().map(|x| (x[j] - m) * (x[j] - m)).sum::<f64>() / n as f64;
                v.sqrt().max(1e-9)
            })
            .collect();
        self.y_mean = vecops::mean(ys);
        self.y_std = vecops::stddev(ys).max(1e-9);

        let sx: Vec<Vec<f64>> = xs.iter().map(|x| self.standardize(x)).collect();
        let sy: Vec<f64> = ys.iter().map(|y| (y - self.y_mean) / self.y_std).collect();

        // Precompute the kernel matrix (training sets are capped upstream).
        let k: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..n).map(|j| self.kernel_eval(&sx[i], &sx[j])).collect())
            .collect();

        let mut betas = vec![0.0f64; n];
        let mut f = vec![0.0f64; n]; // f(x_i) under current betas
        for _sweep in 0..self.max_sweeps {
            let mut max_delta = 0.0f64;
            for i in 0..n {
                let e = sy[i] - f[i];
                // Epsilon-insensitive subdifferential: move only when the
                // residual leaves the tube.
                let g = if e > self.epsilon {
                    e - self.epsilon
                } else if e < -self.epsilon {
                    e + self.epsilon
                } else {
                    // Inside the tube: shrink beta towards 0 if that keeps
                    // the point inside (exact minimizer is beta s.t. the
                    // residual stays in the tube; shrinking reduces ||beta||).
                    continue;
                };
                let old = betas[i];
                let new = (old + g / k[i][i]).clamp(-self.c, self.c);
                let delta = new - old;
                if delta.abs() < 1e-12 {
                    continue;
                }
                betas[i] = new;
                for j in 0..n {
                    f[j] += delta * k[i][j];
                }
                max_delta = max_delta.max(delta.abs());
            }
            if max_delta < self.tol {
                break;
            }
        }

        // Keep only support vectors.
        self.support = Vec::new();
        self.betas = Vec::new();
        for (i, &b) in betas.iter().enumerate() {
            if b.abs() > 1e-9 {
                self.support.push(sx[i].clone());
                self.betas.push(b);
            }
        }
        // Degenerate case (perfectly flat data inside the tube): keep one
        // pseudo-support so predict returns the mean.
        if self.support.is_empty() {
            self.support.push(sx[0].clone());
            self.betas.push(0.0);
        }
    }

    fn predict(&self, x: &[f64]) -> f64 {
        if self.support.is_empty() {
            return self.y_mean;
        }
        let sx = self.standardize(x);
        let fs: f64 = self
            .betas
            .iter()
            .zip(&self.support)
            .map(|(&b, s)| b * self.kernel_eval(s, &sx))
            .sum();
        fs * self.y_std + self.y_mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_data() -> (Vec<Vec<f64>>, Vec<f64>) {
        // y = 2 a - b + 3 over a small grid.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for a in 0..8 {
            for b in 0..8 {
                xs.push(vec![a as f64, b as f64]);
                ys.push(2.0 * a as f64 - b as f64 + 3.0);
            }
        }
        (xs, ys)
    }

    #[test]
    fn linear_svr_fits_linear_function() {
        let (xs, ys) = linear_data();
        let mut svr = Svr::linear();
        svr.fit(&xs, &ys);
        let mut worst = 0.0f64;
        for (x, y) in xs.iter().zip(&ys) {
            worst = worst.max((svr.predict(x) - y).abs());
        }
        // Tube width eps=0.05 in standardized units ~ 0.25 raw here.
        assert!(worst < 1.0, "worst error {worst}");
        // Extrapolation stays linear-ish.
        let p = svr.predict(&[10.0, 0.0]);
        assert!((p - 23.0).abs() < 3.0, "extrapolated {p}");
    }

    #[test]
    fn rbf_svr_fits_nonlinear_function() {
        // y = sin(x) on [0, 2 pi].
        let xs: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64 * 0.1]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0].sin()).collect();
        let mut svr = Svr::new(SvrKernel::Rbf { gamma: 2.0 });
        svr.epsilon = 0.02;
        svr.fit(&xs, &ys);
        let mut worst = 0.0f64;
        for (x, y) in xs.iter().zip(&ys) {
            worst = worst.max((svr.predict(x) - y).abs());
        }
        assert!(worst < 0.15, "worst error {worst}");
    }

    #[test]
    fn linear_svr_underfits_sine_where_rbf_succeeds() {
        let xs: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64 * 0.1]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (x[0]).sin()).collect();
        let err = |svr: &mut Svr| {
            svr.fit(&xs, &ys);
            xs.iter()
                .zip(&ys)
                .map(|(x, y)| (svr.predict(x) - y).powi(2))
                .sum::<f64>()
        };
        let lin_err = err(&mut Svr::linear());
        let mut rbf = Svr::new(SvrKernel::Rbf { gamma: 2.0 });
        rbf.epsilon = 0.02;
        let rbf_err = err(&mut rbf);
        assert!(rbf_err < lin_err, "rbf {rbf_err} vs linear {lin_err}");
    }

    #[test]
    fn constant_targets_predict_constant() {
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let ys = vec![7.5; 20];
        let mut svr = Svr::linear();
        svr.fit(&xs, &ys);
        assert!((svr.predict(&[5.0]) - 7.5).abs() < 0.2);
    }

    #[test]
    fn sparse_support_set_on_easy_data() {
        let (xs, ys) = linear_data();
        let mut svr = Svr::linear();
        svr.fit(&xs, &ys);
        // The epsilon tube should leave many points as non-support vectors.
        assert!(
            svr.support.len() < xs.len(),
            "support {} of {}",
            svr.support.len(),
            xs.len()
        );
    }
}
