//! Ensemble-of-trees members of Table II: Random Forest and Extra Trees.
//!
//! Random forest: bootstrap-resampled CART trees with `sqrt(d)` candidate
//! features per split, averaged. Extra trees: no bootstrap, random
//! thresholds. Trees are trained rayon-parallel — with CloudInsight
//! refitting its council every five intervals, forest training is a hot
//! path of the baseline evaluation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

use crate::ml::Regressor;
use crate::tree::{DecisionTree, SplitPolicy, TreeConfig};

/// Forest flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForestKind {
    /// Bootstrap + best splits on feature subsets.
    RandomForest,
    /// Full sample + random-threshold splits.
    ExtraTrees,
}

/// A forest of regression trees.
#[derive(Debug, Clone)]
pub struct Forest {
    /// Flavour.
    pub kind: ForestKind,
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree growth configuration (feature subsetting is applied on top).
    pub tree_config: TreeConfig,
    /// RNG seed.
    pub seed: u64,
    trees: Vec<DecisionTree>,
}

impl Forest {
    /// A random forest with library defaults (24 trees, depth 8).
    pub fn random_forest(seed: u64) -> Self {
        Forest::new(ForestKind::RandomForest, 24, seed)
    }

    /// An extra-trees ensemble with library defaults.
    pub fn extra_trees(seed: u64) -> Self {
        Forest::new(ForestKind::ExtraTrees, 24, seed)
    }

    /// A forest with an explicit flavour and size.
    pub fn new(kind: ForestKind, n_trees: usize, seed: u64) -> Self {
        assert!(n_trees >= 1);
        Forest {
            kind,
            n_trees,
            tree_config: TreeConfig::default(),
            seed,
            trees: Vec::new(),
        }
    }

    /// Number of fitted trees.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// True before fitting.
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }
}

impl Regressor for Forest {
    fn fit(&mut self, xs: &[Vec<f64>], ys: &[f64]) {
        assert_eq!(xs.len(), ys.len());
        self.trees.clear();
        if xs.is_empty() {
            return;
        }
        let d = xs[0].len();
        let max_features = ld_api::num::to_count((d as f64).sqrt().round()).clamp(1, d);
        let config = TreeConfig {
            max_features: Some(max_features),
            policy: match self.kind {
                ForestKind::RandomForest => SplitPolicy::Best,
                ForestKind::ExtraTrees => SplitPolicy::Random,
            },
            ..self.tree_config
        };
        let kind = self.kind;
        let seed = self.seed;
        self.trees = (0..self.n_trees)
            .into_par_iter()
            .map(|t| {
                let tree_seed = seed
                    .wrapping_mul(0x9E3779B97F4A7C15)
                    .wrapping_add(t as u64);
                let mut tree = DecisionTree::new(config, tree_seed);
                match kind {
                    ForestKind::RandomForest => {
                        // Bootstrap resample.
                        let mut rng = StdRng::seed_from_u64(tree_seed ^ 0xB0075);
                        let n = xs.len();
                        let mut bx = Vec::with_capacity(n);
                        let mut by = Vec::with_capacity(n);
                        for _ in 0..n {
                            let i = rng.gen_range(0..n);
                            bx.push(xs[i].clone());
                            by.push(ys[i]);
                        }
                        tree.fit(&bx, &by);
                    }
                    ForestKind::ExtraTrees => tree.fit(xs, ys),
                }
                tree
            })
            .collect();
    }

    fn predict(&self, x: &[f64]) -> f64 {
        if self.trees.is_empty() {
            return 0.0;
        }
        self.trees.iter().map(|t| t.predict(x)).sum::<f64>() / self.trees.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_step() -> (Vec<Vec<f64>>, Vec<f64>) {
        let xs: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 / 99.0]).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| {
                let base = if x[0] < 0.5 { 10.0 } else { 20.0 };
                base + ((i * 13) % 7) as f64 * 0.1 // deterministic jitter
            })
            .collect();
        (xs, ys)
    }

    #[test]
    fn random_forest_fits_step() {
        let (xs, ys) = noisy_step();
        let mut f = Forest::random_forest(1);
        f.fit(&xs, &ys);
        assert_eq!(f.len(), 24);
        assert!((f.predict(&[0.2]) - 10.3).abs() < 1.5);
        assert!((f.predict(&[0.8]) - 20.3).abs() < 1.5);
    }

    #[test]
    fn extra_trees_fit_step() {
        let (xs, ys) = noisy_step();
        let mut f = Forest::extra_trees(1);
        f.fit(&xs, &ys);
        assert!((f.predict(&[0.2]) - 10.3).abs() < 2.0);
        assert!((f.predict(&[0.8]) - 20.3).abs() < 2.0);
    }

    #[test]
    fn forest_is_deterministic_per_seed() {
        let (xs, ys) = noisy_step();
        let mut a = Forest::random_forest(7);
        let mut b = Forest::random_forest(7);
        a.fit(&xs, &ys);
        b.fit(&xs, &ys);
        for x in &xs {
            assert_eq!(a.predict(x), b.predict(x));
        }
        let mut c = Forest::random_forest(8);
        c.fit(&xs, &ys);
        assert!(xs.iter().any(|x| a.predict(x) != c.predict(x)));
    }

    #[test]
    fn averaging_smooths_single_tree_variance() {
        // On noisy data, forest train MSE should not exceed a deep single
        // tree's *test-style* variance; we just check the forest prediction
        // is bounded by the target range.
        let (xs, ys) = noisy_step();
        let mut f = Forest::random_forest(3);
        f.fit(&xs, &ys);
        for x in &xs {
            let p = f.predict(x);
            assert!((9.0..22.0).contains(&p), "prediction {p}");
        }
    }

    #[test]
    fn empty_fit_predicts_zero() {
        let mut f = Forest::extra_trees(0);
        f.fit(&[], &[]);
        assert_eq!(f.predict(&[1.0]), 0.0);
    }
}
