//! Time-series smoothing members of Table II: WMA, EMA, Holt–Winters DES
//! and Brown's DES.

use ld_api::Predictor;

/// Weighted moving average with linearly increasing weights (most recent
/// interval weighted highest).
#[derive(Debug, Clone)]
pub struct Wma {
    /// Window length.
    pub window: usize,
}

impl Default for Wma {
    fn default() -> Self {
        Wma { window: 12 }
    }
}

impl Predictor for Wma {
    fn name(&self) -> String {
        "WMA".into()
    }

    fn fit(&mut self, _history: &[f64]) {}

    fn predict(&mut self, history: &[f64]) -> f64 {
        let w = self.window.min(history.len());
        let tail = &history[history.len() - w..];
        let denom = (w * (w + 1) / 2) as f64;
        tail.iter()
            .enumerate()
            .map(|(i, &v)| (i + 1) as f64 * v)
            .sum::<f64>()
            / denom
    }
}

/// Exponential moving average with smoothing factor `alpha`.
#[derive(Debug, Clone)]
pub struct Ema {
    /// Smoothing factor in `(0, 1]`; higher reacts faster.
    pub alpha: f64,
}

impl Default for Ema {
    fn default() -> Self {
        Ema { alpha: 0.35 }
    }
}

impl Predictor for Ema {
    fn name(&self) -> String {
        "EMA".into()
    }

    fn fit(&mut self, _history: &[f64]) {}

    fn predict(&mut self, history: &[f64]) -> f64 {
        // Recompute from (capped) history each call: cheap and stateless.
        let h = crate::features::recent(history, 512);
        let mut s = h[0];
        for &v in &h[1..] {
            s = self.alpha * v + (1.0 - self.alpha) * s;
        }
        s
    }
}

/// Holt's double exponential smoothing (level + trend) — the
/// "Holt-Winters DES" member.
#[derive(Debug, Clone)]
pub struct HoltDes {
    /// Level smoothing factor.
    pub alpha: f64,
    /// Trend smoothing factor.
    pub beta: f64,
}

impl Default for HoltDes {
    fn default() -> Self {
        HoltDes {
            alpha: 0.4,
            beta: 0.2,
        }
    }
}

impl Predictor for HoltDes {
    fn name(&self) -> String {
        "HoltWintersDES".into()
    }

    fn fit(&mut self, _history: &[f64]) {}

    fn predict(&mut self, history: &[f64]) -> f64 {
        let h = crate::features::recent(history, 512);
        if h.len() < 2 {
            return h[0];
        }
        let mut level = h[0];
        let mut trend = h[1] - h[0];
        for &v in &h[1..] {
            let prev_level = level;
            level = self.alpha * v + (1.0 - self.alpha) * (level + trend);
            trend = self.beta * (level - prev_level) + (1.0 - self.beta) * trend;
        }
        level + trend
    }
}

/// Brown's double exponential smoothing (double-smoothed single parameter).
#[derive(Debug, Clone)]
pub struct BrownDes {
    /// Smoothing factor.
    pub alpha: f64,
}

impl Default for BrownDes {
    fn default() -> Self {
        BrownDes { alpha: 0.3 }
    }
}

impl Predictor for BrownDes {
    fn name(&self) -> String {
        "BrownDES".into()
    }

    fn fit(&mut self, _history: &[f64]) {}

    fn predict(&mut self, history: &[f64]) -> f64 {
        let h = crate::features::recent(history, 512);
        let mut s1 = h[0];
        let mut s2 = h[0];
        for &v in &h[1..] {
            s1 = self.alpha * v + (1.0 - self.alpha) * s1;
            s2 = self.alpha * s1 + (1.0 - self.alpha) * s2;
        }
        let a = 2.0 * s1 - s2;
        let b = if self.alpha < 1.0 {
            self.alpha / (1.0 - self.alpha) * (s1 - s2)
        } else {
            0.0
        };
        a + b
    }
}

/// Holt–Winters *triple* exponential smoothing (additive seasonality).
///
/// Table II's pool uses the double (trend-only) variant; the triple
/// variant is provided for seasonal workloads — the classical non-ML
/// answer to Wikipedia-style traffic, and a useful extra expert for a
/// custom [`crate::cloudinsight::CloudInsight::with_members`] council.
#[derive(Debug, Clone)]
pub struct HoltWintersSeasonal {
    /// Level smoothing factor.
    pub alpha: f64,
    /// Trend smoothing factor.
    pub beta: f64,
    /// Seasonal smoothing factor.
    pub gamma: f64,
    /// Season length in intervals (e.g. a day).
    pub period: usize,
}

impl HoltWintersSeasonal {
    /// Triple smoothing with standard factors for the given season length.
    pub fn new(period: usize) -> Self {
        assert!(period >= 2, "season length must be >= 2");
        HoltWintersSeasonal {
            alpha: 0.3,
            beta: 0.05,
            gamma: 0.3,
            period,
        }
    }
}

impl Predictor for HoltWintersSeasonal {
    fn name(&self) -> String {
        format!("HoltWintersSeasonal(p={})", self.period)
    }

    fn fit(&mut self, _history: &[f64]) {}

    fn predict(&mut self, history: &[f64]) -> f64 {
        let p = self.period;
        // Need at least two full seasons to initialize sensibly.
        if history.len() < 2 * p {
            return HoltDes::default().predict(history);
        }
        let h = crate::features::recent(history, 8 * p.max(64));
        // Initialize level/trend from the first season, seasonal indices
        // from deviations of the first season around its mean.
        let s0_mean = h[..p].iter().sum::<f64>() / p as f64;
        let s1_mean = h[p..2 * p].iter().sum::<f64>() / p as f64;
        let mut level = s0_mean;
        let mut trend = (s1_mean - s0_mean) / p as f64;
        let mut seasonal: Vec<f64> = h[..p].iter().map(|v| v - s0_mean).collect();

        for (t, &v) in h.iter().enumerate().skip(p) {
            let s_idx = t % p;
            let prev_level = level;
            level = self.alpha * (v - seasonal[s_idx]) + (1.0 - self.alpha) * (level + trend);
            trend = self.beta * (level - prev_level) + (1.0 - self.beta) * trend;
            seasonal[s_idx] =
                self.gamma * (v - level) + (1.0 - self.gamma) * seasonal[s_idx];
        }
        let next_idx = h.len() % p;
        level + trend + seasonal[next_idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_smoothers_are_exact_on_constant_series() {
        let h = vec![42.0; 60];
        assert!((Wma::default().predict(&h) - 42.0).abs() < 1e-9);
        assert!((Ema::default().predict(&h) - 42.0).abs() < 1e-9);
        assert!((HoltDes::default().predict(&h) - 42.0).abs() < 1e-9);
        assert!((BrownDes::default().predict(&h) - 42.0).abs() < 1e-9);
    }

    #[test]
    fn wma_weights_recent_values_more() {
        let mut p = Wma { window: 3 };
        // (1*10 + 2*20 + 3*60) / 6 = 38.33
        let v = p.predict(&[10.0, 20.0, 60.0]);
        assert!((v - 38.333333333).abs() < 1e-6);
        // Recency: swapping the tail changes the result upward.
        let up = p.predict(&[60.0, 20.0, 10.0]);
        assert!(v > up);
    }

    #[test]
    fn trend_methods_extrapolate_a_ramp() {
        let h: Vec<f64> = (0..80).map(|i| 5.0 + 2.0 * i as f64).collect();
        let next = 5.0 + 2.0 * 80.0;
        let holt = HoltDes::default().predict(&h);
        let brown = BrownDes::default().predict(&h);
        assert!((holt - next).abs() < 2.0, "holt {holt} vs {next}");
        assert!((brown - next).abs() < 6.0, "brown {brown} vs {next}");
        // EMA and WMA lag a ramp — both must undershoot the true next value.
        assert!(Ema::default().predict(&h) < next);
        assert!(Wma { window: 12 }.predict(&h) < next);
    }

    #[test]
    fn ema_alpha_controls_responsiveness() {
        let mut h = vec![10.0; 50];
        h.push(100.0);
        let fast = Ema { alpha: 0.9 }.predict(&h);
        let slow = Ema { alpha: 0.1 }.predict(&h);
        assert!(fast > slow);
        assert!(fast > 80.0 && slow < 30.0);
    }

    #[test]
    fn single_value_history_is_safe() {
        let h = [7.0];
        assert_eq!(Wma::default().predict(&h), 7.0);
        assert_eq!(Ema::default().predict(&h), 7.0);
        assert_eq!(HoltDes::default().predict(&h), 7.0);
        assert_eq!(BrownDes::default().predict(&h), 7.0);
        assert_eq!(HoltWintersSeasonal::new(4).predict(&h), 7.0);
    }

    #[test]
    fn triple_smoothing_tracks_a_seasonal_pattern() {
        // Period-6 additive pattern on a flat level.
        let pattern = [10.0, 30.0, 50.0, 40.0, 20.0, 5.0];
        let mut h = Vec::new();
        for _ in 0..12 {
            h.extend_from_slice(&pattern);
        }
        let mut hw = HoltWintersSeasonal::new(6);
        let pred = hw.predict(&h);
        // Next value is the first pattern entry.
        assert!((pred - 10.0).abs() < 4.0, "pred {pred}");
        // The non-seasonal smoothers cannot get close to the trough.
        let holt = HoltDes::default().predict(&h);
        assert!((pred - 10.0).abs() < (holt - 10.0).abs());
    }

    #[test]
    fn triple_smoothing_tracks_season_plus_trend() {
        // Rising level with a period-4 wave on top.
        let h: Vec<f64> = (0..80)
            .map(|i| 100.0 + 2.0 * i as f64 + [0.0, 15.0, 0.0, -15.0][i % 4])
            .collect();
        let mut hw = HoltWintersSeasonal::new(4);
        let pred = hw.predict(&h);
        let truth = 100.0 + 2.0 * 80.0 + 0.0;
        assert!((pred - truth).abs() < 8.0, "pred {pred} vs {truth}");
    }

    #[test]
    fn triple_falls_back_when_history_shorter_than_two_seasons() {
        let h: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let mut hw = HoltWintersSeasonal::new(8);
        // Falls back to Holt's DES, which extrapolates the ramp.
        let pred = hw.predict(&h);
        assert!((pred - 10.0).abs() < 1.0, "pred {pred}");
    }
}
