//! CloudInsight (Kim et al., IEEE CLOUD 2018) — a council of experts that
//! dynamically picks the best of 21 member predictors.
//!
//! Table II of the paper lists the pool: 2 naive, 6 regression, 7
//! time-series and 6 ML predictors. At every interval all members predict;
//! their recent one-step errors are tracked, and every `reselect_every`
//! intervals (5 in the paper: "CloudInsight also dynamically rebuilds its
//! predictors after every five intervals") the member with the lowest
//! recent error becomes the council's voice.

use std::collections::VecDeque;

use ld_api::Predictor;
use ld_telemetry::Tracer;
use rayon::prelude::*;

use crate::arima::{Ar, Arima, Arma};
use crate::boosting::GradientBoosting;
use crate::forest::Forest;
use crate::ml::MlPredictor;
use crate::naive::{KnnPredictor, MeanPredictor};
use crate::regression::all_regression_members;
use crate::smoothing::{BrownDes, Ema, HoltDes, Wma};
use crate::svr::Svr;
use crate::tree::{DecisionTree, TreeConfig};

/// Builds the full 21-member pool of Table II.
pub fn table2_pool(seed: u64) -> Vec<Box<dyn Predictor>> {
    let mut pool: Vec<Box<dyn Predictor>> = Vec::with_capacity(21);
    // Naive (2).
    pool.push(Box::new(MeanPredictor::default()));
    pool.push(Box::new(KnnPredictor::default()));
    // Regression (6).
    pool.extend(all_regression_members());
    // Time-series (7).
    pool.push(Box::new(Wma::default()));
    pool.push(Box::new(Ema::default()));
    pool.push(Box::new(HoltDes::default()));
    pool.push(Box::new(BrownDes::default()));
    pool.push(Box::new(Ar::default()));
    pool.push(Box::new(Arma::default()));
    pool.push(Box::new(Arima::default()));
    // ML (6).
    pool.push(Box::new(MlPredictor::new("LinearSVR", Svr::linear())));
    pool.push(Box::new(MlPredictor::new("GaussianSVR", Svr::rbf())));
    pool.push(Box::new(MlPredictor::new(
        "DecisionTree",
        DecisionTree::new(TreeConfig::default(), seed),
    )));
    pool.push(Box::new(MlPredictor::new(
        "RandomForest",
        Forest::random_forest(seed),
    )));
    pool.push(Box::new(MlPredictor::new(
        "GradientBoosting",
        GradientBoosting::new(seed),
    )));
    pool.push(Box::new(MlPredictor::new(
        "ExtraTrees",
        Forest::extra_trees(seed),
    )));
    pool
}

/// The council-of-experts ensemble.
pub struct CloudInsight {
    members: Vec<Box<dyn Predictor>>,
    /// Reselection cadence in intervals.
    pub reselect_every: usize,
    /// How many recent errors per member inform selection.
    pub eval_window: usize,
    /// Member count at or above which the fit/predict pool sweeps run
    /// member-parallel — and only when more than one rayon worker exists:
    /// on a single-thread pool the par_iter plumbing is pure overhead
    /// (measured as the cloudinsight-window row dipping below 1x), so
    /// single-core hosts always sweep serially. Each worker owns one
    /// member and its own output slot, so results are bitwise identical
    /// to the serial sweep — this is purely a performance knob
    /// (`usize::MAX` forces serial, `0` lifts the size restriction).
    pub parallel_threshold: usize,
    errors: Vec<VecDeque<f64>>,
    /// Member predictions awaiting their actual, and the interval index
    /// they predicted.
    pending: Option<(usize, Vec<f64>)>,
    active: usize,
    intervals_since_reselect: usize,
    /// Span tracer for the member sweeps. Disabled by default; spans are
    /// keyed by member/interval index, so traced output is deterministic
    /// even under the member-parallel sweep.
    tracer: Tracer,
}

impl CloudInsight {
    /// A council over the full Table II pool.
    pub fn new(seed: u64) -> Self {
        Self::with_members(table2_pool(seed))
    }

    /// A council over a custom member pool (the CloudInsight design point:
    /// "employs any predictors of users' choice").
    pub fn with_members(members: Vec<Box<dyn Predictor>>) -> Self {
        assert!(!members.is_empty(), "council needs at least one member");
        let n = members.len();
        CloudInsight {
            members,
            reselect_every: 5,
            eval_window: 16,
            parallel_threshold: 16,
            errors: vec![VecDeque::new(); n],
            pending: None,
            active: 0,
            intervals_since_reselect: 0,
            tracer: Tracer::disabled(),
        }
    }

    /// Returns the council with span tracing enabled (or replaced).
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Number of members.
    pub fn member_count(&self) -> usize {
        self.members.len()
    }

    /// Name of the currently selected member.
    pub fn active_member(&self) -> String {
        self.members[self.active].name()
    }

    /// Smoothed relative error used for member scoring: `|p - a| / (a + 1)`
    /// (stays defined when an interval has zero arrivals).
    fn score_error(pred: f64, actual: f64) -> f64 {
        (pred - actual).abs() / (actual.abs() + 1.0)
    }

    fn settle_pending(&mut self, history: &[f64]) {
        if let Some((idx, preds)) = &self.pending {
            if history.len() > *idx {
                let actual = history[*idx];
                for (m, &p) in preds.iter().enumerate() {
                    let e = Self::score_error(p, actual);
                    self.errors[m].push_back(e);
                    if self.errors[m].len() > self.eval_window {
                        self.errors[m].pop_front();
                    }
                }
                self.pending = None;
                self.intervals_since_reselect += 1;
            }
        }
    }

    fn maybe_reselect(&mut self) {
        if self.intervals_since_reselect < self.reselect_every {
            return;
        }
        self.intervals_since_reselect = 0;
        let mut best = self.active;
        let mut best_err = f64::INFINITY;
        for (m, errs) in self.errors.iter().enumerate() {
            if errs.is_empty() {
                continue;
            }
            // Median recent error: one blown-up interval (a burst no member
            // saw coming) must not disqualify an otherwise strong member.
            let mut sorted: Vec<f64> = errs.iter().cloned().collect();
            sorted.sort_by(f64::total_cmp);
            let median = sorted[sorted.len() / 2];
            if median < best_err {
                best_err = median;
                best = m;
            }
        }
        self.active = best;
    }
}

impl Predictor for CloudInsight {
    fn name(&self) -> String {
        "CloudInsight".into()
    }

    fn fit(&mut self, history: &[f64]) {
        for e in &mut self.errors {
            e.clear();
        }
        self.pending = None;
        self.active = 0;
        self.intervals_since_reselect = 0;

        // Warm-start member scores on the tail of the fit history so the
        // first selection is informed rather than arbitrary. Members are
        // independent, so fitting and warm-scoring proceed member-wise:
        // each member fits on the full history, then replays the tail.
        // Past `parallel_threshold` members the sweep runs parallel; every
        // worker owns exactly one (member, error-deque) pair and performs
        // the identical serial computation, so the result is bitwise
        // identical either way.
        let warm = self.eval_window.min(history.len().saturating_sub(2));
        let warm_start = history.len() - warm;
        let fit_guard = self.tracer.span("cloudinsight.fit");
        let fit_tracer = fit_guard.tracer();
        let warm_member = |m: usize, member: &mut Box<dyn Predictor>, errs: &mut VecDeque<f64>| {
            // Member spans are keyed by pool index, not worker identity, so
            // the traced tree is identical whichever sweep mode runs.
            let _member_guard = fit_tracer.span_at("member", m as u64);
            member.fit(history);
            for i in warm_start..history.len() {
                let p = member.predict(&history[..i]);
                let e = Self::score_error(if p.is_finite() { p } else { 0.0 }, history[i]);
                errs.push_back(e);
            }
        };
        if self.members.len() >= self.parallel_threshold && rayon::current_num_threads() > 1 {
            let work: Vec<_> = self
                .members
                .iter_mut()
                .zip(self.errors.iter_mut())
                .enumerate()
                .collect();
            work.into_par_iter()
                .for_each(|(m, (member, errs))| warm_member(m, member, errs));
        } else {
            for (m, (member, errs)) in self
                .members
                .iter_mut()
                .zip(self.errors.iter_mut())
                .enumerate()
            {
                warm_member(m, member, errs);
            }
        }
        drop(fit_guard);
        self.intervals_since_reselect = self.reselect_every; // force initial pick
        self.maybe_reselect();
    }

    fn predict(&mut self, history: &[f64]) -> f64 {
        self.settle_pending(history);
        self.maybe_reselect();
        // All members predict every interval (their errors feed selection).
        // Past `parallel_threshold` members the sweep runs member-parallel;
        // each worker owns one member and its output slot, so predictions
        // land in member order regardless of scheduling — bitwise identical
        // to the serial sweep.
        // One span per interval, keyed by history length (the interval
        // index), covering the whole member sweep.
        let _sweep_guard = self.tracer.span_at("cloudinsight.predict", history.len() as u64);
        let sanitize = |p: f64| if p.is_finite() { p } else { 0.0 };
        let mut preds = vec![0.0; self.members.len()];
        if self.members.len() >= self.parallel_threshold && rayon::current_num_threads() > 1 {
            let work: Vec<(&mut Box<dyn Predictor>, &mut f64)> =
                self.members.iter_mut().zip(preds.iter_mut()).collect();
            work.into_par_iter().for_each(|(member, slot)| {
                *slot = sanitize(member.predict(history));
            });
        } else {
            for (member, slot) in self.members.iter_mut().zip(preds.iter_mut()) {
                *slot = sanitize(member.predict(history));
            }
        }
        let out = preds[self.active];
        self.pending = Some((history.len(), preds));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_has_twenty_one_distinct_members() {
        let pool = table2_pool(0);
        assert_eq!(pool.len(), 21);
        let names: std::collections::HashSet<String> = pool.iter().map(|m| m.name()).collect();
        assert_eq!(names.len(), 21, "duplicate member names: {names:?}");
    }

    /// A rigged member: perfect on purpose.
    struct Oracle {
        next: f64,
    }
    impl Predictor for Oracle {
        fn name(&self) -> String {
            "Oracle".into()
        }
        fn fit(&mut self, _h: &[f64]) {}
        fn predict(&mut self, h: &[f64]) -> f64 {
            // The test series is h[i] = i, so the next value is len().
            self.next = h.len() as f64;
            self.next
        }
    }

    /// A rigged member: always wrong.
    struct Wrong;
    impl Predictor for Wrong {
        fn name(&self) -> String {
            "Wrong".into()
        }
        fn fit(&mut self, _h: &[f64]) {}
        fn predict(&mut self, _h: &[f64]) -> f64 {
            1e9
        }
    }

    #[test]
    fn council_converges_to_the_best_member() {
        let members: Vec<Box<dyn Predictor>> =
            vec![Box::new(Wrong), Box::new(Oracle { next: 0.0 })];
        let mut ci = CloudInsight::with_members(members);
        let series: Vec<f64> = (0..120).map(|i| i as f64).collect();
        ci.fit(&series[..60]);
        // Walk forward; after at most one reselection cycle the council
        // must speak with the oracle's voice.
        let mut last_pred = 0.0;
        for i in 60..120 {
            last_pred = ci.predict(&series[..i]);
        }
        assert_eq!(ci.active_member(), "Oracle");
        assert_eq!(last_pred, 119.0);
    }

    #[test]
    fn warm_start_picks_a_sane_initial_member() {
        let members: Vec<Box<dyn Predictor>> =
            vec![Box::new(Wrong), Box::new(Oracle { next: 0.0 })];
        let mut ci = CloudInsight::with_members(members);
        let series: Vec<f64> = (0..60).map(|i| i as f64).collect();
        ci.fit(&series);
        // Selection happened during fit already.
        assert_eq!(ci.active_member(), "Oracle");
    }

    #[test]
    fn reselection_cadence_is_respected() {
        // Oracle only becomes good later; with cadence 5 the council can
        // switch only on multiples of 5 settled intervals.
        let members: Vec<Box<dyn Predictor>> =
            vec![Box::new(Wrong), Box::new(Oracle { next: 0.0 })];
        let mut ci = CloudInsight::with_members(members);
        ci.reselect_every = 5;
        let series: Vec<f64> = (0..100).map(|i| i as f64).collect();
        ci.fit(&series[..50]);
        let initial = ci.active_member();
        assert_eq!(initial, "Oracle");
        // Walking forward keeps it on the oracle (stable selection).
        for i in 50..100 {
            ci.predict(&series[..i]);
            assert_eq!(ci.active_member(), "Oracle");
        }
    }

    #[test]
    fn parallel_pool_sweep_matches_serial_bitwise() {
        let series: Vec<f64> = (0..160)
            .map(|i| 50.0 + 15.0 * ((i as f64) * 0.17).sin() + (i % 7) as f64)
            .collect();
        let mut serial = CloudInsight::new(3);
        serial.parallel_threshold = usize::MAX;
        let mut parallel = CloudInsight::new(3);
        parallel.parallel_threshold = 0;
        serial.fit(&series[..120]);
        parallel.fit(&series[..120]);
        assert_eq!(serial.active_member(), parallel.active_member());
        for i in 120..160 {
            let ps = serial.predict(&series[..i]);
            let pp = parallel.predict(&series[..i]);
            assert_eq!(
                ps.to_bits(),
                pp.to_bits(),
                "interval {i}: serial {ps} vs parallel {pp}"
            );
            assert_eq!(serial.active_member(), parallel.active_member());
        }
    }

    #[test]
    fn full_pool_predicts_reasonably_on_smooth_series() {
        let mut ci = CloudInsight::new(0);
        let series: Vec<f64> = (0..200)
            .map(|i| 100.0 + 20.0 * ((i as f64) * 0.2).sin())
            .collect();
        ci.fit(&series[..150]);
        let mut errs = Vec::new();
        for i in 150..200 {
            let p = ci.predict(&series[..i]);
            errs.push(((p - series[i]) / series[i]).abs());
        }
        let mape = 100.0 * errs.iter().sum::<f64>() / errs.len() as f64;
        assert!(mape < 12.0, "council MAPE {mape}");
    }
}
