//! Radix-2 Cooley–Tukey FFT — the pattern-detection substrate of
//! CloudScale.
//!
//! CloudScale runs an FFT over the recent workload history to find a
//! dominant repeating period. Only the forward transform of real input is
//! needed; the implementation is an iterative in-place radix-2 decimation
//! in time over a minimal complex type.

/// A complex number (kept private-simple; no external num crates).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Constructor.
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Magnitude `sqrt(re^2 + im^2)`.
    pub fn abs(&self) -> f64 {
        self.re.hypot(self.im)
    }

    fn mul(self, o: Complex) -> Complex {
        Complex::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }

    fn add(self, o: Complex) -> Complex {
        Complex::new(self.re + o.re, self.im + o.im)
    }

    fn sub(self, o: Complex) -> Complex {
        Complex::new(self.re - o.re, self.im - o.im)
    }
}

/// In-place iterative radix-2 FFT.
///
/// # Panics
/// Panics unless `buf.len()` is a power of two (callers truncate real
/// input to the largest power of two; see [`fft_real`]).
pub fn fft_inplace(buf: &mut [Complex]) {
    let n = buf.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            buf.swap(i, j);
        }
    }
    // Butterflies.
    let mut len = 2;
    while len <= n {
        let ang = -2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::new(ang.cos(), ang.sin());
        for chunk in buf.chunks_mut(len) {
            let mut w = Complex::new(1.0, 0.0);
            let half = len / 2;
            for k in 0..half {
                let u = chunk[k];
                let v = chunk[k + half].mul(w);
                chunk[k] = u.add(v);
                chunk[k + half] = u.sub(v);
                w = w.mul(wlen);
            }
        }
        len <<= 1;
    }
}

/// FFT of a real signal truncated to the *most recent* power-of-two-length
/// suffix. Returns the complex spectrum (length = that power of two).
pub fn fft_real(signal: &[f64]) -> Vec<Complex> {
    if signal.is_empty() {
        return Vec::new();
    }
    let n = if signal.len().is_power_of_two() {
        signal.len()
    } else {
        signal.len().next_power_of_two() / 2
    };
    let tail = &signal[signal.len() - n..];
    let mut buf: Vec<Complex> = tail.iter().map(|&v| Complex::new(v, 0.0)).collect();
    fft_inplace(&mut buf);
    buf
}

/// Finds the dominant repeating period in a signal, if any.
///
/// Runs [`fft_real`], scans non-DC bins up to Nyquist, and returns
/// `Some(period_in_intervals)` when the strongest bin holds at least
/// `min_energy_ratio` of the non-DC spectral energy — CloudScale's
/// "repeating pattern exists" test. The period is `n / k` rounded.
pub fn dominant_period(signal: &[f64], min_energy_ratio: f64) -> Option<usize> {
    let spec = fft_real(signal);
    let n = spec.len();
    if n < 8 {
        return None;
    }
    let energies: Vec<f64> = (1..n / 2).map(|k| spec[k].abs().powi(2)).collect();
    let total: f64 = energies.iter().sum();
    if total <= 0.0 {
        return None;
    }
    let (best_k, best_e) = energies
        .iter()
        .enumerate()
        .map(|(i, &e)| (i + 1, e))
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .unwrap_or((0, f64::NAN));
    if best_e / total >= min_energy_ratio {
        let period = ld_api::num::to_count((n as f64 / best_k as f64).round());
        if period >= 2 && period < n {
            return Some(period);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut buf = vec![Complex::new(0.0, 0.0); 8];
        buf[0] = Complex::new(1.0, 0.0);
        fft_inplace(&mut buf);
        for c in &buf {
            assert!((c.abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn fft_of_constant_concentrates_in_dc() {
        let mut buf = vec![Complex::new(3.0, 0.0); 16];
        fft_inplace(&mut buf);
        assert!((buf[0].abs() - 48.0).abs() < 1e-9);
        for c in &buf[1..] {
            assert!(c.abs() < 1e-9);
        }
    }

    #[test]
    fn fft_detects_pure_sinusoid_bin() {
        // cos(2 pi * 4 t / 64): energy in bins 4 and 60.
        let n = 64;
        let sig: Vec<f64> = (0..n)
            .map(|t| (2.0 * std::f64::consts::PI * 4.0 * t as f64 / n as f64).cos())
            .collect();
        let spec = fft_real(&sig);
        let mags: Vec<f64> = spec.iter().map(|c| c.abs()).collect();
        let peak = mags
            .iter()
            .enumerate()
            .take(n / 2)
            .skip(1)
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(peak, 4);
    }

    #[test]
    fn parseval_energy_conserved() {
        let sig: Vec<f64> = (0..32).map(|i| ((i * 7) % 13) as f64 - 6.0).collect();
        let spec = fft_real(&sig);
        let time_energy: f64 = sig.iter().map(|v| v * v).sum();
        let freq_energy: f64 = spec.iter().map(|c| c.abs().powi(2)).sum::<f64>() / 32.0;
        assert!((time_energy - freq_energy).abs() < 1e-9);
    }

    #[test]
    fn dominant_period_with_nan_input_is_none_not_a_panic() {
        // Regression: the peak-bin scan used partial_cmp().unwrap(), which
        // panicked as soon as one NaN reached the spectrum. A NaN-bearing
        // signal must now deterministically report "no period".
        let mut sig: Vec<f64> = (0..64)
            .map(|t| (2.0 * std::f64::consts::PI * t as f64 / 8.0).sin())
            .collect();
        sig[10] = f64::NAN;
        assert_eq!(dominant_period(&sig, 0.2), None);
        let all_nan = vec![f64::NAN; 32];
        assert_eq!(dominant_period(&all_nan, 0.2), None);
    }

    #[test]
    fn dominant_period_found_for_seasonal_signal() {
        let period = 24;
        let sig: Vec<f64> = (0..240)
            .map(|t| 100.0 + 50.0 * (2.0 * std::f64::consts::PI * t as f64 / period as f64).sin())
            .collect();
        // 240 -> truncated to 128 most recent points; period 24 doesn't
        // divide 128, so accept nearby bins: n/k for k=5 is 25.6 -> 26, k=6
        // is 21.3 -> 21. The detected period must be within 20% of truth.
        let p = dominant_period(&sig, 0.2).expect("seasonal signal not detected");
        assert!(
            (p as f64 - period as f64).abs() / period as f64 <= 0.2,
            "period {p}"
        );
    }

    #[test]
    fn dominant_period_absent_for_noise_like_signal() {
        // Deterministic pseudo-noise (LCG hash per index) spread across bins.
        let sig: Vec<f64> = (0..128u64)
            .map(|i| {
                let x = i
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((x >> 33) % 97) as f64
            })
            .collect();
        assert_eq!(dominant_period(&sig, 0.5), None);
    }

    #[test]
    fn fft_real_handles_non_power_lengths() {
        let sig = vec![1.0; 100];
        let spec = fft_real(&sig);
        assert_eq!(spec.len(), 64);
    }

    #[test]
    fn fft_real_empty() {
        assert!(fft_real(&[]).is_empty());
    }
}
