//! Wrapper turning a batch regressor into a walk-forward [`Predictor`].
//!
//! The ML members of Table II (SVR, trees, forests, boosting) are batch
//! learners: they fit on `(window, next)` pairs and predict from the latest
//! window. This wrapper handles the windowing, caps the training history,
//! and refits every `refit_every` intervals (CloudInsight rebuilds its
//! members every five intervals; standalone use keeps the same cadence).

use ld_api::Predictor;

use crate::features::{last_window, recent, window_dataset};

/// A batch regression model over fixed-width window features.
pub trait Regressor: Send {
    /// Fits the model to the dataset (replacing any previous fit).
    fn fit(&mut self, xs: &[Vec<f64>], ys: &[f64]);
    /// Predicts the target for one feature vector.
    fn predict(&self, x: &[f64]) -> f64;
}

/// Adapts a [`Regressor`] to the walk-forward [`Predictor`] interface.
pub struct MlPredictor<R: Regressor> {
    name: String,
    regressor: R,
    /// Feature-window width.
    pub window: usize,
    /// Refit cadence in intervals.
    pub refit_every: usize,
    /// Cap on training history length (most recent values).
    pub max_train: usize,
    fitted: bool,
    last_fit_len: usize,
}

impl<R: Regressor> MlPredictor<R> {
    /// Wraps a regressor with the given display name and defaults
    /// (window 8, refit every 5 intervals, last 1024 values).
    pub fn new(name: impl Into<String>, regressor: R) -> Self {
        MlPredictor {
            name: name.into(),
            regressor,
            window: 8,
            refit_every: 5,
            max_train: 1024,
            fitted: false,
            last_fit_len: 0,
        }
    }

    /// Builder-style window override.
    pub fn with_window(mut self, window: usize) -> Self {
        assert!(window > 0);
        self.window = window;
        self
    }

    fn refit(&mut self, history: &[f64]) {
        let h = recent(history, self.max_train);
        let (xs, ys) = window_dataset(h, self.window);
        if xs.is_empty() {
            self.fitted = false;
            return;
        }
        self.regressor.fit(&xs, &ys);
        self.fitted = true;
        self.last_fit_len = history.len();
    }
}

impl<R: Regressor> Predictor for MlPredictor<R> {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn fit(&mut self, history: &[f64]) {
        self.refit(history);
    }

    fn predict(&mut self, history: &[f64]) -> f64 {
        if !self.fitted || history.len() >= self.last_fit_len + self.refit_every {
            self.refit(history);
        }
        if !self.fitted {
            return *history.last().unwrap();
        }
        let x = last_window(history, self.window);
        self.regressor.predict(&x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Counts fits; predicts the mean of its window.
    struct CountingMean {
        fits: usize,
    }

    impl Regressor for CountingMean {
        fn fit(&mut self, _xs: &[Vec<f64>], _ys: &[f64]) {
            self.fits += 1;
        }
        fn predict(&self, x: &[f64]) -> f64 {
            x.iter().sum::<f64>() / x.len() as f64
        }
    }

    #[test]
    fn refits_on_cadence_not_every_call() {
        let mut p = MlPredictor::new("m", CountingMean { fits: 0 });
        let mut h: Vec<f64> = (0..40).map(|i| i as f64).collect();
        p.fit(&h);
        assert_eq!(p.regressor.fits, 1);
        for _ in 0..10 {
            h.push(h.len() as f64);
            p.predict(&h);
        }
        // 10 new intervals at cadence 5 -> exactly 2 more fits.
        assert_eq!(p.regressor.fits, 3);
    }

    #[test]
    fn too_short_history_falls_back_to_last_value() {
        let mut p = MlPredictor::new("m", CountingMean { fits: 0 }).with_window(8);
        p.fit(&[1.0, 2.0]);
        assert_eq!(p.predict(&[1.0, 2.0, 9.0]), 9.0);
    }

    #[test]
    fn prediction_uses_latest_window() {
        let mut p = MlPredictor::new("m", CountingMean { fits: 0 }).with_window(2);
        let h: Vec<f64> = (0..30).map(|i| i as f64).collect();
        p.fit(&h);
        // window [28, 29] -> mean 28.5
        assert_eq!(p.predict(&h), 28.5);
    }
}
