//! CloudScale (Shen et al., SoCC 2011) — FFT pattern detection plus a
//! discrete-time Markov chain.
//!
//! CloudScale first runs an FFT over the recent history to test for a
//! dominant repeating pattern; when one exists, the prediction is the value
//! one detected period ago. Otherwise it falls back to a first-order
//! discrete-time Markov chain over quantized load states and predicts the
//! expected next state. This structure makes it strong on seasonal
//! workloads (Wikipedia) and weak on non-periodic ones (Google, Facebook) —
//! exactly the behaviour Fig. 2 of the paper shows.

use ld_api::Predictor;

use crate::features::recent;
use crate::fft::dominant_period;

/// The CloudScale predictor.
#[derive(Debug, Clone)]
pub struct CloudScale {
    /// History window the FFT inspects (truncated to a power of two).
    pub fft_window: usize,
    /// Minimum share of non-DC spectral energy for a period to count as a
    /// repeating pattern.
    pub min_energy_ratio: f64,
    /// History window for the Markov fallback.
    pub markov_window: usize,
    /// Number of quantized load states.
    pub markov_states: usize,
}

impl Default for CloudScale {
    fn default() -> Self {
        CloudScale {
            fft_window: 512,
            // CloudScale was built for workloads with repeating patterns
            // and engages its FFT signature eagerly; a modest energy share
            // in the strongest bin counts as a pattern. This is what makes
            // it accurate on seasonal traces and fragile on bursty ones
            // (paper Fig. 2) — burst episodes concentrate low-frequency
            // energy and get mistaken for periodicity.
            min_energy_ratio: 0.22,
            markov_window: 256,
            markov_states: 8,
        }
    }
}

impl CloudScale {
    /// Refines an FFT period estimate by maximizing the autocorrelation in
    /// a +/-25 % neighbourhood. FFT bins quantize the period to `n / k`,
    /// which misses periods that do not divide the window (a daily cycle
    /// in a 512-sample window, say); CloudScale's signature extraction
    /// aligns the repeating window exactly, which this refinement mirrors.
    fn refine_period(history: &[f64], p0: usize) -> usize {
        let lo = (p0 - p0 / 4).max(2);
        let hi = p0 + p0 / 4;
        let mean = history.iter().sum::<f64>() / history.len() as f64;
        let denom: f64 = history.iter().map(|v| (v - mean) * (v - mean)).sum();
        if denom <= 1e-12 {
            return p0;
        }
        let mut best = (p0, f64::NEG_INFINITY);
        for p in lo..=hi {
            if p >= history.len() {
                break;
            }
            let num: f64 = (0..history.len() - p)
                .map(|i| (history[i] - mean) * (history[i + p] - mean))
                .sum();
            let ac = num / denom;
            if ac > best.1 {
                best = (p, ac);
            }
        }
        best.0
    }

    /// Markov-chain fallback prediction.
    fn markov_predict(&self, history: &[f64]) -> f64 {
        let h = recent(history, self.markov_window);
        let n = h.len();
        if n < 3 {
            return h[n - 1];
        }
        let lo = h.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = h.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        if hi - lo < 1e-12 {
            return h[n - 1];
        }
        let b = self.markov_states;
        let width = (hi - lo) / b as f64;
        let bin = |v: f64| -> usize {
            ld_api::num::to_index((v - lo) / (hi - lo) * b as f64, b - 1)
        };
        // First-order discrete-time Markov chain over quantized load
        // states: predict the *most likely next state* and report its
        // midpoint. The quantization is the point — CloudScale reasons in
        // coarse load levels, which works when the workload revisits the
        // same levels and degrades when bursts stretch the state range.
        let mut counts = vec![0u32; b * b];
        for w in h.windows(2) {
            counts[bin(w[0]) * b + bin(w[1])] += 1;
        }
        let cur = bin(h[n - 1]);
        let row = &counts[cur * b..(cur + 1) * b];
        let (best_state, best_count) = row
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .expect("non-empty row");
        if *best_count == 0 {
            return h[n - 1];
        }
        lo + (best_state as f64 + 0.5) * width
    }
}

impl Predictor for CloudScale {
    fn name(&self) -> String {
        "CloudScale".into()
    }

    fn fit(&mut self, _history: &[f64]) {}

    fn predict(&mut self, history: &[f64]) -> f64 {
        let h = recent(history, self.fft_window);
        // Detrend by removing the mean so DC leakage doesn't mask patterns.
        let mean = h.iter().sum::<f64>() / h.len() as f64;
        let centered: Vec<f64> = h.iter().map(|v| v - mean).collect();
        if let Some(raw_period) = dominant_period(&centered, self.min_energy_ratio) {
            let period = Self::refine_period(h, raw_period);
            if history.len() >= period {
                return history[history.len() - period];
            }
        }
        self.markov_predict(history)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn periodic_signal_predicted_by_pattern() {
        // Period 32 sine, amplitude large: FFT path engages.
        let period = 32.0;
        let h: Vec<f64> = (0..512)
            .map(|t| 100.0 + 50.0 * (2.0 * std::f64::consts::PI * t as f64 / period).sin())
            .collect();
        let mut cs = CloudScale::default();
        let pred = cs.predict(&h);
        // True next value at t = 512 (period divides 512 exactly).
        let truth = 100.0 + 50.0 * (2.0 * std::f64::consts::PI * 512.0 / period).sin();
        assert!((pred - truth).abs() < 5.0, "pred {pred} truth {truth}");
    }

    #[test]
    fn nonperiodic_signal_uses_markov_fallback() {
        // Two-state flip-flop noise... actually make a slow random-walk-ish
        // deterministic wobble with no single dominant frequency.
        let h: Vec<f64> = (0..300)
            .map(|t| 50.0 + ((t * t * 2654435761usize) % 41) as f64)
            .collect();
        let mut cs = CloudScale::default();
        let pred = cs.predict(&h);
        // Markov fallback stays within the observed range.
        assert!((50.0..=91.0).contains(&pred), "pred {pred}");
    }

    #[test]
    fn markov_chain_learns_deterministic_cycle() {
        // Values cycle 10 -> 20 -> 30 -> 10; from state(30) the chain has
        // always moved to the lowest state. The prediction is that state's
        // midpoint, i.e. correct up to one bin width (20 / 8 = 2.5).
        let mut h = Vec::new();
        for _ in 0..60 {
            h.extend_from_slice(&[10.0, 20.0, 30.0]);
        }
        let cs = CloudScale::default();
        let pred = cs.markov_predict(&h);
        assert!((pred - 10.0).abs() <= 2.5, "pred {pred}");
    }

    #[test]
    fn constant_history_is_fixed_point() {
        let h = vec![25.0; 128];
        let mut cs = CloudScale::default();
        assert!((cs.predict(&h) - 25.0).abs() < 1e-9);
    }

    #[test]
    fn tiny_history_safe() {
        let mut cs = CloudScale::default();
        assert_eq!(cs.predict(&[5.0]), 5.0);
        assert!(cs.predict(&[5.0, 6.0]).is_finite());
    }
}
