//! Naive member predictors of Table II: mean and kNN.

use ld_api::Predictor;
use ld_linalg::vecops;

use crate::features::last_window;

/// Predicts the mean of the most recent `window` JARs.
#[derive(Debug, Clone)]
pub struct MeanPredictor {
    /// Averaging window length.
    pub window: usize,
}

impl Default for MeanPredictor {
    fn default() -> Self {
        MeanPredictor { window: 16 }
    }
}

impl Predictor for MeanPredictor {
    fn name(&self) -> String {
        "Mean".into()
    }

    fn fit(&mut self, _history: &[f64]) {}

    fn predict(&mut self, history: &[f64]) -> f64 {
        let w = self.window.min(history.len());
        vecops::mean(&history[history.len() - w..])
    }
}

/// k-nearest-neighbours forecasting: find the `k` past windows most similar
/// to the current one (Euclidean distance) and average their successors.
#[derive(Debug, Clone)]
pub struct KnnPredictor {
    /// Neighbour count.
    pub k: usize,
    /// Window (pattern) length compared.
    pub window: usize,
    /// How much history to search (cap for cost).
    pub max_history: usize,
}

impl Default for KnnPredictor {
    fn default() -> Self {
        KnnPredictor {
            k: 5,
            window: 8,
            max_history: 2048,
        }
    }
}

impl Predictor for KnnPredictor {
    fn name(&self) -> String {
        "kNN".into()
    }

    fn fit(&mut self, _history: &[f64]) {}

    fn predict(&mut self, history: &[f64]) -> f64 {
        let w = self.window;
        if history.len() < w + 2 {
            return *history.last().unwrap();
        }
        let h = crate::features::recent(history, self.max_history);
        let query = last_window(h, w);
        // Candidate windows end strictly before the query window starts
        // overlapping its own target.
        let mut scored: Vec<(f64, f64)> = (w..h.len())
            .map(|i| {
                let cand = &h[i - w..i];
                (vecops::sq_dist(cand, &query), h[i])
            })
            .collect();
        scored.sort_by(|a, b| a.0.total_cmp(&b.0));
        let k = self.k.min(scored.len());
        // The nearest candidate is the query window itself (distance 0,
        // successor unknown == the value we are predicting is not in h);
        // note the final window's "successor" does not exist, so `i` above
        // stops at h.len()-1 targets — the self-match is excluded by
        // construction because its target would be h[h.len()], out of range.
        scored.iter().take(k).map(|(_, y)| y).sum::<f64>() / k as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_over_recent_window() {
        let mut p = MeanPredictor { window: 3 };
        assert_eq!(p.predict(&[10.0, 1.0, 2.0, 3.0]), 2.0);
        // Shorter history than window: use all of it.
        assert_eq!(p.predict(&[4.0, 6.0]), 5.0);
    }

    #[test]
    fn knn_recovers_periodic_pattern() {
        // Strict period-4 signal: the nearest neighbours of the current
        // window all precede the same successor.
        let pat = [10.0, 20.0, 30.0, 40.0];
        let mut h = Vec::new();
        for _ in 0..12 {
            h.extend_from_slice(&pat);
        }
        // History ends right before a "10.0" (full periods): last window is
        // [., 30, 40] pattern -> next is 10.
        let mut p = KnnPredictor {
            k: 3,
            window: 4,
            max_history: 1024,
        };
        let pred = p.predict(&h);
        assert!((pred - 10.0).abs() < 1e-9, "pred {pred}");
    }

    #[test]
    fn knn_short_history_falls_back_to_last_value() {
        let mut p = KnnPredictor::default();
        assert_eq!(p.predict(&[7.0]), 7.0);
        assert_eq!(p.predict(&[7.0, 9.0]), 9.0);
    }

    #[test]
    fn knn_constant_series_predicts_constant() {
        let mut p = KnnPredictor::default();
        let h = vec![5.0; 100];
        assert!((p.predict(&h) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn knn_nan_in_history_does_not_panic() {
        // Regression: the neighbour sort used partial_cmp().unwrap_or(Equal)
        // — order-dependent with NaN distances. total_cmp sorts NaN
        // distances last deterministically; the prediction may be NaN but
        // the call must neither panic nor depend on element order.
        let mut h: Vec<f64> = (0..100).map(|i| (i % 7) as f64).collect();
        h[50] = f64::NAN;
        let a = KnnPredictor::default().predict(&h);
        let b = KnnPredictor::default().predict(&h);
        assert!(a.is_nan() == b.is_nan() && (a.is_nan() || a == b));
    }
}
