//! Gradient-boosted regression trees — the "Gradient Boosting" member of
//! Table II.
//!
//! Standard least-squares boosting: start from the target mean, then
//! stage-wise fit shallow CART trees to the current residuals, each scaled
//! by a learning rate.

use crate::ml::Regressor;
use crate::tree::{DecisionTree, SplitPolicy, TreeConfig};

/// Gradient-boosting regressor.
#[derive(Debug, Clone)]
pub struct GradientBoosting {
    /// Number of boosting stages.
    pub n_stages: usize,
    /// Shrinkage applied to each stage.
    pub learning_rate: f64,
    /// Depth of each stage tree.
    pub max_depth: usize,
    /// RNG seed (forwarded to stage trees for feature subsampling — with
    /// `max_features = None` fits are deterministic anyway).
    pub seed: u64,
    base: f64,
    stages: Vec<DecisionTree>,
}

impl GradientBoosting {
    /// Boosting with library defaults (40 stages, depth 3, lr 0.1).
    pub fn new(seed: u64) -> Self {
        GradientBoosting {
            n_stages: 40,
            learning_rate: 0.1,
            max_depth: 3,
            seed,
            base: 0.0,
            stages: Vec::new(),
        }
    }

    /// Number of fitted stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// True before fitting.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }
}

impl Regressor for GradientBoosting {
    fn fit(&mut self, xs: &[Vec<f64>], ys: &[f64]) {
        assert_eq!(xs.len(), ys.len());
        self.stages.clear();
        if xs.is_empty() {
            self.base = 0.0;
            return;
        }
        self.base = ys.iter().sum::<f64>() / ys.len() as f64;
        let mut residuals: Vec<f64> = ys.iter().map(|y| y - self.base).collect();
        let config = TreeConfig {
            max_depth: self.max_depth,
            min_samples_leaf: 3,
            min_samples_split: 6,
            max_features: None,
            policy: SplitPolicy::Best,
        };
        for stage in 0..self.n_stages {
            // Early exit when residuals are numerically dead.
            let sse: f64 = residuals.iter().map(|r| r * r).sum();
            if sse < 1e-12 {
                break;
            }
            let mut tree = DecisionTree::new(config, self.seed.wrapping_add(stage as u64));
            tree.fit(xs, &residuals);
            for (r, x) in residuals.iter_mut().zip(xs) {
                *r -= self.learning_rate * tree.predict(x);
            }
            self.stages.push(tree);
        }
    }

    fn predict(&self, x: &[f64]) -> f64 {
        self.base
            + self.learning_rate
                * self
                    .stages
                    .iter()
                    .map(|t| t.predict(x))
                    .sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_smooth_nonlinear_function() {
        let xs: Vec<Vec<f64>> = (0..80).map(|i| vec![i as f64 * 0.1]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (x[0]).sin() * 10.0 + 50.0).collect();
        let mut gb = GradientBoosting::new(0);
        gb.fit(&xs, &ys);
        let mse: f64 = xs
            .iter()
            .zip(&ys)
            .map(|(x, y)| (gb.predict(x) - y).powi(2))
            .sum::<f64>()
            / xs.len() as f64;
        // Variance of targets ~50; boosting should explain most of it.
        assert!(mse < 2.0, "mse {mse}");
    }

    #[test]
    fn more_stages_reduce_training_error() {
        let xs: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = (0..60).map(|i| ((i * i) % 97) as f64).collect();
        let train_mse = |stages: usize| {
            let mut gb = GradientBoosting::new(0);
            gb.n_stages = stages;
            gb.fit(&xs, &ys);
            xs.iter()
                .zip(&ys)
                .map(|(x, y)| (gb.predict(x) - y).powi(2))
                .sum::<f64>()
                / xs.len() as f64
        };
        assert!(train_mse(40) < train_mse(5));
    }

    #[test]
    fn constant_targets_stop_early() {
        let xs: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64]).collect();
        let ys = vec![9.0; 30];
        let mut gb = GradientBoosting::new(0);
        gb.fit(&xs, &ys);
        assert!(gb.len() <= 1, "stages {}", gb.len());
        assert_eq!(gb.predict(&[3.0]), 9.0);
    }

    #[test]
    fn empty_fit_predicts_zero() {
        let mut gb = GradientBoosting::new(0);
        gb.fit(&[], &[]);
        assert_eq!(gb.predict(&[1.0]), 0.0);
    }
}
