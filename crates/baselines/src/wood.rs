//! Wood et al. — robust linear regression, refined online.
//!
//! Wood et al. (Middleware 2008, "Profiling and Modeling Resource Usage of
//! Virtualized Applications") profile recent behaviour and fit a *robust
//! linear model* that is extrapolated forward; the model "is refined online
//! to adapt with changes" (paper Section IV-A). Following that design, the
//! predictor fits `JAR ~ a * t + b` over a sliding profiling window with
//! Huber-weighted iteratively-reweighted least squares (so workload spikes
//! do not hijack the trend) and extrapolates one interval ahead.
//!
//! This local-trend structure is exactly why the technique behaves the way
//! Fig. 2/9 of the paper show: accurate on smooth or slowly-trending
//! workloads (Wikipedia), inaccurate on noisy non-seasonal ones (Google,
//! Facebook) where extrapolating a fitted trend amplifies fluctuation.

use ld_api::Predictor;
use ld_linalg::{solve, Matrix};

use crate::features::recent;

/// Robust-linear-trend predictor.
#[derive(Debug, Clone)]
pub struct WoodPredictor {
    /// Profiling window: how many recent intervals the trend is fitted on.
    pub window: usize,
    /// Huber threshold in units of the MAD-based residual scale.
    pub huber_k: f64,
    /// IRLS iterations.
    pub irls_iters: usize,
}

impl Default for WoodPredictor {
    fn default() -> Self {
        WoodPredictor {
            window: 24,
            huber_k: 1.345,
            irls_iters: 6,
        }
    }
}

impl WoodPredictor {
    /// Fits the robust trend on `ys` (time = 0..len) and extrapolates to
    /// `len`. Falls back to the last value for degenerate inputs.
    fn robust_trend_forecast(&self, ys: &[f64]) -> f64 {
        let n = ys.len();
        if n < 3 {
            return ys[n - 1];
        }
        // Design [t_norm, 1] with time normalized to [0, 1].
        let design = Matrix::from_fn(n, 2, |r, c| {
            if c == 0 {
                r as f64 / (n - 1) as f64
            } else {
                1.0
            }
        });
        let Ok(mut coef) = solve::lstsq(&design, ys, 1e-9) else {
            return ys[n - 1];
        };
        for _ in 0..self.irls_iters {
            let resid: Vec<f64> = (0..n)
                .map(|r| ys[r] - (coef[0] * (r as f64 / (n - 1) as f64) + coef[1]))
                .collect();
            let mut abs: Vec<f64> = resid.iter().map(|r| r.abs()).collect();
            abs.sort_by(f64::total_cmp);
            let mad = abs[abs.len() / 2].max(1e-9);
            let scale = mad / 0.6745;
            let w: Vec<f64> = resid
                .iter()
                .map(|r| {
                    let u = r.abs() / (self.huber_k * scale);
                    if u <= 1.0 {
                        1.0
                    } else {
                        1.0 / u
                    }
                })
                .collect();
            match solve::weighted_lstsq(&design, ys, &w, 1e-9) {
                Ok(c) => coef = c,
                Err(_) => break,
            }
        }
        let t_next = n as f64 / (n - 1) as f64;
        coef[0] * t_next + coef[1]
    }
}

impl Predictor for WoodPredictor {
    fn name(&self) -> String {
        "Wood".into()
    }

    // The model is refit from the profiling window at every prediction, so
    // there is nothing to pre-train ("refined online").
    fn fit(&mut self, _history: &[f64]) {}

    fn predict(&mut self, history: &[f64]) -> f64 {
        let ys = recent(history, self.window);
        self.robust_trend_forecast(ys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extrapolates_a_clean_linear_trend() {
        let h: Vec<f64> = (0..100).map(|i| 10.0 + 3.0 * i as f64).collect();
        let mut p = WoodPredictor::default();
        p.fit(&h);
        let pred = p.predict(&h);
        let truth = 10.0 + 3.0 * 100.0;
        assert!((pred - truth).abs() < 1.0, "pred {pred} vs {truth}");
    }

    #[test]
    fn robust_to_spikes_where_plain_trend_is_not() {
        // Flat level 50 with two giant spikes inside the window: the robust
        // trend must stay near 50 instead of tilting toward the spikes.
        let mut h = vec![50.0; 40];
        h[30] = 800.0;
        h[35] = 900.0;
        let mut p = WoodPredictor::default();
        let pred = p.predict(&h);
        assert!((pred - 50.0).abs() < 30.0, "pred {pred}");
    }

    #[test]
    fn adapts_after_regime_change() {
        // Level 10 then level 100: once the window fills with the new
        // regime the forecast must follow it.
        let mut h = vec![10.0; 60];
        h.extend(vec![100.0; 30]); // longer than the profiling window
        let mut p = WoodPredictor::default();
        let pred = p.predict(&h);
        assert!((pred - 100.0).abs() < 10.0, "pred {pred}");
    }

    #[test]
    fn amplifies_noise_through_trend_extrapolation() {
        // Alternating +/- noise around 100: trend fits swing and the
        // extrapolation overshoots more than persistence would. This is the
        // documented weakness on noisy workloads (paper Fig. 2).
        let h: Vec<f64> = (0..60)
            .map(|i| 100.0 + if i % 2 == 0 { 20.0 } else { -20.0 })
            .collect();
        let mut p = WoodPredictor::default();
        let pred = p.predict(&h);
        // Still bounded (robustness), but not exact.
        assert!((40.0..180.0).contains(&pred), "pred {pred}");
    }

    #[test]
    fn short_history_falls_back() {
        let mut p = WoodPredictor::default();
        p.fit(&[4.0]);
        assert_eq!(p.predict(&[4.0]), 4.0);
        assert_eq!(p.predict(&[4.0, 6.0]), 6.0);
    }

    #[test]
    fn constant_series_is_fixed_point() {
        let h = vec![33.0; 120];
        let mut p = WoodPredictor::default();
        assert!((p.predict(&h) - 33.0).abs() < 1e-6);
    }

    #[test]
    fn nan_in_history_does_not_panic() {
        // Regression: the MAD computation sorted absolute residuals with
        // partial_cmp().unwrap(), panicking when a NaN reached the IRLS
        // loop. It must now degrade (possibly to a NaN forecast) instead.
        let mut h: Vec<f64> = (0..60).map(|i| 50.0 + i as f64).collect();
        h[30] = f64::NAN;
        let _ = WoodPredictor::default().predict(&h);
    }
}
