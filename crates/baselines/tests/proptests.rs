//! Property-based tests for the baseline predictors: totality (no panics,
//! no NaNs) and range sanity on arbitrary positive series.

use ld_api::Predictor;
use ld_baselines::cloudinsight::{table2_pool, CloudInsight};
use ld_baselines::forest::Forest;
use ld_baselines::ml::Regressor;
use ld_baselines::naive::KnnPredictor;
use ld_baselines::tree::{DecisionTree, TreeConfig};
use ld_baselines::{CloudScale, WoodPredictor};
use proptest::prelude::*;

fn history() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0..1e6f64, 12..120)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every one of the 21 pool members returns a finite prediction for
    /// any positive history — the council must never be poisoned.
    #[test]
    fn all_members_total_on_arbitrary_history(h in history()) {
        for mut member in table2_pool(0) {
            member.fit(&h);
            let p = member.predict(&h);
            prop_assert!(p.is_finite(), "{} returned {p}", member.name());
        }
    }

    /// The council itself is total and within a loose multiple of the
    /// observed range.
    #[test]
    fn cloudinsight_total(h in history()) {
        let mut ci = CloudInsight::new(0);
        ci.fit(&h);
        let p = ci.predict(&h);
        prop_assert!(p.is_finite());
    }

    /// CloudScale's prediction is always inside the observed value range
    /// (pattern lookup returns a past value; the Markov fallback returns a
    /// bin midpoint).
    #[test]
    fn cloudscale_predicts_within_range(h in history()) {
        let mut cs = CloudScale::default();
        cs.fit(&h);
        let p = cs.predict(&h);
        let lo = h.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = h.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9, "{p} outside [{lo}, {hi}]");
    }

    /// kNN predictions are convex combinations of observed values.
    #[test]
    fn knn_within_observed_range(h in history()) {
        let mut knn = KnnPredictor::default();
        let p = knn.predict(&h);
        let lo = h.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = h.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
    }

    /// Wood is finite on anything (trend extrapolation may leave the
    /// range, but never blows up).
    #[test]
    fn wood_total(h in history()) {
        let mut w = WoodPredictor::default();
        w.fit(&h);
        prop_assert!(w.predict(&h).is_finite());
    }

    /// A regression tree's predictions are bounded by the target range
    /// (leaves are means of subsets).
    #[test]
    fn tree_predictions_bounded_by_targets(
        data in proptest::collection::vec((0.0..10.0f64, -100.0..100.0f64), 6..40),
        query in 0.0..10.0f64,
    ) {
        let xs: Vec<Vec<f64>> = data.iter().map(|(x, _)| vec![*x]).collect();
        let ys: Vec<f64> = data.iter().map(|(_, y)| *y).collect();
        let mut tree = DecisionTree::new(TreeConfig::default(), 0);
        tree.fit(&xs, &ys);
        let p = tree.predict(&[query]);
        let lo = ys.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9, "{p} outside [{lo}, {hi}]");
    }

    /// Forests inherit the bound (averages of tree outputs).
    #[test]
    fn forest_predictions_bounded_by_targets(
        data in proptest::collection::vec((0.0..10.0f64, -100.0..100.0f64), 8..40),
        query in 0.0..10.0f64,
    ) {
        let xs: Vec<Vec<f64>> = data.iter().map(|(x, _)| vec![*x]).collect();
        let ys: Vec<f64> = data.iter().map(|(_, y)| *y).collect();
        for mut forest in [Forest::random_forest(1), Forest::extra_trees(1)] {
            forest.fit(&xs, &ys);
            let p = forest.predict(&[query]);
            let lo = ys.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
        }
    }
}
