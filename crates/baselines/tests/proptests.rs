//! Randomized property tests for the baseline predictors: totality (no
//! panics, no NaNs) and range sanity on arbitrary positive series.
//! Seeded-loop style: each property runs over a fixed number of randomly
//! generated cases so failures reproduce exactly.

use ld_api::Predictor;
use ld_baselines::cloudinsight::{table2_pool, CloudInsight};
use ld_baselines::forest::Forest;
use ld_baselines::ml::Regressor;
use ld_baselines::naive::KnnPredictor;
use ld_baselines::tree::{DecisionTree, TreeConfig};
use ld_baselines::{CloudScale, WoodPredictor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn history(rng: &mut StdRng) -> Vec<f64> {
    let len = rng.gen_range(12..120usize);
    (0..len).map(|_| rng.gen_range(0.0..1e6)).collect()
}

/// Every one of the 21 pool members returns a finite prediction for any
/// positive history — the council must never be poisoned.
#[test]
fn all_members_total_on_arbitrary_history() {
    let mut rng = StdRng::seed_from_u64(0x55E1);
    for _ in 0..8 {
        let h = history(&mut rng);
        for mut member in table2_pool(0) {
            member.fit(&h);
            let p = member.predict(&h);
            assert!(p.is_finite(), "{} returned {p}", member.name());
        }
    }
}

/// The council itself is total.
#[test]
fn cloudinsight_total() {
    let mut rng = StdRng::seed_from_u64(0x55E2);
    for _ in 0..8 {
        let h = history(&mut rng);
        let mut ci = CloudInsight::new(0);
        ci.fit(&h);
        let p = ci.predict(&h);
        assert!(p.is_finite());
    }
}

/// CloudScale's prediction is always inside the observed value range
/// (pattern lookup returns a past value; the Markov fallback returns a
/// bin midpoint).
#[test]
fn cloudscale_predicts_within_range() {
    let mut rng = StdRng::seed_from_u64(0x55E3);
    for _ in 0..24 {
        let h = history(&mut rng);
        let mut cs = CloudScale::default();
        cs.fit(&h);
        let p = cs.predict(&h);
        let lo = h.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = h.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(p >= lo - 1e-9 && p <= hi + 1e-9, "{p} outside [{lo}, {hi}]");
    }
}

/// kNN predictions are convex combinations of observed values.
#[test]
fn knn_within_observed_range() {
    let mut rng = StdRng::seed_from_u64(0x55E4);
    for _ in 0..24 {
        let h = history(&mut rng);
        let mut knn = KnnPredictor::default();
        let p = knn.predict(&h);
        let lo = h.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = h.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
    }
}

/// Wood is finite on anything (trend extrapolation may leave the range,
/// but never blows up).
#[test]
fn wood_total() {
    let mut rng = StdRng::seed_from_u64(0x55E5);
    for _ in 0..24 {
        let h = history(&mut rng);
        let mut w = WoodPredictor::default();
        w.fit(&h);
        assert!(w.predict(&h).is_finite());
    }
}

/// A regression tree's predictions are bounded by the target range
/// (leaves are means of subsets).
#[test]
fn tree_predictions_bounded_by_targets() {
    let mut rng = StdRng::seed_from_u64(0x55E6);
    for _ in 0..24 {
        let n = rng.gen_range(6..40usize);
        let xs: Vec<Vec<f64>> = (0..n).map(|_| vec![rng.gen_range(0.0..10.0)]).collect();
        let ys: Vec<f64> = (0..n).map(|_| rng.gen_range(-100.0..100.0)).collect();
        let query = rng.gen_range(0.0..10.0);
        let mut tree = DecisionTree::new(TreeConfig::default(), 0);
        tree.fit(&xs, &ys);
        let p = tree.predict(&[query]);
        let lo = ys.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(p >= lo - 1e-9 && p <= hi + 1e-9, "{p} outside [{lo}, {hi}]");
    }
}

/// Forests inherit the bound (averages of tree outputs).
#[test]
fn forest_predictions_bounded_by_targets() {
    let mut rng = StdRng::seed_from_u64(0x55E7);
    for _ in 0..8 {
        let n = rng.gen_range(8..40usize);
        let xs: Vec<Vec<f64>> = (0..n).map(|_| vec![rng.gen_range(0.0..10.0)]).collect();
        let ys: Vec<f64> = (0..n).map(|_| rng.gen_range(-100.0..100.0)).collect();
        let query = rng.gen_range(0.0..10.0);
        for mut forest in [Forest::random_forest(1), Forest::extra_trees(1)] {
            forest.fit(&xs, &ys);
            let p = forest.predict(&[query]);
            let lo = ys.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
        }
    }
}
