//! Deterministic chaos schedules: a seed-keyed timeline of fault windows
//! for the serving soak harness.
//!
//! A [`ChaosSchedule`] is a pure function of `(seed, horizon, shard_count)`:
//! the same inputs generate byte-identical event lists on every platform,
//! every run. Each [`ChaosEvent`] opens a window `[start, start+duration)`
//! of logical ticks during which one fault family is active:
//!
//! | Kind | Target | Magnitude | Driven through |
//! |---|---|---|---|
//! | [`ChaosKind::SlowShard`] | shard index | extra ticks of service delay | `ServeEngine::set_shard_delay` |
//! | [`ChaosKind::SnapshotCorrupt`] | all rehydrations | fault rate, permille | [`FaultSite::SnapshotCorrupt`] |
//! | [`ChaosKind::CrashWrite`] | all spills | fault rate, permille | [`FaultSite::CrashWrite`] |
//! | [`ChaosKind::BatchNan`] | all lanes | fault rate, permille | [`FaultSite::BatchNan`] |
//! | [`ChaosKind::BurstOverload`] | admission queue | extra load, permille of fleet | extra loadgen requests |
//!
//! The driver (e.g. `ld-loadgen --chaos`) asks the schedule each tick for
//! the active fault plan ([`ChaosSchedule::fault_plan_at`]), the slow
//! shards ([`ChaosSchedule::slow_shards_at`]), and the burst load
//! ([`ChaosSchedule::burst_permille_at`]), and applies them. Because every
//! decision — window placement, per-key affliction inside a window, burst
//! victim choice — derives from the schedule seed, two identically-seeded
//! soaks replay the exact same hostile environment.
//!
//! # Spec format
//!
//! [`ChaosSchedule::to_spec`] renders the schedule as one line per event:
//!
//! ```text
//! slow_shard@12+3:shard5*2
//! crash@20+2:*560
//! burst@31+1:*400
//! ```
//!
//! i.e. `kind@start+duration:target*magnitude` with `shardN` for
//! shard-targeted events and `*` for fleet-wide ones; magnitudes are
//! permille rates (fault/burst kinds) or tick delays (`slow_shard`).

use crate::{FaultConfig, FaultSite};

/// The five chaos families the soak harness replays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ChaosKind {
    /// A shard serves slowly: its lanes are deferred `magnitude` ticks.
    SlowShard,
    /// Snapshot rehydrations are garbled at `magnitude` permille.
    SnapshotCorrupt,
    /// Snapshot spills crash mid-write at `magnitude` permille, leaving
    /// torn temp files for the recovery pass to quarantine.
    CrashWrite,
    /// Batch lanes turn NaN at `magnitude` permille.
    BatchNan,
    /// The fleet offers `magnitude` permille extra requests per tick.
    BurstOverload,
}

impl ChaosKind {
    const ALL: [ChaosKind; 5] = [
        ChaosKind::SlowShard,
        ChaosKind::SnapshotCorrupt,
        ChaosKind::CrashWrite,
        ChaosKind::BatchNan,
        ChaosKind::BurstOverload,
    ];

    /// Spec-string name.
    pub fn as_str(self) -> &'static str {
        match self {
            ChaosKind::SlowShard => "slow_shard",
            ChaosKind::SnapshotCorrupt => "snapshot_corrupt",
            ChaosKind::CrashWrite => "crash",
            ChaosKind::BatchNan => "batch_nan",
            ChaosKind::BurstOverload => "burst",
        }
    }

    fn salt(self) -> u64 {
        match self {
            ChaosKind::SlowShard => 0x736C_6F77_5F73_6864,
            ChaosKind::SnapshotCorrupt => 0x636F_7272_5F77_696E,
            ChaosKind::CrashWrite => 0x6372_6173_685F_7769,
            ChaosKind::BatchNan => 0x6E61_6E5F_7769_6E64,
            ChaosKind::BurstOverload => 0x6275_7273_745F_6F76,
        }
    }
}

/// One fault window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ChaosEvent {
    /// First tick of the window.
    pub start: u64,
    /// The fault family.
    pub kind: ChaosKind,
    /// Window length in ticks (≥ 1).
    pub duration: u64,
    /// Shard index for [`ChaosKind::SlowShard`]; 0 for fleet-wide kinds.
    pub target: u64,
    /// Permille rate (fault/burst kinds) or tick delay (`SlowShard`).
    pub magnitude: u64,
}

impl ChaosEvent {
    /// Whether the window covers `tick`.
    pub fn active_at(&self, tick: u64) -> bool {
        tick >= self.start && tick < self.start + self.duration
    }

    /// Whether the window's last tick is exactly `tick` (drivers run
    /// store-recovery passes at crash-window boundaries).
    pub fn ends_at(&self, tick: u64) -> bool {
        self.start + self.duration == tick + 1
    }
}

/// A full seed-keyed schedule over a tick horizon.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosSchedule {
    seed: u64,
    horizon: u64,
    shard_count: u64,
    events: Vec<ChaosEvent>,
}

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl ChaosSchedule {
    /// Generates the schedule for `(seed, horizon, shard_count)` — a pure
    /// function of its arguments. Every kind gets roughly one window per 12
    /// ticks (at least one), placed and sized by seed-keyed draws.
    ///
    /// # Panics
    /// Panics if `horizon` or `shard_count` is zero.
    pub fn generate(seed: u64, horizon: u64, shard_count: u64) -> Self {
        assert!(horizon > 0, "chaos schedule needs a positive horizon");
        assert!(shard_count > 0, "chaos schedule needs at least one shard");
        let mut events = Vec::new();
        for kind in ChaosKind::ALL {
            let windows = (horizon / 12).max(1);
            for w in 0..windows {
                let draw = |salt: u64| {
                    splitmix64(seed ^ kind.salt() ^ w.rotate_left(17) ^ salt.wrapping_mul(0x9E37))
                };
                let start = draw(1) % horizon;
                let duration = 1 + draw(2) % 3;
                let target = match kind {
                    ChaosKind::SlowShard => draw(3) % shard_count,
                    _ => 0,
                };
                let magnitude = match kind {
                    // 1–2 ticks of extra latency on the slow shard.
                    ChaosKind::SlowShard => 1 + draw(4) % 2,
                    // Corruption/poison rates land in [80, 280)‰ — hostile
                    // enough to trip breakers, bounded so the fleet survives.
                    ChaosKind::SnapshotCorrupt => 80 + draw(4) % 200,
                    ChaosKind::CrashWrite => 300 + draw(4) % 400,
                    ChaosKind::BatchNan => 80 + draw(4) % 200,
                    // Bursts add 30–70% extra load.
                    ChaosKind::BurstOverload => 300 + draw(4) % 400,
                };
                events.push(ChaosEvent {
                    start,
                    kind,
                    duration,
                    target,
                    magnitude,
                });
            }
        }
        events.sort_unstable();
        ChaosSchedule {
            seed,
            horizon,
            shard_count,
            events,
        }
    }

    /// The generating seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The tick horizon the schedule covers.
    pub fn horizon(&self) -> u64 {
        self.horizon
    }

    /// Every event, sorted by `(start, kind, ...)`.
    pub fn events(&self) -> &[ChaosEvent] {
        &self.events
    }

    /// Events whose window covers `tick`.
    pub fn active_at(&self, tick: u64) -> impl Iterator<Item = &ChaosEvent> {
        self.events.iter().filter(move |e| e.active_at(tick))
    }

    /// The point-fault plan for `tick`: snapshot-corrupt, crash-write, and
    /// batch-NaN windows become site rates on a [`FaultConfig`] keyed by
    /// the schedule seed. Empty (install nothing / reset) when no such
    /// window is open.
    pub fn fault_plan_at(&self, tick: u64) -> FaultConfig {
        let mut plan = FaultConfig::new(self.seed ^ tick.rotate_left(29));
        for event in self.active_at(tick) {
            let site = match event.kind {
                ChaosKind::SnapshotCorrupt => FaultSite::SnapshotCorrupt,
                ChaosKind::CrashWrite => FaultSite::CrashWrite,
                ChaosKind::BatchNan => FaultSite::BatchNan,
                _ => continue,
            };
            let rate = permille_to_rate(event.magnitude);
            plan = plan.with_site(site, rate, None);
        }
        plan
    }

    /// `(shard, delay_ticks)` for every slow-shard window covering `tick`.
    pub fn slow_shards_at(&self, tick: u64) -> Vec<(u64, u64)> {
        self.active_at(tick)
            .filter(|e| e.kind == ChaosKind::SlowShard)
            .map(|e| (e.target, e.magnitude))
            .collect()
    }

    /// Total extra load for `tick`, permille of the fleet (0 = no burst).
    pub fn burst_permille_at(&self, tick: u64) -> u64 {
        self.active_at(tick)
            .filter(|e| e.kind == ChaosKind::BurstOverload)
            .map(|e| e.magnitude)
            .sum()
    }

    /// Whether a crash-write window's *last* tick is `tick` — the moment
    /// the driver runs a store-recovery pass to quarantine torn temp files.
    pub fn crash_window_ends_at(&self, tick: u64) -> bool {
        self.events
            .iter()
            .any(|e| e.kind == ChaosKind::CrashWrite && e.ends_at(tick))
    }

    /// The documented one-event-per-line spec rendering.
    pub fn to_spec(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            let target = match e.kind {
                ChaosKind::SlowShard => format!("shard{}", e.target),
                _ => "*".to_string(),
            };
            out.push_str(&format!(
                "{}@{}+{}:{}*{}\n",
                e.kind.as_str(),
                e.start,
                e.duration,
                target,
                e.magnitude
            ));
        }
        out
    }

    /// FNV-1a digest of the spec rendering: the schedule's stable identity,
    /// stamped into `BENCH_resilience.json`.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.to_spec().bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

/// Permille to a probability, saturating at 1.
fn permille_to_rate(permille: u64) -> f64 {
    f64::from(u32::try_from(permille.min(1000)).expect("permille capped")) / 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_seed_sensitive() {
        let a = ChaosSchedule::generate(7, 48, 16);
        let b = ChaosSchedule::generate(7, 48, 16);
        let c = ChaosSchedule::generate(8, 48, 16);
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
        assert_ne!(a.events(), c.events());
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn every_kind_appears_and_windows_stay_in_bounds() {
        let s = ChaosSchedule::generate(42, 60, 8);
        for kind in ChaosKind::ALL {
            assert!(
                s.events().iter().any(|e| e.kind == kind),
                "kind {kind:?} missing from schedule"
            );
        }
        for e in s.events() {
            assert!(e.start < 60);
            assert!((1..=3).contains(&e.duration));
            assert!(e.magnitude > 0);
            if e.kind == ChaosKind::SlowShard {
                assert!(e.target < 8);
            } else {
                assert_eq!(e.target, 0);
            }
        }
    }

    #[test]
    fn fault_plan_reflects_open_windows() {
        let s = ChaosSchedule::generate(3, 40, 4);
        let mut saw_nonempty = false;
        for tick in 0..40 {
            let plan = s.fault_plan_at(tick);
            let corrupt_open = s
                .active_at(tick)
                .any(|e| e.kind == ChaosKind::SnapshotCorrupt);
            assert_eq!(
                plan.site(FaultSite::SnapshotCorrupt).is_some(),
                corrupt_open,
                "tick {tick}"
            );
            if !plan.is_empty() {
                saw_nonempty = true;
            }
            for (shard, delay) in s.slow_shards_at(tick) {
                assert!(shard < 4);
                assert!((1..=2).contains(&delay));
            }
        }
        assert!(saw_nonempty, "a 40-tick schedule must open some window");
    }

    #[test]
    fn spec_lists_every_event_and_crash_boundaries_close() {
        let s = ChaosSchedule::generate(11, 36, 8);
        let spec = s.to_spec();
        assert_eq!(spec.lines().count(), s.events().len());
        assert!(spec.lines().all(|l| l.contains('@') && l.contains(':')));
        let closes: u64 = (0..36).filter(|&t| s.crash_window_ends_at(t)).count() as u64;
        let crash_windows = s
            .events()
            .iter()
            .filter(|e| e.kind == ChaosKind::CrashWrite)
            .count() as u64;
        assert!(closes >= 1 && closes <= crash_windows);
    }
}
