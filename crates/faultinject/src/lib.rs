//! Deterministic fault injection for the LoadDynamics recovery paths.
//!
//! The framework's fault-tolerance layer — the trainer's divergence
//! watchdog, trial isolation in the Bayesian optimizer, GP surrogate
//! recovery, and the baseline fallback — only runs when something goes
//! wrong, which on clean synthetic traces is never. This crate makes
//! "something goes wrong" a reproducible input: faults are *decisions
//! derived from a seed*, not random events, so a CI run that injects NaN
//! losses into 30% of trials injects them into exactly the same trials
//! every time.
//!
//! Six injection sites are wired into the workspace:
//!
//! | Site | Location | Effect |
//! |---|---|---|
//! | [`FaultSite::NanLoss`] | `ld-nn` trainer epoch loop | epoch loss becomes NaN for afflicted trials |
//! | [`FaultSite::CholeskyFail`] | `ld-gp` surrogate auto-fit | the whole GP fit reports `NumericalFailure` |
//! | [`FaultSite::TraceCorrupt`] | `ld-traces` config builder | trace values become NaN / negative before sanitization |
//! | [`FaultSite::SnapshotCorrupt`] | `ld-serve` registry rehydration | a model snapshot read back from disk is truncated/garbled |
//! | [`FaultSite::BatchNan`] | `ld-serve` fused batch forward | one tenant's window turns NaN inside a shared batch |
//! | [`FaultSite::CrashWrite`] | `ld-serve` snapshot spill | the spill "crashes" mid-write, leaving a torn temp file |
//!
//! The [`chaos`] module layers a *schedule* on top of these point sites: a
//! seed-keyed timeline of slow-shard, snapshot-corrupt, crash-at-offset,
//! batch-NaN, and burst-overload windows that the `ld-loadgen --chaos`
//! soak harness replays deterministically.
//!
//! # Activation
//!
//! Injection is process-global and **off by default**: the fast path of
//! every query is a single relaxed atomic load, and a disabled process is
//! byte-identical to a build without the hooks. Tests activate it with
//! [`install`] / [`reset`]; binaries activate it from the environment via
//! [`init_from_env`]:
//!
//! ```text
//! LD_FAULT="nan_loss=0.3,cholesky=1x1,trace=0.05" LD_FAULT_SEED=42 ld-cli ...
//! ```
//!
//! Each `site=rate[xCOUNT]` entry sets the per-key fault probability and an
//! optional cap on total occurrences (`cholesky=1x1`: rate 1.0, at most one
//! occurrence — "the first surrogate fit fails").
//!
//! Because the registry is process-global, tests that install a plan must
//! serialize on a lock (see [`test_lock`]) and [`reset`] when done.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod chaos;

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// The injection sites understood by the workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// Corrupt an epoch training loss to NaN (trainer watchdog path).
    NanLoss,
    /// Fail a whole GP surrogate fit (optimizer random-fallback path).
    CholeskyFail,
    /// Corrupt raw trace values to NaN / negatives (sanitizer path).
    TraceCorrupt,
    /// Garble a model snapshot as it is rehydrated from disk
    /// (serve-registry degradation path).
    SnapshotCorrupt,
    /// Poison one tenant's input window with NaN inside a fused batch
    /// (per-tenant fallback isolation path).
    BatchNan,
    /// Simulate a crash in the middle of a snapshot spill: the store
    /// writes a torn temp file, never publishes it, and reports the spill
    /// as failed (crash-consistency / recovery path).
    CrashWrite,
}

const SITE_COUNT: usize = 6;

impl FaultSite {
    fn index(self) -> usize {
        match self {
            FaultSite::NanLoss => 0,
            FaultSite::CholeskyFail => 1,
            FaultSite::TraceCorrupt => 2,
            FaultSite::SnapshotCorrupt => 3,
            FaultSite::BatchNan => 4,
            FaultSite::CrashWrite => 5,
        }
    }

    /// Per-site hash salt so the same key draws independent decisions at
    /// different sites.
    fn salt(self) -> u64 {
        match self {
            FaultSite::NanLoss => 0x6E61_6E5F_6C6F_7373,
            FaultSite::CholeskyFail => 0x6368_6F6C_6573_6B79,
            FaultSite::TraceCorrupt => 0x7472_6163_655F_6331,
            FaultSite::SnapshotCorrupt => 0x736E_6170_5F63_7270,
            FaultSite::BatchNan => 0x6261_7463_685F_6E61,
            FaultSite::CrashWrite => 0x6372_6173_685F_7772,
        }
    }

    /// Spec-string name (`nan_loss`, `cholesky`, `trace`, `snapshot`,
    /// `batch_nan`, `crash`).
    pub fn as_str(self) -> &'static str {
        match self {
            FaultSite::NanLoss => "nan_loss",
            FaultSite::CholeskyFail => "cholesky",
            FaultSite::TraceCorrupt => "trace",
            FaultSite::SnapshotCorrupt => "snapshot",
            FaultSite::BatchNan => "batch_nan",
            FaultSite::CrashWrite => "crash",
        }
    }

    fn from_str(s: &str) -> Option<Self> {
        match s {
            "nan_loss" => Some(FaultSite::NanLoss),
            "cholesky" => Some(FaultSite::CholeskyFail),
            "trace" => Some(FaultSite::TraceCorrupt),
            "snapshot" => Some(FaultSite::SnapshotCorrupt),
            "batch_nan" => Some(FaultSite::BatchNan),
            "crash" => Some(FaultSite::CrashWrite),
            _ => None,
        }
    }
}

/// Configuration of one injection site.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SiteConfig {
    /// Fault probability per key in `[0, 1]`.
    pub rate: f64,
    /// Cap on total occurrences (`None` = unbounded).
    pub max: Option<u64>,
}

/// A full fault plan: a seed plus per-site configurations.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Seed the per-key decisions derive from (mix the master seed in here
    /// so different experiment seeds afflict different trials).
    pub seed: u64,
    sites: [Option<SiteConfig>; SITE_COUNT],
}

impl FaultConfig {
    /// An empty plan (no site injects anything).
    pub fn new(seed: u64) -> Self {
        FaultConfig {
            sites: [None; SITE_COUNT],
            seed,
        }
    }

    /// Returns the plan with `site` configured.
    pub fn with_site(mut self, site: FaultSite, rate: f64, max: Option<u64>) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0,1]");
        self.sites[site.index()] = Some(SiteConfig { rate, max });
        self
    }

    /// The configuration for `site`, if any.
    pub fn site(&self, site: FaultSite) -> Option<SiteConfig> {
        self.sites[site.index()]
    }

    /// Whether no site is configured (installing such a plan injects
    /// nothing; callers usually [`reset`] instead).
    pub fn is_empty(&self) -> bool {
        self.sites.iter().all(Option::is_none)
    }

    /// Parses a spec like `"nan_loss=0.3,cholesky=1x1,trace=0.05"`.
    ///
    /// Each entry is `site=rate` or `site=rateXcount` (capital or lowercase
    /// `x`); unknown sites and malformed numbers are errors.
    pub fn parse(spec: &str, seed: u64) -> Result<Self, String> {
        let mut config = FaultConfig::new(seed);
        for entry in spec.split(',').map(str::trim).filter(|e| !e.is_empty()) {
            let (name, value) = entry
                .split_once('=')
                .ok_or_else(|| format!("fault entry `{entry}` missing `=`"))?;
            let site = FaultSite::from_str(name.trim())
                .ok_or_else(|| format!("unknown fault site `{name}`"))?;
            let value = value.trim();
            let (rate_str, max) = match value.split_once(['x', 'X']) {
                Some((r, c)) => {
                    let max: u64 = c
                        .trim()
                        .parse()
                        .map_err(|e| format!("bad count in `{entry}`: {e}"))?;
                    (r.trim(), Some(max))
                }
                None => (value, None),
            };
            let rate: f64 = rate_str
                .parse()
                .map_err(|e| format!("bad rate in `{entry}`: {e}"))?;
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("rate {rate} in `{entry}` outside [0,1]"));
            }
            config = config.with_site(site, rate, max);
        }
        Ok(config)
    }
}

/// An installed plan plus per-site occurrence counters.
struct Installed {
    config: FaultConfig,
    counters: [AtomicU64; SITE_COUNT],
}

static ACTIVE: AtomicBool = AtomicBool::new(false);

fn registry() -> &'static Mutex<Option<Installed>> {
    static REGISTRY: OnceLock<Mutex<Option<Installed>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(None))
}

/// Serializes tests that install process-global fault plans. Integration
/// tests in one binary run on multiple threads; hold this lock around
/// [`install`] .. [`reset`] so plans never overlap.
pub fn test_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

/// Installs a fault plan process-wide, replacing any previous plan and
/// resetting all occurrence counters.
pub fn install(config: FaultConfig) {
    let mut guard = registry().lock().unwrap_or_else(|p| p.into_inner());
    *guard = Some(Installed {
        config,
        counters: Default::default(),
    });
    ACTIVE.store(true, Ordering::Release);
}

/// Removes the installed plan; all queries return "no fault" again.
pub fn reset() {
    let mut guard = registry().lock().unwrap_or_else(|p| p.into_inner());
    ACTIVE.store(false, Ordering::Release);
    *guard = None;
}

/// A parsed, ready-to-install fault plan plus the spec it came from.
///
/// This is the one piece of `LD_FAULT` plumbing the workspace binaries
/// share: fig6, fig10, `ld-cli`, and `ld-loadgen` all call
/// [`activate_from_env`] (or build a `FaultPlan` directly) instead of
/// each re-implementing env parsing and the "announce on stderr" courtesy.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    config: FaultConfig,
    spec: String,
}

impl FaultPlan {
    /// Parses a spec like `"nan_loss=0.3,cholesky=1x1"` into a plan.
    pub fn parse(spec: &str, seed: u64) -> Result<Self, String> {
        Ok(FaultPlan {
            config: FaultConfig::parse(spec, seed)?,
            spec: spec.trim().to_string(),
        })
    }

    /// Builds a plan from `LD_FAULT` / `LD_FAULT_SEED`. Returns `None`
    /// when `LD_FAULT` is unset or empty; malformed specs are reported on
    /// stderr and ignored (a typo'd knob must not corrupt a run).
    pub fn from_env(default_seed: u64) -> Option<Self> {
        let spec = std::env::var("LD_FAULT").ok()?;
        if spec.trim().is_empty() {
            return None;
        }
        let seed = std::env::var("LD_FAULT_SEED")
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(default_seed);
        match FaultPlan::parse(&spec, seed) {
            Ok(plan) => Some(plan),
            Err(e) => {
                eprintln!("LD_FAULT ignored: {e}");
                None
            }
        }
    }

    /// The parsed configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// The originating spec string.
    pub fn spec(&self) -> &str {
        &self.spec
    }

    /// Installs the plan process-wide and announces it on stderr, so a
    /// faulted run can never be mistaken for a clean one.
    pub fn activate(&self) {
        install(self.config.clone());
        eprintln!(
            "fault injection active: LD_FAULT={} (seed {})",
            self.spec, self.config.seed
        );
    }
}

/// The one env entry point every binary uses: parse `LD_FAULT` /
/// `LD_FAULT_SEED`, install the plan, and announce it. Returns whether a
/// plan was activated.
pub fn activate_from_env(default_seed: u64) -> bool {
    match FaultPlan::from_env(default_seed) {
        Some(plan) => {
            plan.activate();
            true
        }
        None => false,
    }
}

/// Installs a plan from `LD_FAULT` / `LD_FAULT_SEED` if `LD_FAULT` is set
/// and non-empty, without the stderr announcement (tests). Returns whether
/// a plan was installed.
pub fn init_from_env(default_seed: u64) -> bool {
    match FaultPlan::from_env(default_seed) {
        Some(plan) => {
            install(plan.config.clone());
            true
        }
        None => false,
    }
}

/// Whether any plan is installed. One relaxed atomic load — instrumented
/// hot paths gate on this before doing anything else.
#[inline]
pub fn is_active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// `splitmix64` — the finalizer used to turn `(seed, salt, key)` into an
/// independent uniform decision.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn unit_draw(seed: u64, salt: u64, key: u64) -> f64 {
    let h = splitmix64(seed ^ salt.wrapping_mul(0x2545_F491_4F6C_DD1D) ^ splitmix64(key));
    // 53 high bits -> uniform in [0, 1).
    (h >> 11) as f64 / (1u64 << 53) as f64
}

fn with_site<T>(site: FaultSite, f: impl FnOnce(&Installed, SiteConfig) -> T) -> Option<T> {
    if !is_active() {
        return None;
    }
    let guard = registry().lock().unwrap_or_else(|p| p.into_inner());
    let installed = guard.as_ref()?;
    let cfg = installed.config.site(site)?;
    Some(f(installed, cfg))
}

/// Pure keyed decision: does `key` fault at `site`? Deterministic in
/// `(installed seed, site, key)`; ignores occurrence caps.
pub fn fault_hit(site: FaultSite, key: u64) -> bool {
    with_site(site, |installed, cfg| {
        unit_draw(installed.config.seed, site.salt(), key) < cfg.rate
    })
    .unwrap_or(false)
}

/// Counted decision: each call consumes one slot of the site's occurrence
/// budget; call `n` faults iff the site's keyed draw at index `n` fires and
/// fewer than `max` faults were already injected. Deterministic as long as
/// the site is consulted in a deterministic order (the BO surrogate loop
/// is sequential).
pub fn fault_hit_counted(site: FaultSite) -> bool {
    with_site(site, |installed, cfg| {
        let n = installed.counters[site.index()].fetch_add(1, Ordering::Relaxed);
        if let Some(max) = cfg.max {
            if n >= max {
                return false;
            }
        }
        unit_draw(installed.config.seed, site.salt(), n) < cfg.rate
    })
    .unwrap_or(false)
}

/// Corrupts `v` if `key` faults at `site`: half the afflicted keys become
/// NaN, half become `-(v + 1)` (strictly negative even at `v = 0`), so both
/// repair paths of the sanitizer are exercised.
pub fn corrupt_value(site: FaultSite, key: u64, v: f64) -> f64 {
    if !fault_hit(site, key) {
        return v;
    }
    // Decorrelate the corruption mode from the hit decision.
    let mode = with_site(site, |installed, _| {
        splitmix64(installed.config.seed ^ site.salt() ^ key.wrapping_mul(3)) & 1
    })
    .unwrap_or(0);
    if mode == 0 {
        f64::NAN
    } else {
        -(v + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global; every test serializes on `test_lock`.

    #[test]
    fn disabled_by_default_and_after_reset() {
        let _guard = test_lock();
        reset();
        assert!(!is_active());
        assert!(!fault_hit(FaultSite::NanLoss, 7));
        assert!(!fault_hit_counted(FaultSite::CholeskyFail));
        assert_eq!(corrupt_value(FaultSite::TraceCorrupt, 0, 5.0), 5.0);
    }

    #[test]
    fn decisions_are_deterministic_and_rate_accurate() {
        let _guard = test_lock();
        install(FaultConfig::new(42).with_site(FaultSite::NanLoss, 0.3, None));
        let first: Vec<bool> = (0..10_000).map(|k| fault_hit(FaultSite::NanLoss, k)).collect();
        let second: Vec<bool> = (0..10_000).map(|k| fault_hit(FaultSite::NanLoss, k)).collect();
        assert_eq!(first, second);
        let hits = first.iter().filter(|&&b| b).count();
        assert!(
            (2700..3300).contains(&hits),
            "expected ~30% of 10k keys, got {hits}"
        );
        reset();
    }

    #[test]
    fn different_seeds_afflict_different_keys() {
        let _guard = test_lock();
        install(FaultConfig::new(1).with_site(FaultSite::NanLoss, 0.3, None));
        let a: Vec<bool> = (0..512).map(|k| fault_hit(FaultSite::NanLoss, k)).collect();
        install(FaultConfig::new(2).with_site(FaultSite::NanLoss, 0.3, None));
        let b: Vec<bool> = (0..512).map(|k| fault_hit(FaultSite::NanLoss, k)).collect();
        assert_ne!(a, b);
        reset();
    }

    #[test]
    fn counted_site_respects_occurrence_cap() {
        let _guard = test_lock();
        install(FaultConfig::new(0).with_site(FaultSite::CholeskyFail, 1.0, Some(2)));
        let hits: Vec<bool> = (0..10).map(|_| fault_hit_counted(FaultSite::CholeskyFail)).collect();
        assert_eq!(hits.iter().filter(|&&b| b).count(), 2);
        assert!(hits[0] && hits[1], "cap consumes the first calls at rate 1");
        reset();
    }

    #[test]
    fn corrupt_value_produces_nan_and_negatives() {
        let _guard = test_lock();
        install(FaultConfig::new(9).with_site(FaultSite::TraceCorrupt, 1.0, None));
        let out: Vec<f64> = (0..64).map(|k| corrupt_value(FaultSite::TraceCorrupt, k, 10.0)).collect();
        assert!(out.iter().any(|v| v.is_nan()));
        assert!(out.iter().any(|v| *v < 0.0));
        assert!(out.iter().all(|v| v.is_nan() || *v < 0.0));
        reset();
    }

    #[test]
    fn serve_sites_parse_and_draw_independently() {
        let _guard = test_lock();
        let parsed = FaultConfig::parse("snapshot=1x1, batch_nan=0.4", 5).unwrap();
        assert_eq!(
            parsed.site(FaultSite::SnapshotCorrupt),
            Some(SiteConfig { rate: 1.0, max: Some(1) })
        );
        assert_eq!(
            parsed.site(FaultSite::BatchNan),
            Some(SiteConfig { rate: 0.4, max: None })
        );
        // Distinct salts: the same keys must not fault identically at the
        // two new sites when both run at the same rate.
        install(
            FaultConfig::new(11)
                .with_site(FaultSite::SnapshotCorrupt, 0.4, None)
                .with_site(FaultSite::BatchNan, 0.4, None),
        );
        let snap: Vec<bool> = (0..512).map(|k| fault_hit(FaultSite::SnapshotCorrupt, k)).collect();
        let nan: Vec<bool> = (0..512).map(|k| fault_hit(FaultSite::BatchNan, k)).collect();
        assert_ne!(snap, nan);
        assert!(snap.iter().any(|&b| b) && nan.iter().any(|&b| b));
        reset();
    }

    #[test]
    fn spec_parsing_roundtrip_and_errors() {
        let parsed = FaultConfig::parse("nan_loss=0.3, cholesky=1x1 ,trace=0.05", 7).unwrap();
        assert_eq!(
            parsed.site(FaultSite::NanLoss),
            Some(SiteConfig { rate: 0.3, max: None })
        );
        assert_eq!(
            parsed.site(FaultSite::CholeskyFail),
            Some(SiteConfig { rate: 1.0, max: Some(1) })
        );
        assert_eq!(
            parsed.site(FaultSite::TraceCorrupt),
            Some(SiteConfig { rate: 0.05, max: None })
        );
        assert!(FaultConfig::parse("bogus=1", 0).is_err());
        assert!(FaultConfig::parse("nan_loss", 0).is_err());
        assert!(FaultConfig::parse("nan_loss=2.0", 0).is_err());
        assert!(FaultConfig::parse("cholesky=1xzz", 0).is_err());
        // Empty spec parses to an empty plan.
        let empty = FaultConfig::parse("", 3).unwrap();
        assert_eq!(empty, FaultConfig::new(3));
    }
}
