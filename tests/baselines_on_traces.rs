//! Cross-crate integration: every baseline technique against every trace
//! family, checking finiteness, sane magnitudes, and the pattern-vs-method
//! interactions the paper's motivation section builds on.

use ld_api::{walk_forward, Partition, Predictor, Series};
use ld_baselines::cloudinsight::table2_pool;
use ld_baselines::{CloudInsight, CloudScale, WoodPredictor};
use ld_traces::{TraceConfig, WorkloadKind};

fn capped(kind: WorkloadKind, interval_mins: u32, max_len: usize) -> Series {
    let s = TraceConfig {
        kind,
        interval_mins,
    }
    .build(0);
    if s.len() <= max_len {
        return s;
    }
    Series::new(
        s.name.clone(),
        s.interval_mins,
        s.values[s.len() - max_len..].to_vec(),
    )
}

#[test]
fn all_baselines_produce_finite_mape_on_all_families() {
    for kind in WorkloadKind::ALL {
        let interval = *kind.intervals().last().unwrap(); // coarsest = fastest
        let series = capped(kind, interval, 400);
        let partition = Partition::paper_default(series.len());
        let baselines: Vec<Box<dyn Predictor>> = vec![
            Box::new(CloudInsight::new(0)),
            Box::new(CloudScale::default()),
            Box::new(WoodPredictor::default()),
        ];
        for mut b in baselines {
            let r = walk_forward(b.as_mut(), &series, partition.val_end);
            assert!(
                r.mape().is_finite() && r.mape() >= 0.0,
                "{} on {}: MAPE {}",
                r.predictor,
                series.name,
                r.mape()
            );
            assert!(r.preds.iter().all(|p| *p >= 0.0 && p.is_finite()));
        }
    }
}

#[test]
fn every_pool_member_survives_a_bursty_trace() {
    // The Facebook trace at 5 minutes is the nastiest input (tiny JARs,
    // zeros, bursts); all 21 members must stay finite on it.
    let series = capped(WorkloadKind::Facebook, 5, 288);
    let partition = Partition::paper_default(series.len());
    for mut member in table2_pool(0) {
        let r = walk_forward(member.as_mut(), &series, partition.val_end);
        assert!(
            r.mape().is_finite(),
            "member {} produced non-finite MAPE",
            r.predictor
        );
    }
}

#[test]
fn cloudscale_shines_on_seasonal_but_not_on_bursty() {
    // The paper's Fig. 2 story: FFT-based CloudScale is strong where a
    // dominant period exists and weak where none does.
    let wiki = capped(WorkloadKind::Wikipedia, 30, 800);
    let fb = capped(WorkloadKind::Facebook, 5, 288);
    let mape = |series: &Series| {
        let partition = Partition::paper_default(series.len());
        let mut cs = CloudScale::default();
        walk_forward(&mut cs, series, partition.val_end).mape()
    };
    let wiki_mape = mape(&wiki);
    let fb_mape = mape(&fb);
    assert!(
        fb_mape > wiki_mape * 1.5,
        "CloudScale wiki {wiki_mape}% vs facebook {fb_mape}%"
    );
}

#[test]
fn coarser_intervals_are_easier_for_low_volume_traces() {
    // "the LoadDynamics's MAPEs were higher when the time interval is
    // smaller, for the Facebook, LCG and Azure workloads" — the Poisson
    // floor shrinks with aggregation; baselines see the same effect.
    let mape_at = |interval: u32| {
        let series = capped(WorkloadKind::Azure, interval, 900);
        let partition = Partition::paper_default(series.len());
        let mut wood = WoodPredictor::default();
        walk_forward(&mut wood, &series, partition.val_end).mape()
    };
    let fine = mape_at(10);
    let coarse = mape_at(60);
    assert!(coarse < fine, "AZ-10min {fine}% vs AZ-60min {coarse}%");
}

#[test]
fn cloudinsight_tracks_within_factor_of_best_single_baseline() {
    // The ensemble should never be catastrophically worse than the better
    // of CloudScale/Wood on a well-behaved workload.
    let series = capped(WorkloadKind::Google, 30, 600);
    let partition = Partition::paper_default(series.len());
    let run = |p: &mut dyn Predictor| walk_forward(p, &series, partition.val_end).mape();
    let ci = run(&mut CloudInsight::new(0));
    let cs = run(&mut CloudScale::default());
    let wood = run(&mut WoodPredictor::default());
    let best = cs.min(wood);
    assert!(ci < best * 2.5, "CloudInsight {ci}% vs best single {best}%");
}
