//! Cross-crate equivalence gates for the allocation-free compute kernels.
//!
//! Every optimized hot path in the workspace retains its pre-change
//! reference implementation; this suite pins the two together from outside
//! the owning crates, at the same tolerances `ld-perfbench` asserts before
//! it times anything:
//!
//! - LSTM forward and BPTT: fast workspace kernels vs the allocating
//!   reference paths, 1e-9 relative.
//! - BPTT gradients vs central finite differences (the ground truth both
//!   implementations must agree with).
//! - Packed register-tiled matmul (FMA lanes) vs the naive streaming
//!   kernel: 1e-9 relative; pack/unpack round trips: **bitwise**.
//! - The register-blocked packed-A GEMM (plain lanes) and its fused
//!   accumulate+bias store vs the naive kernels: **bitwise**, including
//!   edge tiles and 1xN / Nx1 degenerate shapes.
//! - The fused LSTM gate step (one packed `[W | U | b]` mat-vec) vs the
//!   per-row three-term reference step: 1e-9 relative; the batched fused
//!   inference path vs `predict_reference`: **bitwise**.
//! - Packed-panel and row-parallel Gram builds vs the serial build:
//!   **bitwise**.
//! - The flat-slab CART tree builder vs the retained index-sort reference
//!   builder (through the forest and boosting ensembles): **bitwise**.
//! - A full `Trainer::fit` run through the fast path vs the reference
//!   trainer semantics: identical epoch count, losses within 1e-7 relative.

use ld_gp::gram;
use ld_gp::{Kernel, KernelKind};
use ld_linalg::Matrix;
use ld_nn::forecaster::{ForecasterConfig, ForecasterGrads, LstmForecaster};
use ld_nn::reference::ReferenceLstmForecaster;
use ld_nn::{make_windows, Adam, AdamConfig, TrainOptions, Trainer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn assert_rel(what: &str, a: f64, b: f64, tol: f64) {
    let scale = a.abs().max(b.abs()).max(1.0);
    assert!(
        (a - b).abs() <= tol * scale,
        "{what}: {a} vs {b} (tol {tol} relative)"
    );
}

/// A scaled-JAR-like window in `[0, 1]`.
fn window(len: usize, rng: &mut StdRng) -> Vec<f64> {
    (0..len).map(|_| rng.gen_range(0.0..1.0)).collect()
}

fn grad_matrices(g: &ForecasterGrads) -> Vec<&Matrix> {
    let mut out = Vec::new();
    for layer in &g.lstm {
        out.push(&layer.dw);
        out.push(&layer.du);
        out.push(&layer.db);
    }
    out.push(&g.head.dw);
    out.push(&g.head.db);
    out
}

#[test]
fn lstm_forward_fast_matches_reference() {
    let mut rng = StdRng::seed_from_u64(0xE0_01);
    for &(n, s, layers) in &[(4usize, 3usize, 1usize), (12, 8, 2), (30, 16, 3)] {
        let model = LstmForecaster::new(ForecasterConfig {
            history_len: n,
            hidden_size: s,
            num_layers: layers,
            seed: 7,
        });
        for _ in 0..8 {
            let w = window(n, &mut rng);
            assert_rel(
                &format!("predict n={n} s={s} L={layers}"),
                model.predict(&w),
                model.predict_reference(&w),
                1e-9,
            );
        }
    }
}

#[test]
fn lstm_bptt_fast_matches_reference() {
    let mut rng = StdRng::seed_from_u64(0xE0_02);
    for &(n, s, layers) in &[(5usize, 4usize, 1usize), (16, 10, 2)] {
        let model = LstmForecaster::new(ForecasterConfig {
            history_len: n,
            hidden_size: s,
            num_layers: layers,
            seed: 11,
        });
        for case in 0..6 {
            let w = window(n, &mut rng);
            let target = rng.gen_range(0.0..1.0);
            let (loss_fast, grads_fast) = model.sample_grads(&w, target);
            let (loss_ref, grads_ref) = model.sample_grads_reference(&w, target);
            assert_rel(&format!("bptt loss case {case}"), loss_fast, loss_ref, 1e-9);
            for (i, (f, r)) in grad_matrices(&grads_fast)
                .iter()
                .zip(grad_matrices(&grads_ref))
                .enumerate()
            {
                let scale = r.frobenius_norm().max(1.0);
                assert!(
                    f.max_abs_diff(r) <= 1e-9 * scale,
                    "bptt grads case {case} tensor {i}: diff {}",
                    f.max_abs_diff(r)
                );
            }
        }
    }
}

#[test]
fn lstm_grads_match_finite_differences() {
    let mut rng = StdRng::seed_from_u64(0xE0_03);
    let config = ForecasterConfig {
        history_len: 6,
        hidden_size: 5,
        num_layers: 2,
        seed: 13,
    };
    let model = LstmForecaster::new(config);
    let w = window(6, &mut rng);
    let target = 0.4;
    let (_, grads) = model.sample_grads(&w, target);

    // Central difference of the sample loss with respect to a spread of
    // parameter entries in every tensor.
    let loss_of = |m: &LstmForecaster| {
        let d = m.predict(&w) - target;
        d * d
    };
    let perturbed = |slot: usize, entry: usize, eps: f64| {
        let mut m = model.clone();
        let dummy = m.zero_grads();
        let mut current = 0usize;
        m.visit_params(&dummy, &mut |p, _| {
            if current == slot {
                p.as_mut_slice()[entry] += eps;
            }
            current += 1;
        });
        m
    };

    let mut slots = 0usize;
    model
        .clone()
        .visit_params(&grads, &mut |_, _| slots += 1);
    let grad_mats = grad_matrices(&grads);
    assert_eq!(slots, grad_mats.len(), "visit_params order drifted");

    const EPS: f64 = 1e-5;
    for (slot, g) in grad_mats.iter().enumerate() {
        let len = g.as_slice().len();
        for entry in [0, len / 2, len - 1] {
            let up = loss_of(&perturbed(slot, entry, EPS));
            let down = loss_of(&perturbed(slot, entry, -EPS));
            let fd = (up - down) / (2.0 * EPS);
            let analytic = g.as_slice()[entry];
            assert!(
                (fd - analytic).abs() <= 1e-5 * fd.abs().max(analytic.abs()).max(1e-3),
                "slot {slot} entry {entry}: FD {fd} vs analytic {analytic}"
            );
        }
    }
}

#[test]
fn packed_matmul_matches_naive_within_1e9() {
    // Shapes cover full micro-tiles, edge tiles in both dimensions
    // (non-multiples of the 8x4 tile), and the 1xN / Nx1 degenerate edges.
    // The packed kernel's FMA lanes round once per step, so the contract
    // is 1e-9 relative (the dispatcher's documented tolerance), not
    // bitwise.
    let mut rng = StdRng::seed_from_u64(0xE0_04);
    for &(m, k, n) in &[
        (2usize, 3usize, 4usize),
        (1, 11, 9),
        (9, 11, 1),
        (8, 16, 4),
        (33, 65, 17),
        (80, 120, 96),
    ] {
        let a = Matrix::random_uniform(m, k, 1.0, &mut rng);
        let b = Matrix::random_uniform(k, n, 1.0, &mut rng);
        let naive = a.matmul_naive(&b).unwrap();
        let scale = naive.frobenius_norm().max(1.0);
        assert!(
            a.matmul_packed(&b).unwrap().max_abs_diff(&naive) <= 1e-9 * scale,
            "({m}x{k})*({k}x{n}): packed drifts from naive"
        );
        assert!(a.matmul(&b).unwrap().max_abs_diff(&naive) <= 1e-9 * scale);
    }
}

#[test]
fn pack_round_trips_are_lossless() {
    // pack(A) / pack(B) followed by unpack restores the flat buffer
    // bitwise, including at shapes that force zero-padded edge panels.
    let mut rng = StdRng::seed_from_u64(0xE0_14);
    for &(r, c) in &[(1usize, 1usize), (1, 10), (10, 1), (7, 5), (16, 12), (31, 33)] {
        let flat: Vec<f64> = (0..r * c).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let a = ld_linalg::pack::PackedA::pack(&flat, r, c);
        assert_eq!(a.unpack(), flat, "{r}x{c} A round trip");
        let mut bp = Vec::new();
        ld_linalg::pack::pack_b_into(&flat, r, c, &mut bp);
        assert_eq!(ld_linalg::pack::unpack_b(&bp, r, c), flat, "{r}x{c} B round trip");
    }
}

#[test]
fn bitwise_packed_gemm_matches_naive() {
    // The plain-lane packed-A kernel must agree **bitwise** with the naive
    // product: per element both are one ascending-k multiply/add chain.
    // Shapes cover full panels, short final panels, column remainders
    // (n % 8), and the 1xN / Nx1 degenerate edges.
    let mut rng = StdRng::seed_from_u64(0xE0_24);
    for &(m, k, n) in &[
        (1usize, 1usize, 1usize),
        (1, 7, 13),
        (13, 7, 1),
        (8, 16, 8),
        (12, 5, 11),
        (33, 65, 17),
        (64, 48, 40),
    ] {
        let a = Matrix::random_uniform(m, k, 1.0, &mut rng);
        let b = Matrix::random_uniform(k, n, 1.0, &mut rng);
        let naive = a.matmul_naive(&b).unwrap();
        let packed = ld_linalg::pack::PackedA::from_matrix(&a);

        let mut fast = vec![0.0; m * n];
        packed.matmul_into(&b, &mut fast);
        for (i, (f, r)) in fast.iter().zip(naive.as_slice()).enumerate() {
            assert_eq!(
                f.to_bits(),
                r.to_bits(),
                "({m}x{k})*({k}x{n}) element {i}: {f} vs {r}"
            );
        }

        // The fused accumulate+bias store folds `(out + acc) + bias[row]`
        // with the product accumulated to completion first.
        let bias: Vec<f64> = (0..m).map(|i| (i as f64 * 0.3).cos()).collect();
        let seed: Vec<f64> = (0..m * n).map(|i| (i as f64 * 0.17).sin()).collect();
        let mut acc = seed.clone();
        packed.matmul_acc_bias_into(&b, &bias, &mut acc);
        for i in 0..m {
            for j in 0..n {
                let want = (seed[i * n + j] + naive[(i, j)]) + bias[i];
                assert_eq!(
                    acc[i * n + j].to_bits(),
                    want.to_bits(),
                    "acc+bias ({m}x{k})*({k}x{n}) at ({i},{j})"
                );
            }
        }
    }
}

#[test]
fn fused_gate_step_matches_reference_within_1e9() {
    let mut rng = StdRng::seed_from_u64(0xE0_34);
    let model = LstmForecaster::new(ForecasterConfig {
        history_len: 10,
        hidden_size: 24,
        num_layers: 2,
        seed: 77,
    });
    for (l, layer) in model.layers().iter().enumerate() {
        let i_dim = if l == 0 { 1 } else { 24 };
        let h = 24;
        let mut gate_in = vec![0.0; i_dim + h + 1];
        let mut z_fast = vec![0.0; 4 * h];
        let mut z_ref = vec![0.0; 4 * h];
        for case in 0..6 {
            let x: Vec<f64> = (0..i_dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let h_prev: Vec<f64> = (0..h).map(|_| rng.gen_range(-1.0..1.0)).collect();
            layer.gate_step_fused(&x, &h_prev, &mut gate_in, &mut z_fast);
            layer.gate_step_reference(&x, &h_prev, &mut z_ref);
            for (r, (f, want)) in z_fast.iter().zip(&z_ref).enumerate() {
                assert_rel(&format!("layer {l} case {case} gate row {r}"), *f, *want, 1e-9);
            }
        }
    }
}

#[test]
fn batched_fused_inference_matches_reference_bitwise() {
    let model = LstmForecaster::new(ForecasterConfig {
        history_len: 9,
        hidden_size: 7,
        num_layers: 2,
        seed: 41,
    });
    let batch = 5;
    let windows: Vec<f64> = (0..batch * 9)
        .map(|i| ((i as f64 * 0.29).sin() + 1.0) * 0.5)
        .collect();
    let mut scratch = ld_nn::BatchScratch::new();
    let mut out = vec![0.0; batch];
    model.predict_batch_fused(&windows, batch, &mut scratch, &mut out);
    for (j, got) in out.iter().enumerate() {
        let want = model.predict_reference(&windows[j * 9..(j + 1) * 9]);
        assert_eq!(got.to_bits(), want.to_bits(), "lane {j}: {got} vs {want}");
    }
}

#[test]
fn packed_gram_matches_serial_bitwise() {
    let mut rng = StdRng::seed_from_u64(0xE0_15);
    for n in [1usize, 7, 33, 64] {
        let x: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..3).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect();
        let kernel = Kernel::new(KernelKind::Rbf, 0.9, 0.4);
        let serial = gram::build_serial(&kernel, &x, 1e-6);
        let packed = gram::build_packed(&kernel, &x, 1e-6);
        assert_eq!(serial.max_abs_diff(&packed), 0.0, "n={n}");
    }
}

#[test]
fn tree_ensembles_match_reference_builder_bitwise() {
    // The flat-slab tree builder must grow the identical ensembles the
    // retained index-sort builder grows — same splits, thresholds, and
    // leaves — through every Table II tree member.
    use ld_api::Predictor as _;
    let data: Vec<f64> = (0..120)
        .map(|i| 40.0 + 12.0 * ((i as f64) * 0.21).sin() + (i % 5) as f64)
        .collect();
    let run = |reference: bool| -> Vec<f64> {
        ld_baselines::tree::set_reference_fit(reference);
        let mut ci = ld_baselines::CloudInsight::new(5);
        ci.fit(&data[..90]);
        let out: Vec<f64> = (90..120).map(|i| ci.predict(&data[..i])).collect();
        ld_baselines::tree::set_reference_fit(false);
        out
    };
    let fast = run(false);
    let reference = run(true);
    for (i, (f, r)) in fast.iter().zip(&reference).enumerate() {
        assert_eq!(f.to_bits(), r.to_bits(), "interval {i}: {f} vs {r}");
    }
}

#[test]
fn parallel_gram_matches_serial_bitwise() {
    let mut rng = StdRng::seed_from_u64(0xE0_05);
    let x: Vec<Vec<f64>> = (0..60)
        .map(|_| (0..4).map(|_| rng.gen_range(-1.0..1.0)).collect())
        .collect();
    let kernel = Kernel::new(KernelKind::Matern52, 1.1, 0.5);
    let serial = gram::build_serial(&kernel, &x, 1e-6);
    let parallel = gram::build_parallel(&kernel, &x, 1e-6);
    assert_eq!(serial.max_abs_diff(&parallel), 0.0);
    // The shipped dispatcher agrees with both, wherever it routes.
    assert_eq!(gram::build(&kernel, &x, 1e-6).max_abs_diff(&serial), 0.0);
}

#[test]
fn train_report_fast_matches_reference_trainer() {
    // Same seed => bit-identical initial weights; the fast trainer path
    // (workspace BPTT, accumulate-in-place batches) must then reproduce the
    // reference trainer's loss trajectory within the documented 1e-7
    // relative tolerance.
    let series: Vec<f64> = (0..140)
        .map(|i| 0.5 + 0.4 * (i as f64 * 0.13).sin() + 0.01 * (i % 7) as f64)
        .collect();
    let samples = make_windows(&series, 6);
    let (train, val) = samples.split_at(samples.len() - 20);

    let base = LstmForecaster::new(ForecasterConfig {
        history_len: 6,
        hidden_size: 6,
        num_layers: 1,
        seed: 19,
    });
    let trainer = Trainer::new(TrainOptions {
        batch_size: 16,
        max_epochs: 4,
        patience: 0,
        shuffle_seed: 3,
        ..TrainOptions::default()
    });

    let mut fast = base.clone();
    let fast_report = trainer.fit(
        &mut fast,
        &mut Adam::new(AdamConfig::default()),
        train,
        val,
    );
    let mut reference = ReferenceLstmForecaster(base.clone());
    let ref_report = trainer.fit(
        &mut reference,
        &mut Adam::new(AdamConfig::default()),
        train,
        val,
    );

    assert_eq!(fast_report.epochs_run, ref_report.epochs_run);
    for (e, (f, r)) in fast_report
        .train_losses
        .iter()
        .zip(&ref_report.train_losses)
        .enumerate()
    {
        assert_rel(&format!("train loss epoch {e}"), *f, *r, 1e-7);
    }
    for (e, (f, r)) in fast_report
        .val_losses
        .iter()
        .zip(&ref_report.val_losses)
        .enumerate()
    {
        assert_rel(&format!("val loss epoch {e}"), *f, *r, 1e-7);
    }
    // The trained models agree on fresh predictions too.
    let probe = &series[series.len() - 6..];
    assert_rel(
        "post-fit prediction",
        fast.predict(probe),
        reference.0.predict_reference(probe),
        1e-7,
    );
}
