//! Cross-crate equivalence gates for the allocation-free compute kernels.
//!
//! Every optimized hot path in the workspace retains its pre-change
//! reference implementation; this suite pins the two together from outside
//! the owning crates, at the same tolerances `ld-perfbench` asserts before
//! it times anything:
//!
//! - LSTM forward and BPTT: fast workspace kernels vs the allocating
//!   reference paths, 1e-9 relative.
//! - BPTT gradients vs central finite differences (the ground truth both
//!   implementations must agree with).
//! - Panel-blocked matmul vs the naive streaming kernel: **bitwise**.
//! - Row-parallel Gram build vs the serial build: **bitwise**.
//! - A full `Trainer::fit` run through the fast path vs the reference
//!   trainer semantics: identical epoch count, losses within 1e-7 relative.

use ld_gp::gram;
use ld_gp::{Kernel, KernelKind};
use ld_linalg::Matrix;
use ld_nn::forecaster::{ForecasterConfig, ForecasterGrads, LstmForecaster};
use ld_nn::reference::ReferenceLstmForecaster;
use ld_nn::{make_windows, Adam, AdamConfig, TrainOptions, Trainer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn assert_rel(what: &str, a: f64, b: f64, tol: f64) {
    let scale = a.abs().max(b.abs()).max(1.0);
    assert!(
        (a - b).abs() <= tol * scale,
        "{what}: {a} vs {b} (tol {tol} relative)"
    );
}

/// A scaled-JAR-like window in `[0, 1]`.
fn window(len: usize, rng: &mut StdRng) -> Vec<f64> {
    (0..len).map(|_| rng.gen_range(0.0..1.0)).collect()
}

fn grad_matrices(g: &ForecasterGrads) -> Vec<&Matrix> {
    let mut out = Vec::new();
    for layer in &g.lstm {
        out.push(&layer.dw);
        out.push(&layer.du);
        out.push(&layer.db);
    }
    out.push(&g.head.dw);
    out.push(&g.head.db);
    out
}

#[test]
fn lstm_forward_fast_matches_reference() {
    let mut rng = StdRng::seed_from_u64(0xE0_01);
    for &(n, s, layers) in &[(4usize, 3usize, 1usize), (12, 8, 2), (30, 16, 3)] {
        let model = LstmForecaster::new(ForecasterConfig {
            history_len: n,
            hidden_size: s,
            num_layers: layers,
            seed: 7,
        });
        for _ in 0..8 {
            let w = window(n, &mut rng);
            assert_rel(
                &format!("predict n={n} s={s} L={layers}"),
                model.predict(&w),
                model.predict_reference(&w),
                1e-9,
            );
        }
    }
}

#[test]
fn lstm_bptt_fast_matches_reference() {
    let mut rng = StdRng::seed_from_u64(0xE0_02);
    for &(n, s, layers) in &[(5usize, 4usize, 1usize), (16, 10, 2)] {
        let model = LstmForecaster::new(ForecasterConfig {
            history_len: n,
            hidden_size: s,
            num_layers: layers,
            seed: 11,
        });
        for case in 0..6 {
            let w = window(n, &mut rng);
            let target = rng.gen_range(0.0..1.0);
            let (loss_fast, grads_fast) = model.sample_grads(&w, target);
            let (loss_ref, grads_ref) = model.sample_grads_reference(&w, target);
            assert_rel(&format!("bptt loss case {case}"), loss_fast, loss_ref, 1e-9);
            for (i, (f, r)) in grad_matrices(&grads_fast)
                .iter()
                .zip(grad_matrices(&grads_ref))
                .enumerate()
            {
                let scale = r.frobenius_norm().max(1.0);
                assert!(
                    f.max_abs_diff(r) <= 1e-9 * scale,
                    "bptt grads case {case} tensor {i}: diff {}",
                    f.max_abs_diff(r)
                );
            }
        }
    }
}

#[test]
fn lstm_grads_match_finite_differences() {
    let mut rng = StdRng::seed_from_u64(0xE0_03);
    let config = ForecasterConfig {
        history_len: 6,
        hidden_size: 5,
        num_layers: 2,
        seed: 13,
    };
    let model = LstmForecaster::new(config);
    let w = window(6, &mut rng);
    let target = 0.4;
    let (_, grads) = model.sample_grads(&w, target);

    // Central difference of the sample loss with respect to a spread of
    // parameter entries in every tensor.
    let loss_of = |m: &LstmForecaster| {
        let d = m.predict(&w) - target;
        d * d
    };
    let perturbed = |slot: usize, entry: usize, eps: f64| {
        let mut m = model.clone();
        let dummy = m.zero_grads();
        let mut current = 0usize;
        m.visit_params(&dummy, &mut |p, _| {
            if current == slot {
                p.as_mut_slice()[entry] += eps;
            }
            current += 1;
        });
        m
    };

    let mut slots = 0usize;
    model
        .clone()
        .visit_params(&grads, &mut |_, _| slots += 1);
    let grad_mats = grad_matrices(&grads);
    assert_eq!(slots, grad_mats.len(), "visit_params order drifted");

    const EPS: f64 = 1e-5;
    for (slot, g) in grad_mats.iter().enumerate() {
        let len = g.as_slice().len();
        for entry in [0, len / 2, len - 1] {
            let up = loss_of(&perturbed(slot, entry, EPS));
            let down = loss_of(&perturbed(slot, entry, -EPS));
            let fd = (up - down) / (2.0 * EPS);
            let analytic = g.as_slice()[entry];
            assert!(
                (fd - analytic).abs() <= 1e-5 * fd.abs().max(analytic.abs()).max(1e-3),
                "slot {slot} entry {entry}: FD {fd} vs analytic {analytic}"
            );
        }
    }
}

#[test]
fn blocked_matmul_matches_naive_bitwise() {
    let mut rng = StdRng::seed_from_u64(0xE0_04);
    for &(m, k, n) in &[(2usize, 3usize, 4usize), (33, 65, 17), (80, 120, 96)] {
        let a = Matrix::random_uniform(m, k, 1.0, &mut rng);
        let b = Matrix::random_uniform(k, n, 1.0, &mut rng);
        let naive = a.matmul_naive(&b).unwrap();
        assert_eq!(
            a.matmul_blocked(&b).unwrap().max_abs_diff(&naive),
            0.0,
            "({m}x{k})*({k}x{n}): blocked differs from naive"
        );
        assert_eq!(a.matmul(&b).unwrap().max_abs_diff(&naive), 0.0);
    }
}

#[test]
fn parallel_gram_matches_serial_bitwise() {
    let mut rng = StdRng::seed_from_u64(0xE0_05);
    let x: Vec<Vec<f64>> = (0..60)
        .map(|_| (0..4).map(|_| rng.gen_range(-1.0..1.0)).collect())
        .collect();
    let kernel = Kernel::new(KernelKind::Matern52, 1.1, 0.5);
    let serial = gram::build_serial(&kernel, &x, 1e-6);
    let parallel = gram::build_parallel(&kernel, &x, 1e-6);
    assert_eq!(serial.max_abs_diff(&parallel), 0.0);
    // The shipped dispatcher agrees with both, wherever it routes.
    assert_eq!(gram::build(&kernel, &x, 1e-6).max_abs_diff(&serial), 0.0);
}

#[test]
fn train_report_fast_matches_reference_trainer() {
    // Same seed => bit-identical initial weights; the fast trainer path
    // (workspace BPTT, accumulate-in-place batches) must then reproduce the
    // reference trainer's loss trajectory within the documented 1e-7
    // relative tolerance.
    let series: Vec<f64> = (0..140)
        .map(|i| 0.5 + 0.4 * (i as f64 * 0.13).sin() + 0.01 * (i % 7) as f64)
        .collect();
    let samples = make_windows(&series, 6);
    let (train, val) = samples.split_at(samples.len() - 20);

    let base = LstmForecaster::new(ForecasterConfig {
        history_len: 6,
        hidden_size: 6,
        num_layers: 1,
        seed: 19,
    });
    let trainer = Trainer::new(TrainOptions {
        batch_size: 16,
        max_epochs: 4,
        patience: 0,
        shuffle_seed: 3,
        ..TrainOptions::default()
    });

    let mut fast = base.clone();
    let fast_report = trainer.fit(
        &mut fast,
        &mut Adam::new(AdamConfig::default()),
        train,
        val,
    );
    let mut reference = ReferenceLstmForecaster(base.clone());
    let ref_report = trainer.fit(
        &mut reference,
        &mut Adam::new(AdamConfig::default()),
        train,
        val,
    );

    assert_eq!(fast_report.epochs_run, ref_report.epochs_run);
    for (e, (f, r)) in fast_report
        .train_losses
        .iter()
        .zip(&ref_report.train_losses)
        .enumerate()
    {
        assert_rel(&format!("train loss epoch {e}"), *f, *r, 1e-7);
    }
    for (e, (f, r)) in fast_report
        .val_losses
        .iter()
        .zip(&ref_report.val_losses)
        .enumerate()
    {
        assert_rel(&format!("val loss epoch {e}"), *f, *r, 1e-7);
    }
    // The trained models agree on fresh predictions too.
    let probe = &series[series.len() - 6..];
    assert_rel(
        "post-fit prediction",
        fast.predict(probe),
        reference.0.predict_reference(probe),
        1e-7,
    );
}
