//! Span-tracing pipeline regression: the `ld-trace` layer must (a) record
//! a deterministic span tree for a seeded run regardless of thread
//! scheduling, (b) never perturb the run it observes, and (c) export
//! valid Chrome trace-event JSON, folded flamegraph stacks and a
//! schema-valid run manifest.

use ld_api::Series;
use ld_telemetry::{
    validate_chrome_trace, validate_folded, RunManifest, TraceSnapshot, Tracer,
};
use loaddynamics::{FrameworkConfig, LoadDynamics, OptimizationOutcome};

fn seasonal_series(len: usize) -> Series {
    Series::new(
        "seasonal",
        30,
        (0..len)
            .map(|i| 100.0 + 40.0 * (i as f64 * 0.3).sin())
            .collect(),
    )
}

/// A small traced fast-preset run: 3 init points + 1 BO iteration.
fn run_traced(seed: u64) -> (OptimizationOutcome, TraceSnapshot) {
    let tracer = Tracer::enabled();
    let mut config = FrameworkConfig::fast_preset(seed).with_tracer(tracer.clone());
    config.max_iters = 4;
    let outcome = LoadDynamics::new(config).optimize(&seasonal_series(220));
    (outcome, tracer.snapshot())
}

#[test]
fn identical_seeded_runs_produce_identically_ordered_span_trees() {
    let (_, a) = run_traced(1);
    let (_, b) = run_traced(1);
    let paths_a = a.logical_paths();
    let paths_b = b.logical_paths();
    assert!(!paths_a.is_empty(), "traced run recorded no spans");
    assert_eq!(
        paths_a, paths_b,
        "two identically-seeded runs must yield identically-ordered span trees"
    );
}

#[test]
fn span_tree_covers_the_search_hierarchy() {
    let (_, snap) = run_traced(2);
    let paths = snap.logical_paths();
    let has = |pred: &dyn Fn(&str) -> bool, what: &str| {
        assert!(
            paths.iter().any(|p| pred(p)),
            "span tree missing {what}; got roots like {:?}",
            &paths[..paths.len().min(12)]
        );
    };
    has(&|p| p == "search", "the `search` root");
    has(&|p| p.starts_with("search/init"), "init-design spans");
    has(&|p| p.starts_with("search/iter"), "BO iteration spans");
    has(&|p| p.contains("/surrogate_fit"), "surrogate-fit spans");
    has(&|p| p.ends_with("/gram_build"), "Gram-build attribution spans");
    has(&|p| p.ends_with("/cholesky"), "Cholesky attribution spans");
    has(&|p| p.contains("/propose"), "acquisition/propose spans");
    has(&|p| p.contains("/evaluate/train"), "candidate-train spans");
    has(&|p| p.contains("/train/epoch"), "train-epoch spans");
    has(&|p| p.contains("/batch") && p.ends_with("/forward"), "forward attribution spans");
    has(&|p| p.contains("/batch") && p.ends_with("/bptt"), "BPTT attribution spans");
    has(&|p| p.contains("epoch") && p.ends_with("/validate"), "validation spans");
    has(&|p| p.starts_with("search/retrain"), "the final retrain span");
}

#[test]
fn tracing_is_a_pure_observer() {
    let traced = run_traced(3).0;
    let mut config = FrameworkConfig::fast_preset(3);
    config.max_iters = 4;
    let untraced = LoadDynamics::new(config).optimize(&seasonal_series(220));
    assert_eq!(traced.hyperparams, untraced.hyperparams);
    assert_eq!(
        traced.val_mape.to_bits(),
        untraced.val_mape.to_bits(),
        "enabling tracing must not change the search outcome"
    );
    assert_eq!(traced.trials.trials.len(), untraced.trials.trials.len());
    for (a, b) in traced.trials.trials.iter().zip(&untraced.trials.trials) {
        assert_eq!(a.value.to_bits(), b.value.to_bits());
    }
}

#[test]
fn exporters_validate_and_roundtrip() {
    let (_, snap) = run_traced(4);

    let chrome = snap.to_chrome_trace();
    let events = validate_chrome_trace(&chrome).expect("chrome trace must validate");
    assert_eq!(events, snap.spans.len(), "one event per span");

    let folded = snap.to_folded();
    validate_folded(&folded).expect("folded stacks must validate");

    let restored = TraceSnapshot::from_json(&snap.to_json()).expect("snapshot JSON round-trip");
    assert_eq!(restored, snap);
}

#[test]
fn malformed_exports_are_rejected() {
    assert!(validate_chrome_trace("not json").is_err());
    assert!(validate_chrome_trace("{}").is_err());
    assert!(validate_chrome_trace(r#"{"traceEvents": []}"#).is_err());
    assert!(
        validate_chrome_trace(r#"{"traceEvents": [{"name": "x"}]}"#).is_err(),
        "events missing required fields must be rejected"
    );
    assert!(validate_folded("").is_err());
    assert!(validate_folded("stack notanumber\n").is_err());
    assert!(validate_folded("a;;b 10\n").is_err());
}

#[test]
fn run_manifest_stamps_and_roundtrips() {
    let (outcome, snap) = run_traced(5);
    let manifest = RunManifest::new("trace-pipeline-test")
        .seed(5)
        .config("series", "seasonal-220")
        .config("selected_hyperparams", outcome.hyperparams)
        .output("chrome_trace", "trace.json")
        .output("folded", "trace.json.folded")
        .with_trace_summary(&snap);
    manifest.validate().expect("manifest must validate");
    let restored = RunManifest::from_json(&manifest.to_json()).expect("manifest round-trip");
    restored.validate().expect("restored manifest must validate");
    assert_eq!(restored.tool, "trace-pipeline-test");
    assert_eq!(restored.seeds, vec![5]);
    assert_eq!(restored.trace_spans, snap.spans.len() as u64);
    assert_eq!(restored.output_path("chrome_trace"), Some("trace.json"));
}

#[test]
fn disabled_tracer_records_nothing_through_the_full_pipeline() {
    let tracer = Tracer::disabled();
    let mut config = FrameworkConfig::fast_preset(6).with_tracer(tracer.clone());
    config.max_iters = 4;
    let _ = LoadDynamics::new(config).optimize(&seasonal_series(220));
    assert_eq!(tracer.snapshot(), TraceSnapshot::default());
}
