//! Cross-crate integration: prediction accuracy must translate into
//! auto-scaling outcomes (the causal chain behind Fig. 10).

use ld_api::{Partition, Predictor, Series};
use ld_autoscale::{simulate, SimConfig};
use ld_traces::{TraceConfig, WorkloadKind};

fn azure_hourly() -> Series {
    let raw = TraceConfig {
        kind: WorkloadKind::Azure,
        interval_mins: 60,
    }
    .build(0);
    raw.scaled(0.6)
}

/// Predicts the true next value perturbed by a fixed relative bias.
struct Biased<'a> {
    values: &'a [f64],
    bias: f64,
}

impl Predictor for Biased<'_> {
    fn name(&self) -> String {
        format!("biased({:+.0}%)", self.bias * 100.0)
    }
    fn fit(&mut self, _h: &[f64]) {}
    fn predict(&mut self, h: &[f64]) -> f64 {
        self.values[h.len()] * (1.0 + self.bias)
    }
}

#[test]
fn under_biased_predictions_slow_jobs_down() {
    let series = azure_hourly();
    let partition = Partition::paper_default(series.len());
    let config = SimConfig {
        test_start: partition.val_end,
        ..SimConfig::default()
    };
    let values = series.values.clone();
    let exact = simulate(
        &mut Biased {
            values: &values,
            bias: 0.0,
        },
        &series,
        &config,
    );
    let under = simulate(
        &mut Biased {
            values: &values,
            bias: -0.3,
        },
        &series,
        &config,
    );
    assert!(under.under_provisioning_rate() > exact.under_provisioning_rate());
    assert!(under.avg_turnaround_secs() > exact.avg_turnaround_secs());
    // Under-biasing cannot increase over-provisioning.
    assert!(under.over_provisioning_rate() <= exact.over_provisioning_rate() + 1e-9);
}

#[test]
fn over_biased_predictions_waste_vms_but_stay_fast() {
    let series = azure_hourly();
    let partition = Partition::paper_default(series.len());
    let config = SimConfig {
        test_start: partition.val_end,
        ..SimConfig::default()
    };
    let values = series.values.clone();
    let exact = simulate(
        &mut Biased {
            values: &values,
            bias: 0.0,
        },
        &series,
        &config,
    );
    let over = simulate(
        &mut Biased {
            values: &values,
            bias: 0.4,
        },
        &series,
        &config,
    );
    assert!(over.over_provisioning_rate() > exact.over_provisioning_rate());
    assert!(over.idle_vm_count() > exact.idle_vm_count());
    // Jobs never wait when over-provisioned: turnaround matches exact.
    assert!((over.avg_turnaround_secs() - exact.avg_turnaround_secs()).abs() < 1e-9);
}

#[test]
fn accuracy_ordering_implies_provisioning_ordering() {
    // Three predictors of increasing noise: provisioning outcomes must
    // degrade monotonically — the core claim connecting Fig. 9 to Fig. 10.
    let series = azure_hourly();
    let partition = Partition::paper_default(series.len());
    let config = SimConfig {
        test_start: partition.val_end,
        ..SimConfig::default()
    };
    let values = series.values.clone();

    struct Noisy<'a> {
        values: &'a [f64],
        amplitude: f64,
    }
    impl Predictor for Noisy<'_> {
        fn name(&self) -> String {
            format!("noisy({})", self.amplitude)
        }
        fn fit(&mut self, _h: &[f64]) {}
        fn predict(&mut self, h: &[f64]) -> f64 {
            // Deterministic alternating error of the given relative size.
            let sign = if h.len().is_multiple_of(2) { 1.0 } else { -1.0 };
            (self.values[h.len()] * (1.0 + sign * self.amplitude)).max(0.0)
        }
    }

    let mut turnarounds = Vec::new();
    for amplitude in [0.0, 0.25, 0.6] {
        let report = simulate(
            &mut Noisy {
                values: &values,
                amplitude,
            },
            &series,
            &config,
        );
        turnarounds.push(report.avg_turnaround_secs());
    }
    assert!(
        turnarounds[0] <= turnarounds[1] && turnarounds[1] <= turnarounds[2],
        "turnarounds {turnarounds:?}"
    );
}

#[test]
fn simulation_covers_exactly_the_test_partition() {
    let series = azure_hourly();
    let partition = Partition::paper_default(series.len());
    let config = SimConfig {
        test_start: partition.val_end,
        ..SimConfig::default()
    };
    struct Zero;
    impl Predictor for Zero {
        fn name(&self) -> String {
            "zero".into()
        }
        fn fit(&mut self, _h: &[f64]) {}
        fn predict(&mut self, _h: &[f64]) -> f64 {
            0.0
        }
    }
    let report = simulate(&mut Zero, &series, &config);
    assert_eq!(report.intervals.len(), series.len() - partition.val_end);
    // Actuals recorded must match the trace.
    for (rec, v) in report.intervals.iter().zip(&series.values[partition.val_end..]) {
        assert_eq!(rec.actual, v.round() as usize);
    }
}
