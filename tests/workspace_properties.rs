//! Property-based tests spanning crate boundaries: invariants that must
//! hold for *any* workload, not just the five generated families.

use ld_api::{walk_forward, MinMaxScaler, Partition, Predictor, Series};
use ld_baselines::{CloudScale, WoodPredictor};
use ld_nn::make_windows;
use proptest::prelude::*;

/// Arbitrary JAR series: positive, finite, length 40..200.
fn jar_series() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0..10_000.0f64, 40..200)
}

struct Persist;
impl Predictor for Persist {
    fn name(&self) -> String {
        "persist".into()
    }
    fn fit(&mut self, _h: &[f64]) {}
    fn predict(&mut self, h: &[f64]) -> f64 {
        *h.last().unwrap()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn partition_is_a_disjoint_cover(values in jar_series()) {
        let p = Partition::paper_default(values.len());
        let total = p.train(&values).len() + p.val(&values).len() + p.test(&values).len();
        prop_assert_eq!(total, values.len());
        // Reassembling the three slices reproduces the series.
        let mut rebuilt = p.train(&values).to_vec();
        rebuilt.extend_from_slice(p.val(&values));
        rebuilt.extend_from_slice(p.test(&values));
        prop_assert_eq!(rebuilt, values);
    }

    #[test]
    fn scaler_fit_on_train_roundtrips_everything(values in jar_series()) {
        let p = Partition::paper_default(values.len());
        let scaler = MinMaxScaler::fit(p.train(&values));
        for &v in &values {
            prop_assert!((scaler.inverse(scaler.transform(v)) - v).abs() < 1e-6);
        }
    }

    #[test]
    fn walk_forward_always_aligns_preds_and_actuals(values in jar_series()) {
        let series = Series::new("prop", 5, values);
        let p = Partition::paper_default(series.len());
        let r = walk_forward(&mut Persist, &series, p.val_end);
        prop_assert_eq!(r.preds.len(), r.actuals.len());
        prop_assert_eq!(r.actuals.clone(), series.values[p.val_end..].to_vec());
        prop_assert!(r.preds.iter().all(|v| v.is_finite() && *v >= 0.0));
        prop_assert!(r.mape() >= 0.0);
    }

    #[test]
    fn baselines_never_panic_or_emit_nan_on_arbitrary_series(values in jar_series()) {
        let series = Series::new("prop", 5, values);
        let p = Partition::paper_default(series.len());
        let mut cloudscale = CloudScale::default();
        let mut wood = WoodPredictor::default();
        let a = walk_forward(&mut cloudscale, &series, p.val_end);
        let b = walk_forward(&mut wood, &series, p.val_end);
        prop_assert!(a.mape().is_finite());
        prop_assert!(b.mape().is_finite());
    }

    #[test]
    fn windowing_covers_each_target_exactly_once(values in jar_series(), n in 1usize..12) {
        let windows = make_windows(&values, n);
        if values.len() > n {
            prop_assert_eq!(windows.len(), values.len() - n);
            for (k, w) in windows.iter().enumerate() {
                prop_assert_eq!(w.window.len(), n);
                prop_assert_eq!(w.target, values[k + n]);
                // Window contents match the series slice.
                prop_assert_eq!(&w.window[..], &values[k..k + n]);
            }
        } else {
            prop_assert!(windows.is_empty());
        }
    }

    #[test]
    fn aggregation_preserves_total_mass(values in jar_series(), factor in 1usize..8) {
        let series = Series::new("prop", 5, values);
        let agg = series.aggregate(factor);
        let used = agg.len() * factor;
        let total_base: f64 = series.values[..used].iter().sum();
        let total_agg: f64 = agg.values.iter().sum();
        prop_assert!((total_base - total_agg).abs() < 1e-6);
    }

    #[test]
    fn perfect_predictions_give_zero_error_metrics(values in jar_series()) {
        let preds = values.clone();
        prop_assert_eq!(ld_api::metrics::mape(&preds, &values), 0.0);
        prop_assert_eq!(ld_api::metrics::rmse(&preds, &values), 0.0);
        prop_assert_eq!(ld_api::metrics::mae(&preds, &values), 0.0);
    }
}
