//! Randomized property tests spanning crate boundaries: invariants that
//! must hold for *any* workload, not just the five generated families.
//! Seeded-loop style: each property runs over a fixed number of randomly
//! generated series so failures reproduce exactly.

use ld_api::{walk_forward, MinMaxScaler, Partition, Predictor, Series};
use ld_baselines::{CloudScale, WoodPredictor};
use ld_nn::make_windows;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 32;

/// Arbitrary JAR series: positive, finite, length 40..200.
fn jar_series(rng: &mut StdRng) -> Vec<f64> {
    let len = rng.gen_range(40..200usize);
    (0..len).map(|_| rng.gen_range(0.0..10_000.0)).collect()
}

struct Persist;
impl Predictor for Persist {
    fn name(&self) -> String {
        "persist".into()
    }
    fn fit(&mut self, _h: &[f64]) {}
    fn predict(&mut self, h: &[f64]) -> f64 {
        *h.last().unwrap()
    }
}

#[test]
fn partition_is_a_disjoint_cover() {
    let mut rng = StdRng::seed_from_u64(0x77A1);
    for _ in 0..CASES {
        let values = jar_series(&mut rng);
        let p = Partition::paper_default(values.len());
        let total = p.train(&values).len() + p.val(&values).len() + p.test(&values).len();
        assert_eq!(total, values.len());
        // Reassembling the three slices reproduces the series.
        let mut rebuilt = p.train(&values).to_vec();
        rebuilt.extend_from_slice(p.val(&values));
        rebuilt.extend_from_slice(p.test(&values));
        assert_eq!(rebuilt, values);
    }
}

#[test]
fn scaler_fit_on_train_roundtrips_everything() {
    let mut rng = StdRng::seed_from_u64(0x77A2);
    for _ in 0..CASES {
        let values = jar_series(&mut rng);
        let p = Partition::paper_default(values.len());
        let scaler = MinMaxScaler::fit(p.train(&values));
        for &v in &values {
            assert!((scaler.inverse(scaler.transform(v)) - v).abs() < 1e-6);
        }
    }
}

#[test]
fn walk_forward_always_aligns_preds_and_actuals() {
    let mut rng = StdRng::seed_from_u64(0x77A3);
    for _ in 0..CASES {
        let values = jar_series(&mut rng);
        let series = Series::new("prop", 5, values);
        let p = Partition::paper_default(series.len());
        let r = walk_forward(&mut Persist, &series, p.val_end);
        assert_eq!(r.preds.len(), r.actuals.len());
        assert_eq!(r.actuals, series.values[p.val_end..].to_vec());
        assert!(r.preds.iter().all(|v| v.is_finite() && *v >= 0.0));
        assert!(r.mape() >= 0.0);
    }
}

#[test]
fn baselines_never_panic_or_emit_nan_on_arbitrary_series() {
    let mut rng = StdRng::seed_from_u64(0x77A4);
    for _ in 0..8 {
        let values = jar_series(&mut rng);
        let series = Series::new("prop", 5, values);
        let p = Partition::paper_default(series.len());
        let mut cloudscale = CloudScale::default();
        let mut wood = WoodPredictor::default();
        let a = walk_forward(&mut cloudscale, &series, p.val_end);
        let b = walk_forward(&mut wood, &series, p.val_end);
        assert!(a.mape().is_finite());
        assert!(b.mape().is_finite());
    }
}

#[test]
fn windowing_covers_each_target_exactly_once() {
    let mut rng = StdRng::seed_from_u64(0x77A5);
    for _ in 0..CASES {
        let values = jar_series(&mut rng);
        let n = rng.gen_range(1..12usize);
        let windows = make_windows(&values, n);
        if values.len() > n {
            assert_eq!(windows.len(), values.len() - n);
            for (k, w) in windows.iter().enumerate() {
                assert_eq!(w.window.len(), n);
                assert_eq!(w.target, values[k + n]);
                // Window contents match the series slice.
                assert_eq!(&w.window[..], &values[k..k + n]);
            }
        } else {
            assert!(windows.is_empty());
        }
    }
}

#[test]
fn aggregation_preserves_total_mass() {
    let mut rng = StdRng::seed_from_u64(0x77A6);
    for _ in 0..CASES {
        let values = jar_series(&mut rng);
        let factor = rng.gen_range(1..8usize);
        let series = Series::new("prop", 5, values);
        let agg = series.aggregate(factor);
        let used = agg.len() * factor;
        let total_base: f64 = series.values[..used].iter().sum();
        let total_agg: f64 = agg.values.iter().sum();
        assert!((total_base - total_agg).abs() < 1e-6);
    }
}

#[test]
fn perfect_predictions_give_zero_error_metrics() {
    let mut rng = StdRng::seed_from_u64(0x77A7);
    for _ in 0..CASES {
        let values = jar_series(&mut rng);
        let preds = values.clone();
        assert_eq!(ld_api::metrics::mape(&preds, &values), 0.0);
        assert_eq!(ld_api::metrics::rmse(&preds, &values), 0.0);
        assert_eq!(ld_api::metrics::mae(&preds, &values), 0.0);
    }
}
