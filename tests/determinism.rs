//! Seeded-determinism regression: a LoadDynamics run is a pure function of
//! `(series, config)`. The same seed must reproduce the same selected
//! hyperparameters and bitwise-identical predictions, and enabling
//! telemetry must not perturb any of it.

use ld_api::{Predictor, Series};
use ld_telemetry::Telemetry;
use loaddynamics::{FrameworkConfig, LoadDynamics, OptimizationOutcome};

fn seasonal_series(len: usize) -> Series {
    Series::new(
        "seasonal",
        30,
        (0..len)
            .map(|i| 100.0 + 40.0 * (i as f64 * 0.3).sin())
            .collect(),
    )
}

fn run(seed: u64, telemetry: Option<Telemetry>) -> OptimizationOutcome {
    let mut config = FrameworkConfig::fast_preset(seed);
    config.max_iters = 4;
    if let Some(telemetry) = telemetry {
        config = config.with_telemetry(telemetry);
    }
    LoadDynamics::new(config).optimize(&seasonal_series(220))
}

/// Asserts two outcomes are indistinguishable: same hyperparameters, same
/// trial history (bitwise values), bitwise-identical predictions.
fn assert_identical(a: OptimizationOutcome, b: OptimizationOutcome) {
    assert_eq!(a.hyperparams, b.hyperparams);
    assert_eq!(a.val_mape.to_bits(), b.val_mape.to_bits());
    assert_eq!(a.trials.trials.len(), b.trials.trials.len());
    for (ta, tb) in a.trials.trials.iter().zip(&b.trials.trials) {
        assert_eq!(format!("{:?}", ta.params), format!("{:?}", tb.params));
        assert_eq!(ta.value.to_bits(), tb.value.to_bits());
    }
    let series = seasonal_series(220);
    let mut pa = a.predictor;
    let mut pb = b.predictor;
    for end in [60usize, 120, 180, 220] {
        let va = pa.predict(&series.values[..end]);
        let vb = pb.predict(&series.values[..end]);
        assert_eq!(va.to_bits(), vb.to_bits(), "prediction differs at {end}");
    }
}

#[test]
fn same_seed_reproduces_hyperparameters_and_predictions_bitwise() {
    assert_identical(run(9, None), run(9, None));
}

#[test]
fn enabling_telemetry_does_not_perturb_the_run() {
    // Acceptance check for the instrumentation: recording must be purely
    // observational, so an observed run matches an unobserved one bit for
    // bit.
    assert_identical(run(3, None), run(3, Some(Telemetry::enabled())));
}
