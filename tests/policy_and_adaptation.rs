//! Cross-crate integration: provisioning policies / cost model on real
//! generated traces, and online adaptation against regime-shifting load.

use ld_api::{Partition, Predictor, Series};
use ld_autoscale::{simulate, CostModel, ProvisioningPolicy, SimConfig};
use ld_traces::{TraceConfig, WorkloadKind};
use loaddynamics::{AdaptiveConfig, AdaptiveLoadDynamics};

fn azure_hourly() -> Series {
    TraceConfig {
        kind: WorkloadKind::Azure,
        interval_mins: 60,
    }
    .build(3)
    .scaled(0.6)
}

/// Predicts the previous value (persistence) — a decent but imperfect
/// predictor, so headroom has something to buy.
struct Persist;
impl Predictor for Persist {
    fn name(&self) -> String {
        "persist".into()
    }
    fn fit(&mut self, _h: &[f64]) {}
    fn predict(&mut self, h: &[f64]) -> f64 {
        *h.last().unwrap()
    }
}

#[test]
fn headroom_trades_cold_starts_for_idle_cost() {
    let series = azure_hourly();
    let partition = Partition::paper_default(series.len());
    let run = |policy: ProvisioningPolicy| {
        let config = SimConfig {
            test_start: partition.val_end,
            policy,
            ..SimConfig::default()
        };
        simulate(&mut Persist, &series, &config)
    };
    let exact = run(ProvisioningPolicy::Exact);
    let padded = run(ProvisioningPolicy::Headroom { factor: 0.3 });

    // More headroom -> fewer under-provisioned intervals, faster jobs...
    assert!(padded.under_provisioning_rate() < exact.under_provisioning_rate());
    assert!(padded.avg_turnaround_secs() <= exact.avg_turnaround_secs());
    // ...but more idle waste and higher cost.
    assert!(padded.over_provisioning_rate() > exact.over_provisioning_rate());
    let cost = CostModel::n1_standard_1_hourly();
    assert!(cost.wasted_cost(&padded) > cost.wasted_cost(&exact));
    assert!(cost.total_cost(&padded) > cost.total_cost(&exact));
}

#[test]
fn fixed_fleet_cannot_track_demand() {
    let series = azure_hourly();
    let partition = Partition::paper_default(series.len());
    let mean = series.mean().round() as usize;
    let config = SimConfig {
        test_start: partition.val_end,
        policy: ProvisioningPolicy::Fixed { vms: mean },
        ..SimConfig::default()
    };
    let fixed = simulate(&mut Persist, &series, &config);
    // A fixed fleet sized to the mean both under- and over-provisions.
    assert!(fixed.under_provisioning_rate() > 0.0);
    assert!(fixed.over_provisioning_rate() > 0.0);
}

#[test]
fn cost_model_consistency_on_simulated_report() {
    let series = azure_hourly();
    let partition = Partition::paper_default(series.len());
    let config = SimConfig {
        test_start: partition.val_end,
        ..SimConfig::default()
    };
    let report = simulate(&mut Persist, &series, &config);
    let cost = CostModel::n1_standard_1_hourly();
    let total = cost.total_cost(&report);
    let wasted = cost.wasted_cost(&report);
    assert!(total > 0.0);
    assert!(wasted >= 0.0 && wasted <= total);
    // Billed VM count equals max(pred, actual) per interval.
    let billed: usize = report
        .intervals
        .iter()
        .map(|r| r.predicted.max(r.actual))
        .sum();
    assert!((total - billed as f64 * 0.0475).abs() < 1e-9);
}

#[test]
fn adaptive_handles_azure_regime_shifts_without_thrashing() {
    // The Azure trace's regime shifts are exactly the drift scenario the
    // Section V extension targets; on an hourly series the adaptive
    // predictor must run end-to-end, stay finite, and not retrain every
    // other interval.
    let series = azure_hourly();
    let fit_end = series.len() / 2;
    let mut adaptive = AdaptiveLoadDynamics::new(AdaptiveConfig::fast_preset(1));
    adaptive.fit(&series.values[..fit_end]);
    let mut preds = Vec::new();
    for i in fit_end..series.len() {
        preds.push(adaptive.predict(&series.values[..i]));
    }
    assert!(preds.iter().all(|p| p.is_finite() && *p >= 0.0));
    // Cooldown bounds retraining frequency.
    let max_possible = (series.len() - fit_end) / 24 + 1;
    assert!(
        adaptive.retrain_count() <= max_possible,
        "{} retrains exceeds cooldown bound {max_possible}",
        adaptive.retrain_count()
    );
}
