//! Integration: the telemetry subsystem observing a full fast-preset
//! LoadDynamics run (the Fig. 6 workflow). Checks the whole recording
//! chain — trainer epochs, candidate evaluations, Bayesian-optimizer
//! trials, the strategy-agnostic search history, and the framework
//! summary — plus the JSON export.

use ld_api::Series;
use ld_telemetry::{Snapshot, Telemetry};
use loaddynamics::{FrameworkConfig, LoadDynamics};

const MAX_ITERS: usize = 5;

fn seasonal_series(len: usize) -> Series {
    Series::new(
        "seasonal",
        30,
        (0..len)
            .map(|i| 100.0 + 40.0 * (i as f64 * 0.3).sin())
            .collect(),
    )
}

/// Runs the fast-preset workflow with telemetry enabled and returns the
/// recorded snapshot.
fn optimized_snapshot(seed: u64) -> Snapshot {
    let telemetry = Telemetry::enabled();
    let mut config = FrameworkConfig::fast_preset(seed).with_telemetry(telemetry.clone());
    config.max_iters = MAX_ITERS;
    let outcome = LoadDynamics::new(config).optimize(&seasonal_series(240));
    assert!(outcome.val_mape.is_finite());
    telemetry.snapshot()
}

#[test]
fn search_history_matches_the_iteration_budget() {
    let snap = optimized_snapshot(11);
    let trials = snap.events_of("search", "trial");
    assert_eq!(trials.len(), MAX_ITERS, "one search event per BO iteration");
    for (i, trial) in trials.iter().enumerate() {
        assert_eq!(trial.index, i as u64);
        assert!(trial.num("val_mape").unwrap().is_finite());
        assert!(trial.field("hyperparams").is_some());
    }
    // The Bayesian optimizer records its own view of the same budget.
    assert_eq!(snap.events_of("bayesopt", "trial").len(), MAX_ITERS);
}

#[test]
fn incumbent_trajectory_is_monotone_non_increasing() {
    let snap = optimized_snapshot(11);
    let trials = snap.events_of("search", "trial");
    let mut prev = f64::INFINITY;
    let mut best = f64::INFINITY;
    for trial in &trials {
        let incumbent = trial.num("incumbent").unwrap();
        assert!(
            incumbent <= prev,
            "incumbent went up: {prev} -> {incumbent}"
        );
        best = best.min(trial.num("val_mape").unwrap());
        assert_eq!(incumbent, best, "incumbent must track the running best");
        prev = incumbent;
    }
}

#[test]
fn trainer_epochs_record_finite_losses() {
    let snap = optimized_snapshot(12);
    let epochs: Vec<_> = snap
        .events
        .iter()
        .filter(|e| e.kind == "epoch" && e.scope.starts_with("trainer/"))
        .collect();
    assert!(!epochs.is_empty(), "no trainer epoch events recorded");
    for epoch in &epochs {
        let train_mse = epoch.num("train_mse").unwrap();
        assert!(train_mse.is_finite() && train_mse >= 0.0);
        assert!(epoch.num("batches").unwrap() >= 1.0);
    }
    // Per candidate, the best-so-far training loss must improve on the
    // first epoch for at least one candidate (the loop is learning), and
    // the events_of ordering gives epochs in index order per scope.
    let mut any_improved = false;
    let scopes: std::collections::BTreeSet<_> =
        epochs.iter().map(|e| e.scope.clone()).collect();
    for scope in &scopes {
        let losses: Vec<f64> = snap
            .events_of(scope, "epoch")
            .iter()
            .map(|e| e.num("train_mse").unwrap())
            .collect();
        let first = losses[0];
        let best = losses.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(best <= first);
        if best < first {
            any_improved = true;
        }
    }
    assert!(any_improved, "no candidate's training loss ever improved");
    // The epoch counter aggregates exactly the recorded epoch events.
    assert_eq!(snap.counter("trainer.epochs"), epochs.len() as u64);
    // maxIters candidate evaluations plus the final retrain of the winner.
    assert_eq!(
        snap.counter("framework.candidate_evals"),
        MAX_ITERS as u64 + 1
    );
    assert!(snap.timer("trainer.fit").map_or(0, |t| t.count) >= 1);
}

#[test]
fn snapshot_exports_valid_json_with_framework_summary() {
    let snap = optimized_snapshot(13);
    // Re-parse via the same JSON path the CLI / bench binaries use.
    let json = serde_json::to_string_pretty(&snap).unwrap();
    let parsed = Snapshot::from_json(&json).unwrap();
    assert_eq!(parsed.counters, snap.counters);
    assert_eq!(parsed.events, snap.events);

    let summary = parsed.events_of("framework", "optimize");
    assert_eq!(summary.len(), 1);
    assert_eq!(summary[0].num("trials").unwrap() as usize, MAX_ITERS);
    assert!(summary[0].field("selected").is_some());
    assert_eq!(parsed.timer("framework.optimize").unwrap().count, 1);
}

#[test]
fn identical_runs_record_identical_logical_telemetry() {
    // Two runs with the same seed must agree on everything except wall
    // clock: same counters, same event keys, same non-timing payloads.
    let strip_times = |snap: &Snapshot| -> Vec<String> {
        snap.events
            .iter()
            .map(|e| {
                let fields: Vec<String> = e
                    .fields
                    .iter()
                    .filter(|f| !f.name.contains("secs"))
                    .map(|f| format!("{}={:?}", f.name, f.value))
                    .collect();
                format!("{}/{}/{} {}", e.scope, e.kind, e.index, fields.join(" "))
            })
            .collect()
    };
    let a = optimized_snapshot(14);
    let b = optimized_snapshot(14);
    assert_eq!(a.counters, b.counters);
    assert_eq!(strip_times(&a), strip_times(&b));
}
