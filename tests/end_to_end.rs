//! Cross-crate integration: the full LoadDynamics workflow on generated
//! traces, exactly as the paper's evaluation wires it together
//! (traces -> partition -> self-optimization -> walk-forward test).

use ld_api::{walk_forward, Partition, Predictor, Series};
use ld_traces::{TraceConfig, WorkloadKind};
use loaddynamics::{FrameworkConfig, LoadDynamics, SearchStrategy};

fn capped(config: TraceConfig, max_len: usize) -> Series {
    let s = config.build(0);
    if s.len() <= max_len {
        return s;
    }
    Series::new(
        s.name.clone(),
        s.interval_mins,
        s.values[s.len() - max_len..].to_vec(),
    )
}

#[test]
fn loaddynamics_end_to_end_on_facebook_trace() {
    let series = capped(
        TraceConfig {
            kind: WorkloadKind::Facebook,
            interval_mins: 10,
        },
        400,
    );
    let framework = LoadDynamics::new(FrameworkConfig::fast_preset(0));
    let outcome = framework.optimize(&series);
    assert!(outcome.val_mape.is_finite());
    assert!(outcome.trials.trials.len() >= 3);

    let partition = Partition::paper_default(series.len());
    let mut predictor = outcome.predictor;
    let result = walk_forward(&mut predictor, &series, partition.val_end);
    assert_eq!(result.preds.len(), series.len() - partition.val_end);
    // The Poisson floor for this configuration is ~25%; anything under 80%
    // proves the pipeline is learning rather than flailing.
    assert!(result.mape() < 80.0, "test MAPE {}", result.mape());
}

#[test]
fn loaddynamics_beats_mean_predictor_on_seasonal_trace() {
    let series = capped(
        TraceConfig {
            kind: WorkloadKind::Wikipedia,
            interval_mins: 30,
        },
        500,
    );
    let partition = Partition::paper_default(series.len());

    let outcome = LoadDynamics::new(FrameworkConfig::fast_preset(1)).optimize(&series);
    let mut ld = outcome.predictor;
    let ld_mape = walk_forward(&mut ld, &series, partition.val_end).mape();

    struct MeanAll;
    impl Predictor for MeanAll {
        fn name(&self) -> String {
            "mean".into()
        }
        fn fit(&mut self, _h: &[f64]) {}
        fn predict(&mut self, h: &[f64]) -> f64 {
            h.iter().sum::<f64>() / h.len() as f64
        }
    }
    let mean_mape = walk_forward(&mut MeanAll, &series, partition.val_end).mape();
    assert!(
        ld_mape < mean_mape * 0.6,
        "LoadDynamics {ld_mape}% vs mean {mean_mape}%"
    );
}

#[test]
fn brute_force_reference_is_at_least_as_good_in_validation() {
    // Grid over the same (tiny) space with a larger budget must find a
    // validation error no worse than BO's when both see the same seeds —
    // the LSTMBruteForce relationship of Fig. 9.
    let series = capped(
        TraceConfig {
            kind: WorkloadKind::Lcg,
            interval_mins: 30,
        },
        360,
    );
    let mut bo_cfg = FrameworkConfig::fast_preset(2);
    bo_cfg.max_iters = 4;
    let bo = LoadDynamics::new(bo_cfg).optimize(&series);

    let mut grid_cfg = FrameworkConfig::fast_preset(2);
    grid_cfg.strategy = SearchStrategy::Grid;
    grid_cfg.max_iters = 16;
    let grid = LoadDynamics::new(grid_cfg).optimize(&series);

    // Allow a tiny tolerance: the two searches may train the same
    // hyperparameters with identical results.
    assert!(
        grid.trials.best().value <= bo.trials.best().value + 1e-9,
        "grid {} vs bo {}",
        grid.trials.best().value,
        bo.trials.best().value
    );
}

#[test]
fn optimized_predictor_json_snapshot_is_self_contained() {
    let series = capped(
        TraceConfig {
            kind: WorkloadKind::Azure,
            interval_mins: 60,
        },
        300,
    );
    let outcome = LoadDynamics::new(FrameworkConfig::fast_preset(3)).optimize(&series);
    let json = outcome.predictor.to_json();
    let value: serde_json::Value = serde_json::from_str(&json).unwrap();
    let lstm = &value["kind"]["Lstm"];
    assert!(lstm["history_len"].as_u64().unwrap() >= 1);
    assert!(lstm["model"]["config"]["hidden_size"].as_u64().unwrap() >= 1);
}

#[test]
fn fourteen_configurations_partition_cleanly() {
    for config in ld_traces::all_configurations() {
        let series = config.build(0);
        let partition = Partition::paper_default(series.len());
        assert!(partition.train_end > 0, "{}", config.label());
        assert!(partition.val_end > partition.train_end, "{}", config.label());
        assert!(series.len() > partition.val_end, "{}", config.label());
        // The test partition must be large enough to be meaningful.
        assert!(
            series.len() - partition.val_end >= 28,
            "{} test partition too small",
            config.label()
        );
    }
}
