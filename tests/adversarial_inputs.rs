//! Adversarial-input properties: degenerate series that break naive
//! implementations (constant traces, all-zero traces, a single spike in a
//! flat line, traces shorter than any sensible history window, corrupted
//! raw values) must flow through the full self-optimization workflow
//! without panicking and still yield a predictor whose forecasts are
//! finite and non-negative.

use ld_api::{Predictor, Series};
use loaddynamics::{FrameworkConfig, LoadDynamics};

/// Runs the full fast-preset search with a small iteration budget and
/// checks the resulting predictor is usable on the same series.
fn optimize_and_probe(series: &Series, seed: u64) {
    let mut config = FrameworkConfig::fast_preset(seed);
    config.max_iters = 3;
    let outcome = LoadDynamics::new(config).optimize(series);
    assert!(outcome.val_mape.is_finite(), "val MAPE {}", outcome.val_mape);

    let mut predictor = outcome.predictor;
    for end in [series.len() / 2, series.len() - 1] {
        let end = end.max(1);
        let pred = predictor.predict(&series.values[..end]);
        assert!(
            pred.is_finite() && pred >= 0.0,
            "prediction at {end}: {pred}"
        );
    }
}

#[test]
fn constant_series_never_panics() {
    // A constant trace makes the min-max scaler degenerate (zero range)
    // and gives BO an objective with no signal.
    let series = Series::new("constant", 30, vec![100.0; 120]);
    optimize_and_probe(&series, 1);
}

#[test]
fn all_zero_series_never_panics() {
    // All-zero actuals: MAPE has no defined terms (the convention returns
    // 0), every candidate ties, and the scaler's range is zero at zero.
    let series = Series::new("silent", 30, vec![0.0; 120]);
    optimize_and_probe(&series, 2);
}

#[test]
fn single_spike_series_never_panics() {
    // One enormous spike in a flat line: the scaler's range is dominated
    // by a single point, squashing everything else to ~0.
    let mut values = vec![5.0; 150];
    values[75] = 1.0e6;
    let series = Series::new("spike", 30, values);
    optimize_and_probe(&series, 3);
}

#[test]
fn too_short_series_never_panics() {
    // Shorter than most candidate history windows: most (possibly all)
    // candidates are infeasible; the framework must penalize or degrade,
    // not crash.
    let series = Series::new(
        "short",
        30,
        (0..24).map(|i| 50.0 + (i % 5) as f64).collect(),
    );
    optimize_and_probe(&series, 4);
}

#[test]
fn corrupted_raw_values_are_repairable_then_optimizable() {
    // NaN/negative raw values are rejected by the validating constructor
    // and repaired by the sanitizing one; the repaired series runs the
    // full workflow.
    let mut values: Vec<f64> = (0..120)
        .map(|i| 80.0 + 30.0 * (i as f64 * 0.3).sin())
        .collect();
    values[10] = f64::NAN;
    values[50] = f64::INFINITY;
    values[90] = -12.0;

    assert!(Series::try_new("corrupt", 30, values.clone()).is_err());
    let (series, report) = Series::sanitized("corrupt", 30, values).unwrap();
    assert_eq!(report.non_finite_repaired, 2);
    assert_eq!(report.negatives_clamped, 1);
    assert!(series.values.iter().all(|v| v.is_finite() && *v >= 0.0));
    optimize_and_probe(&series, 5);
}

#[test]
fn zero_interval_is_rejected_not_panicked() {
    assert!(Series::try_new("bad", 0, vec![1.0]).is_err());
    assert!(Series::sanitized("bad", 0, vec![1.0]).is_err());
}
