//! Fault-injection acceptance tests: the full self-optimization workflow
//! under deterministic injected failures (NaN training losses, a forced
//! Cholesky breakdown in the GP surrogate, corrupted trace values) must
//! finish without panicking, record what failed in telemetry, and still
//! hand back a usable finite-MAPE predictor.
//!
//! Fault plans are process-global, so every test serializes on
//! [`ld_faultinject::test_lock`] and uninstalls its plan before asserting.

use ld_api::{Predictor, Series};
use ld_faultinject::{install, reset, test_lock, FaultConfig, FaultSite};
use ld_telemetry::Telemetry;
use ld_traces::{TraceConfig, WorkloadKind};
use loaddynamics::{FrameworkConfig, LoadDynamics, OptimizationOutcome};

const MAX_ITERS: usize = 6;

fn seasonal_series(len: usize) -> Series {
    Series::new(
        "seasonal",
        30,
        (0..len)
            .map(|i| 100.0 + 40.0 * (i as f64 * 0.3).sin())
            .collect(),
    )
}

/// The ISSUE acceptance scenario: NaN losses on ~30% of trials plus one
/// forced Cholesky failure. Caller must hold the test lock.
fn faulted_plan() -> FaultConfig {
    FaultConfig::new(17)
        .with_site(FaultSite::NanLoss, 0.3, None)
        .with_site(FaultSite::CholeskyFail, 1.0, Some(1))
}

fn run_faulted(telemetry: Telemetry) -> OptimizationOutcome {
    let mut config = FrameworkConfig::fast_preset(7).with_telemetry(telemetry);
    config.max_iters = MAX_ITERS;
    LoadDynamics::new(config).optimize(&seasonal_series(240))
}

#[test]
fn search_survives_nan_losses_and_a_cholesky_failure() {
    let _guard = test_lock();
    install(faulted_plan());
    let telemetry = Telemetry::enabled();
    let outcome = run_faulted(telemetry.clone());
    reset();

    // The search completed its full budget and produced a usable model.
    assert!(outcome.val_mape.is_finite());
    assert!(outcome.val_mape < loaddynamics::pipeline::INFEASIBLE_MAPE);
    let series = seasonal_series(240);
    let mut predictor = outcome.predictor;
    let pred = predictor.predict(&series.values[..200]);
    assert!(pred.is_finite() && pred >= 0.0, "prediction {pred}");

    let snap = telemetry.snapshot();
    // Divergent trials were detected, penalized, and recorded — not
    // silently swallowed and not fatal.
    assert!(
        snap.counter("pipeline.diverged_trials") >= 1,
        "expected at least one injected divergence; counters: {:?}",
        snap.counters
    );
    assert!(snap.counter("trainer.divergence_events") >= 1);
    // The forced Cholesky breakdown was survived via the random-proposal
    // fallback.
    assert_eq!(snap.counter("bayesopt.surrogate_failures"), 1);
    // The search still logged its full trial history.
    assert_eq!(snap.events_of("search", "trial").len(), MAX_ITERS);
}

#[test]
fn faulted_search_is_deterministic() {
    let _guard = test_lock();
    install(faulted_plan());
    let a = run_faulted(Telemetry::disabled());
    install(faulted_plan());
    let b = run_faulted(Telemetry::disabled());
    reset();

    assert_eq!(a.hyperparams, b.hyperparams);
    assert_eq!(a.val_mape.to_bits(), b.val_mape.to_bits());
    for (ta, tb) in a.trials.trials.iter().zip(&b.trials.trials) {
        assert_eq!(ta.value.to_bits(), tb.value.to_bits());
        assert_eq!(ta.failed, tb.failed);
    }
}

#[test]
fn total_divergence_degrades_to_baseline_fallback() {
    let _guard = test_lock();
    install(FaultConfig::new(3).with_site(FaultSite::NanLoss, 1.0, None));
    let telemetry = Telemetry::enabled();
    let mut config = FrameworkConfig::fast_preset(3).with_telemetry(telemetry.clone());
    config.max_iters = 4;
    let series = seasonal_series(240);
    let outcome = LoadDynamics::new(config).optimize(&series);
    reset();

    assert!(outcome.predictor.is_fallback());
    assert!(outcome.predictor.fallback_name().is_some());
    assert!(outcome.val_mape.is_finite());
    let snap = telemetry.snapshot();
    assert_eq!(snap.counter("framework.fallback"), 1);
    assert!(snap.counter("pipeline.diverged_trials") >= 4);

    // The degraded predictor still walks forward with finite forecasts.
    let mut predictor = outcome.predictor;
    for end in [120usize, 180, 239] {
        let pred = predictor.predict(&series.values[..end]);
        assert!(pred.is_finite() && pred >= 0.0, "prediction at {end}: {pred}");
    }
}

#[test]
fn corrupted_trace_values_are_sanitized_on_ingest() {
    let _guard = test_lock();
    let config = TraceConfig {
        kind: WorkloadKind::Wikipedia,
        interval_mins: 30,
    };
    install(FaultConfig::new(42).with_site(FaultSite::TraceCorrupt, 0.05, None));
    let (series, report) = config.build_reported(0);
    reset();

    assert!(
        !report.is_clean(),
        "a 5% corruption rate must hit a multi-hundred-point trace"
    );
    assert!(series.values.iter().all(|v| v.is_finite() && *v >= 0.0));

    // Without a plan installed, the same build is clean and untouched.
    let (clean, clean_report) = config.build_reported(0);
    assert!(clean_report.is_clean());
    assert_eq!(clean.len(), series.len());
    assert!(clean.values.iter().zip(&series.values).any(|(a, b)| a != b));
}

#[test]
fn ld_fault_env_knobs_install_a_plan() {
    let _guard = test_lock();
    std::env::set_var("LD_FAULT", "nan_loss=0.5,cholesky=1x1");
    std::env::set_var("LD_FAULT_SEED", "9");
    let installed = ld_faultinject::init_from_env(0);
    std::env::remove_var("LD_FAULT");
    std::env::remove_var("LD_FAULT_SEED");
    assert!(installed);
    assert!(ld_faultinject::is_active());
    reset();
    assert!(!ld_faultinject::is_active());

    // A malformed spec is rejected without installing anything.
    std::env::set_var("LD_FAULT", "nan_loss=banana");
    let installed = ld_faultinject::init_from_env(0);
    std::env::remove_var("LD_FAULT");
    assert!(!installed);
    assert!(!ld_faultinject::is_active());
}
