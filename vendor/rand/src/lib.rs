//! Offline vendored stand-in for the `rand` crate.
//!
//! The sandbox this repository builds in has no crates.io access, so the
//! workspace vendors the *subset* of the `rand 0.8` API it actually uses:
//! [`Rng`], [`SeedableRng`], [`rngs::StdRng`] and [`seq::SliceRandom`].
//! The generator is xoshiro256++ seeded through SplitMix64 — high-quality,
//! fast, and fully deterministic per seed, which the test suite and the
//! telemetry determinism guarantees rely on. Streams differ from upstream
//! `StdRng` (ChaCha12), which is fine: nothing in the workspace depends on
//! upstream's exact streams, only on per-seed reproducibility.

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (the only constructor the workspace uses).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from their "standard" distribution
/// (`[0, 1)` for floats, full range for integers).
pub trait Standard: Sized {
    /// Samples one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 high bits -> [0, 1) with full double precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a uniform value can be drawn from (`gen_range` argument).
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    ///
    /// # Panics
    /// Panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range in gen_range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 range in gen_range");
        // Uniform over [lo, hi]; the closed upper bound is measure-zero.
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

/// Unbiased uniform integer in `[0, bound)` via Lemire-style rejection.
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let r = rng.next_u64();
        let (hi, lo) = {
            let wide = (r as u128) * (bound as u128);
            ((wide >> 64) as u64, wide as u64)
        };
        if lo >= threshold {
            return hi;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range in gen_range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, i64, i32);

/// The high-level sampling interface, blanket-implemented for every
/// [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples from the standard distribution of `T`.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform sample from a range.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli sample with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// SplitMix64: seeds the main generator and is a fine generator itself.
    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// The workspace's standard generator: xoshiro256++ (Blackman & Vigna).
    ///
    /// Not the upstream `StdRng` algorithm (ChaCha12), but the workspace
    /// only relies on per-seed determinism and statistical quality.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Slice sampling helpers (mirrors `rand::seq`).

    use super::{Rng, RngCore};

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    use super::RngCore;

    #[test]
    fn float_samples_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let i = rng.gen_range(3..17usize);
            assert!((3..17).contains(&i));
            let j = rng.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&j));
            let f = rng.gen_range(-1.5..2.5f64);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn integer_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0..8usize)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle left input ordered");
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(5);
        let items = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[*items.choose(&mut rng).unwrap() - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
