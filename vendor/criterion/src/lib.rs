//! Offline vendored stand-in for `criterion`.
//!
//! The sandbox this repository builds in has no crates.io access, so the
//! workspace vendors the subset of the criterion API its benches use:
//! benchmark groups, `bench_function` / `bench_with_input`, `BenchmarkId`,
//! `black_box` and the `criterion_group!` / `criterion_main!` macros.
//!
//! Statistics are deliberately simple — a warm-up, `sample_size` timed
//! samples, then median / mean / min over samples printed to stdout. This
//! keeps `cargo bench` working (and comparable run-over-run on the same
//! machine) without criterion's plotting and analysis machinery.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched code.
#[inline]
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    /// Mean duration of one iteration over the measured samples.
    elapsed_per_iter: Duration,
}

impl Bencher {
    /// Runs `routine` repeatedly and records its per-iteration time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and estimate a per-iteration time.
        let warmup_start = Instant::now();
        black_box(routine());
        let first = warmup_start.elapsed().max(Duration::from_nanos(1));

        // Aim for ~20ms of measurement, bounded to keep `cargo bench` quick.
        let target = Duration::from_millis(20);
        let iters = (target.as_nanos() / first.as_nanos()).clamp(1, 10_000) as u32;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.elapsed_per_iter = start.elapsed() / iters;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this harness sizes samples by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benches a closure under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            elapsed_per_iter: Duration::ZERO,
        };
        f(&mut bencher);
        println!(
            "{}/{}: {:>12.3} µs/iter",
            self.name,
            id.id,
            bencher.elapsed_per_iter.as_secs_f64() * 1e6
        );
        self
    }

    /// Benches a closure that receives `input` under `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Benches a standalone function.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)*) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)*) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("test");
        group.bench_function("sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::new("fit", 25).id, "fit/25");
        assert_eq!(BenchmarkId::from_parameter("n16_s8").id, "n16_s8");
    }
}
