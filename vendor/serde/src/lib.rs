//! Offline vendored stand-in for `serde`.
//!
//! The sandbox this repository builds in has no crates.io access, so the
//! workspace replaces serde's visitor architecture with a simple value
//! model: [`Serialize`] lowers a type to a [`Value`] tree and
//! [`Deserialize`] rebuilds it from one. `serde_json` (also vendored)
//! renders and parses `Value` as JSON text. The derive macros are
//! re-exported from `serde_derive`, mirroring upstream's layout, so
//! `#[derive(Serialize, Deserialize)]` and `#[derive(serde::Serialize)]`
//! both work unchanged.

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A JSON-shaped value tree.
///
/// Objects keep insertion order (a `Vec` of pairs, not a map) so derived
/// serialization — and therefore every JSON artifact the workspace writes —
/// is deterministic. Unsigned and signed integers are separate variants so
/// `u64` seeds above 2^53 survive round-trips exactly.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer (JSON number without sign, fraction or exponent).
    Uint(u64),
    /// Negative integer (JSON number with sign, no fraction or exponent).
    Int(i64),
    /// Any other JSON number.
    Float(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up an object entry.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Object entry lookup that errors (for derived `from_value` impls).
    pub fn field(&self, key: &str) -> Result<&Value, DeError> {
        self.get(key)
            .ok_or_else(|| DeError::new(format!("missing field `{key}`")))
    }

    /// The value as a `u64` when losslessly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Uint(u) => Some(u),
            Value::Int(i) if i >= 0 => Some(i as u64),
            _ => None,
        }
    }

    /// The value as an `i64` when losslessly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::Uint(u) if u <= i64::MAX as u64 => Some(u as i64),
            _ => None,
        }
    }

    /// Any numeric value as an `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Float(f) => Some(f),
            Value::Uint(u) => Some(u as f64),
            Value::Int(i) => Some(i as f64),
            _ => None,
        }
    }

    /// The value as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as object entries.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// True for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Shared `null` for out-of-bounds indexing, as in real `serde_json`.
static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// Deserialization (and JSON parse) error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// An error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for DeError {}

/// Lowers a type to a [`Value`] tree.
pub trait Serialize {
    /// The value representation of `self`.
    fn to_value(&self) -> Value;
}

/// Rebuilds a type from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parses `self` out of a value, with a descriptive error on mismatch.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool()
            .ok_or_else(|| DeError::new(format!("expected bool, got {v:?}")))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        // Non-finite floats serialize as `null` (as in real serde_json);
        // accept the round-trip back as NaN.
        if v.is_null() {
            return Ok(f64::NAN);
        }
        v.as_f64()
            .ok_or_else(|| DeError::new(format!("expected number, got {v:?}")))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Uint(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let u = v.as_u64()
                    .ok_or_else(|| DeError::new(format!(
                        "expected unsigned integer, got {v:?}"
                    )))?;
                <$t>::try_from(u).map_err(|_| DeError::new(format!(
                    "integer {u} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 {
                    Value::Uint(i as u64)
                } else {
                    Value::Int(i)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let i = v.as_i64()
                    .ok_or_else(|| DeError::new(format!(
                        "expected integer, got {v:?}"
                    )))?;
                <$t>::try_from(i).map_err(|_| DeError::new(format!(
                    "integer {i} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::new(format!("expected string, got {v:?}")))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = v
            .as_array()
            .ok_or_else(|| DeError::new(format!("expected array, got {v:?}")))?;
        items.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        if v.is_null() {
            Ok(None)
        } else {
            T::from_value(v).map(Some)
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_round_trips_preserve_kind() {
        let big: u64 = u64::MAX - 7; // above 2^53: must not go through f64
        assert_eq!(u64::from_value(&big.to_value()).unwrap(), big);
        assert_eq!(i64::from_value(&(-42i64).to_value()).unwrap(), -42);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
    }

    #[test]
    fn option_and_vec_round_trip() {
        let v: Vec<Option<f64>> = vec![Some(1.0), None, Some(-2.5)];
        let round: Vec<Option<f64>> = Deserialize::from_value(&v.to_value()).unwrap();
        assert_eq!(v, round);
    }

    #[test]
    fn indexing_missing_keys_yields_null() {
        let obj = Value::Object(vec![("a".into(), Value::Uint(1))]);
        assert_eq!(obj["a"].as_u64(), Some(1));
        assert!(obj["missing"].is_null());
        assert!(obj["missing"]["deeper"].is_null());
        assert!(obj[3].is_null());
    }

    #[test]
    fn out_of_range_integers_error() {
        assert!(u8::from_value(&Value::Uint(300)).is_err());
        assert!(u64::from_value(&Value::Int(-1)).is_err());
    }
}
