//! Offline vendored stand-in for `rayon`.
//!
//! The sandbox this repository builds in has no crates.io access, so the
//! workspace vendors the *subset* of the rayon API it uses: `par_iter`,
//! `into_par_iter`, `par_chunks_mut`, with `map` / `filter_map` adaptors and
//! `collect` / `for_each` / `fold(..).reduce(..)` terminals.
//!
//! Unlike real rayon this shim is **bitwise deterministic**: inputs are split
//! into a *fixed* number of contiguous chunks ([`CHUNKS`]) regardless of core
//! count, chunks may run on scoped threads, and partial results are always
//! combined sequentially in chunk order. Floating-point accumulations (e.g.
//! the trainer's gradient reduction) therefore produce identical bits on any
//! machine and any thread schedule — which the workspace's determinism
//! regression tests and the telemetry subsystem rely on.

// The adaptor chain spells out its closure types instead of boxing them;
// the resulting signatures are noisy but monomorphize away.
#![allow(clippy::type_complexity)]

use std::marker::PhantomData;
use std::ops::Range;

/// Fixed chunk count for every parallel operation. Constant (rather than
/// derived from core count) so the combination tree — and therefore every
/// float reduction — is identical on every machine.
pub const CHUNKS: usize = 8;

/// True when scoped threads are worth spawning at all.
fn threads_available() -> bool {
    current_num_threads() > 1
}

/// Number of worker threads this shim will actually use: the host's
/// available parallelism capped at [`CHUNKS`] (mirrors real rayon's
/// `current_num_threads`). Callers can consult this to skip parallel
/// *restructuring* (extra passes, buffer splits) that only pays for
/// itself when more than one worker exists — the shim itself already
/// runs chunks inline when this returns 1.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().min(CHUNKS))
        .unwrap_or(1)
}

/// Balanced contiguous chunk boundaries: `len` split into at most
/// [`CHUNKS`] pieces, earlier pieces one longer when it doesn't divide
/// evenly. Depends only on `len`, never on the machine.
fn chunk_bounds(len: usize) -> Vec<Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let pieces = CHUNKS.min(len);
    let base = len / pieces;
    let extra = len % pieces;
    let mut bounds = Vec::with_capacity(pieces);
    let mut start = 0;
    for i in 0..pieces {
        let size = base + usize::from(i < extra);
        bounds.push(start..start + size);
        start += size;
    }
    bounds
}

/// Splits `items` into chunk vectors per [`chunk_bounds`] (in order).
fn split_into_chunks<T>(items: Vec<T>) -> Vec<Vec<T>> {
    let bounds = chunk_bounds(items.len());
    let mut chunks: Vec<Vec<T>> = bounds.iter().map(|r| Vec::with_capacity(r.len())).collect();
    let mut which = 0;
    for (i, item) in items.into_iter().enumerate() {
        if !bounds[which].contains(&i) {
            which += 1;
        }
        chunks[which].push(item);
    }
    chunks
}

/// Runs `work` over every chunk — on scoped threads when more than one core
/// is available, sequentially otherwise — and returns per-chunk outputs **in
/// chunk order** either way.
fn run_chunks<T, A, W>(chunks: Vec<Vec<T>>, work: &W) -> Vec<A>
where
    T: Send,
    A: Send,
    W: Fn(Vec<T>) -> A + Sync,
{
    if chunks.len() > 1 && threads_available() {
        std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| scope.spawn(move || work(chunk)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("parallel worker panicked"))
                .collect()
        })
    } else {
        chunks.into_iter().map(work).collect()
    }
}

type BaseFn<T> = fn(T) -> Option<T>;

/// A materialized "parallel" iterator: the source items plus a composed
/// per-item `T -> Option<U>` stage (maps return `Some`, filters may drop).
pub struct ParIter<T, U, F> {
    items: Vec<T>,
    f: F,
    _out: PhantomData<fn() -> U>,
}

fn base<T>(items: Vec<T>) -> ParIter<T, T, BaseFn<T>> {
    ParIter {
        items,
        f: Some as BaseFn<T>,
        _out: PhantomData,
    }
}

impl<T, U, F> ParIter<T, U, F>
where
    F: Fn(T) -> Option<U> + Sync,
{
    /// Transforms every element.
    pub fn map<V, G>(self, g: G) -> ParIter<T, V, impl Fn(T) -> Option<V> + Sync>
    where
        G: Fn(U) -> V + Sync,
    {
        let f = self.f;
        ParIter {
            items: self.items,
            f: move |t| f(t).map(&g),
            _out: PhantomData,
        }
    }

    /// Transforms and filters in one pass.
    pub fn filter_map<V, G>(self, g: G) -> ParIter<T, V, impl Fn(T) -> Option<V> + Sync>
    where
        G: Fn(U) -> Option<V> + Sync,
    {
        let f = self.f;
        ParIter {
            items: self.items,
            f: move |t| f(t).and_then(&g),
            _out: PhantomData,
        }
    }

    /// Collects surviving elements in source order.
    pub fn collect<C>(self) -> C
    where
        T: Send,
        U: Send,
        C: FromIterator<U>,
    {
        let f = &self.f;
        let per_chunk = run_chunks(split_into_chunks(self.items), &|chunk: Vec<T>| {
            chunk.into_iter().filter_map(f).collect::<Vec<U>>()
        });
        per_chunk.into_iter().flatten().collect()
    }

    /// Runs `g` on every surviving element.
    pub fn for_each<G>(self, g: G)
    where
        T: Send,
        U: Send,
        G: Fn(U) + Sync,
    {
        let f = &self.f;
        run_chunks(split_into_chunks(self.items), &|chunk: Vec<T>| {
            for t in chunk {
                if let Some(u) = f(t) {
                    g(u);
                }
            }
        });
    }

    /// Folds each chunk into one accumulator (rayon's `fold`): the result
    /// holds exactly one partial per chunk, in chunk order.
    pub fn fold<A, ID, OP>(self, identity: ID, op: OP) -> FoldPartials<A>
    where
        T: Send,
        A: Send,
        ID: Fn() -> A + Sync,
        OP: Fn(A, U) -> A + Sync,
    {
        let f = &self.f;
        let partials = run_chunks(split_into_chunks(self.items), &|chunk: Vec<T>| {
            let mut acc = identity();
            for t in chunk {
                if let Some(u) = f(t) {
                    acc = op(acc, u);
                }
            }
            acc
        });
        FoldPartials { partials }
    }
}

/// Per-chunk accumulators produced by [`ParIter::fold`], combined by
/// [`FoldPartials::reduce`] strictly left-to-right in chunk order.
pub struct FoldPartials<A> {
    partials: Vec<A>,
}

impl<A> FoldPartials<A> {
    /// Combines the partials sequentially — the deterministic half of the
    /// `fold(..).reduce(..)` idiom.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> A
    where
        ID: Fn() -> A,
        OP: Fn(A, A) -> A,
    {
        self.partials.into_iter().fold(identity(), op)
    }
}

/// `into_par_iter()` on owned collections.
pub trait IntoParallelIterator {
    /// Element type.
    type Item;
    /// Builds the base pipeline.
    fn into_par_iter(self) -> ParIter<Self::Item, Self::Item, BaseFn<Self::Item>>;
}

impl<T> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T, T, BaseFn<T>> {
        base(self)
    }
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize, usize, BaseFn<usize>> {
        base(self.collect())
    }
}

impl IntoParallelIterator for Range<u64> {
    type Item = u64;
    fn into_par_iter(self) -> ParIter<u64, u64, BaseFn<u64>> {
        base(self.collect())
    }
}

/// `par_iter()` on borrowed slices (and through deref, `Vec`s).
pub trait IntoParallelRefIterator<'data> {
    /// Borrowed element type.
    type Item: 'data;
    /// Builds the base pipeline over references.
    fn par_iter(&'data self) -> ParIter<&'data Self::Item, &'data Self::Item, BaseFn<&'data Self::Item>>;
}

impl<'data, T: 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = T;
    fn par_iter(&'data self) -> ParIter<&'data T, &'data T, BaseFn<&'data T>> {
        base(self.iter().collect())
    }
}

/// Indexed mutable chunks (`par_chunks_mut(..).enumerate().for_each(..)`).
pub struct ParChunksMut<'data, T> {
    chunks: Vec<&'data mut [T]>,
}

impl<'data, T> ParChunksMut<'data, T> {
    /// Pairs each chunk with its index.
    pub fn enumerate(self) -> ParIter<(usize, &'data mut [T]), (usize, &'data mut [T]), BaseFn<(usize, &'data mut [T])>> {
        base(self.chunks.into_iter().enumerate().collect())
    }
}

/// `par_chunks_mut` on mutable slices.
pub trait ParallelSliceMut<T> {
    /// Splits into non-overlapping mutable chunks of `size` (last may be
    /// shorter).
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T>;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T> {
        assert!(size > 0, "chunk size must be > 0");
        ParChunksMut {
            chunks: self.chunks_mut(size).collect(),
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `rayon::prelude`.
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<i64> = (0..100).collect();
        let doubled: Vec<i64> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn into_par_iter_filter_map() {
        let odds: Vec<usize> = (0..50usize)
            .into_par_iter()
            .filter_map(|x| if x % 2 == 1 { Some(x) } else { None })
            .collect();
        assert_eq!(odds, (0..50).filter(|x| x % 2 == 1).collect::<Vec<_>>());
    }

    #[test]
    fn fold_reduce_matches_sequential_sum() {
        let v: Vec<f64> = (0..1000).map(|i| (i as f64).sin()).collect();
        let par = v
            .par_iter()
            .fold(|| 0.0f64, |acc, &x| acc + x)
            .reduce(|| 0.0, |a, b| a + b);
        // Chunked summation differs from naive left-to-right, but must be
        // bitwise identical between runs.
        let par2 = v
            .par_iter()
            .fold(|| 0.0f64, |acc, &x| acc + x)
            .reduce(|| 0.0, |a, b| a + b);
        assert_eq!(par.to_bits(), par2.to_bits());
        assert!((par - v.iter().sum::<f64>()).abs() < 1e-9);
    }

    #[test]
    fn chunk_bounds_cover_everything_once() {
        for len in [0usize, 1, 5, 8, 9, 64, 1000] {
            let bounds = super::chunk_bounds(len);
            let mut covered = 0usize;
            for (i, r) in bounds.iter().enumerate() {
                assert_eq!(r.start, covered, "gap before chunk {i} at len {len}");
                covered = r.end;
            }
            assert_eq!(covered, len);
            assert!(bounds.len() <= super::CHUNKS);
        }
    }

    #[test]
    fn par_chunks_mut_enumerate_for_each() {
        let mut data = vec![0.0f64; 37];
        data.par_chunks_mut(10).enumerate().for_each(|(i, chunk)| {
            for x in chunk.iter_mut() {
                *x = i as f64;
            }
        });
        for (i, &x) in data.iter().enumerate() {
            assert_eq!(x, (i / 10) as f64);
        }
    }

    #[test]
    fn for_each_visits_every_element() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let hits = AtomicUsize::new(0);
        let v: Vec<usize> = (0..123).collect();
        v.par_iter().for_each(|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 123);
    }
}
