//! Offline vendored `#[derive(Serialize)]` / `#[derive(Deserialize)]`.
//!
//! The sandbox this repository builds in has no crates.io access (so no
//! `syn`/`quote`); this crate parses the item token stream by hand and emits
//! impls of the workspace serde's value-model traits
//! (`serde::Serialize::to_value` / `serde::Deserialize::from_value`).
//!
//! Supported shapes — exactly what the workspace uses:
//! - structs with named fields (any visibility; generated impls live in the
//!   defining module, so private fields are fine)
//! - enums with unit variants and/or named-field ("struct") variants
//!
//! Representation mirrors serde's externally-tagged default:
//! unit variant -> `"Name"`, struct variant -> `{"Name": {fields...}}`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed item: name plus either struct fields or enum variants.
enum Item {
    Struct { name: String, fields: Vec<String> },
    Enum { name: String, variants: Vec<Variant> },
}

/// One enum variant: unit (`fields: None`) or named-field.
struct Variant {
    name: String,
    fields: Option<Vec<String>>,
}

/// Splits a token list into top-level comma-separated chunks, ignoring
/// commas nested inside `<...>` (e.g. multi-parameter generics).
fn split_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut chunks = Vec::new();
    let mut current: Vec<TokenTree> = Vec::new();
    let mut angle_depth = 0i32;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    chunks.push(std::mem::take(&mut current));
                    continue;
                }
                _ => {}
            }
        }
        current.push(t.clone());
    }
    if !current.is_empty() {
        chunks.push(current);
    }
    chunks
}

/// Strips leading `#[...]` attributes (doc comments included) and
/// visibility (`pub`, `pub(...)`) from a token chunk.
fn strip_attrs_and_vis(mut tokens: &[TokenTree]) -> &[TokenTree] {
    loop {
        match tokens {
            [TokenTree::Punct(p), TokenTree::Group(g), rest @ ..]
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                tokens = rest;
            }
            [TokenTree::Ident(i), TokenTree::Group(g), rest @ ..]
                if i.to_string() == "pub" && g.delimiter() == Delimiter::Parenthesis =>
            {
                tokens = rest;
            }
            [TokenTree::Ident(i), rest @ ..] if i.to_string() == "pub" => {
                tokens = rest;
            }
            _ => return tokens,
        }
    }
}

/// Field names of a named-field body (`{ a: T, b: U }` contents).
fn parse_named_fields(body: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    for chunk in split_commas(body) {
        let chunk = strip_attrs_and_vis(&chunk);
        if chunk.is_empty() {
            continue;
        }
        match chunk {
            [TokenTree::Ident(name), TokenTree::Punct(colon), ..] if colon.as_char() == ':' => {
                fields.push(name.to_string());
            }
            _ => {
                return Err(format!(
                    "serde_derive shim: unsupported field syntax near `{}`",
                    chunk.iter().map(|t| t.to_string()).collect::<String>()
                ))
            }
        }
    }
    Ok(fields)
}

/// Enum variants of an enum body.
fn parse_variants(body: &[TokenTree]) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    for chunk in split_commas(body) {
        let chunk = strip_attrs_and_vis(&chunk);
        if chunk.is_empty() {
            continue;
        }
        match chunk {
            [TokenTree::Ident(name)] => variants.push(Variant {
                name: name.to_string(),
                fields: None,
            }),
            [TokenTree::Ident(name), TokenTree::Group(g)]
                if g.delimiter() == Delimiter::Brace =>
            {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                variants.push(Variant {
                    name: name.to_string(),
                    fields: Some(parse_named_fields(&body)?),
                });
            }
            _ => {
                return Err(format!(
                    "serde_derive shim: unsupported variant syntax near `{}` \
                     (tuple variants and discriminants are not supported)",
                    chunk.iter().map(|t| t.to_string()).collect::<String>()
                ))
            }
        }
    }
    Ok(variants)
}

/// Parses the derive input item (struct or enum with named fields).
fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut rest: &[TokenTree] = strip_attrs_and_vis(&tokens);

    let kind = match rest {
        [TokenTree::Ident(k), ..] if k.to_string() == "struct" || k.to_string() == "enum" => {
            let k = k.to_string();
            rest = &rest[1..];
            k
        }
        _ => return Err("serde_derive shim: expected `struct` or `enum`".into()),
    };

    let name = match rest {
        [TokenTree::Ident(n), ..] => {
            let n = n.to_string();
            rest = &rest[1..];
            n
        }
        _ => return Err("serde_derive shim: expected item name".into()),
    };

    // No generics in the workspace's serializable types; reject rather than
    // silently emitting a broken impl.
    if let Some(TokenTree::Punct(p)) = rest.first() {
        if p.as_char() == '<' {
            return Err(format!(
                "serde_derive shim: generic type `{name}` is not supported"
            ));
        }
    }

    let body = match rest {
        [TokenTree::Group(g)] if g.delimiter() == Delimiter::Brace => {
            g.stream().into_iter().collect::<Vec<_>>()
        }
        _ => {
            return Err(format!(
                "serde_derive shim: `{name}` must have a braced body \
                 (tuple/unit structs are not supported)"
            ))
        }
    };

    if kind == "struct" {
        Ok(Item::Struct {
            name,
            fields: parse_named_fields(&body)?,
        })
    } else {
        Ok(Item::Enum {
            name,
            variants: parse_variants(&body)?,
        })
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Derives `serde::Serialize` (value-model `to_value`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let code = match item {
        Item::Struct { name, fields } => {
            let pairs: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(String::from({f:?}), serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         serde::Value::Object(vec![{pairs}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        None => format!(
                            "{name}::{vname} => serde::Value::String(String::from({vname:?})),"
                        ),
                        Some(fields) => {
                            let binds = fields.join(", ");
                            let pairs: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(String::from({f:?}), serde::Serialize::to_value({f})),"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => serde::Value::Object(vec![\
                                     (String::from({vname:?}), serde::Value::Object(vec![{pairs}])),\
                                 ]),"
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().unwrap()
}

/// Derives `serde::Deserialize` (value-model `from_value`).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let code = match item {
        Item::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: serde::Deserialize::from_value(v.field({f:?})?)?,"
                    )
                })
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(v: &serde::Value) -> ::core::result::Result<Self, serde::DeError> {{\n\
                         Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| v.fields.is_none())
                .map(|v| {
                    let vname = &v.name;
                    format!("{vname:?} => return Ok({name}::{vname}),")
                })
                .collect();
            let struct_arms: String = variants
                .iter()
                .filter_map(|v| v.fields.as_ref().map(|fields| (&v.name, fields)))
                .map(|(vname, fields)| {
                    let inits: String = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: serde::Deserialize::from_value(inner.field({f:?})?)?,"
                            )
                        })
                        .collect();
                    format!(
                        "{vname:?} => return Ok({name}::{vname} {{ {inits} }}),"
                    )
                })
                .collect();
            // Emit each match block only when that variant kind exists, so
            // the generated code never binds unused variables.
            let unit_block = if unit_arms.is_empty() {
                String::new()
            } else {
                format!(
                    "if let serde::Value::String(s) = v {{\n\
                         match s.as_str() {{\n\
                             {unit_arms}\n\
                             _ => {{}}\n\
                         }}\n\
                     }}\n"
                )
            };
            let struct_block = if struct_arms.is_empty() {
                String::new()
            } else {
                format!(
                    "if let serde::Value::Object(entries) = v {{\n\
                         if let [(tag, inner)] = entries.as_slice() {{\n\
                             match tag.as_str() {{\n\
                                 {struct_arms}\n\
                                 _ => {{}}\n\
                             }}\n\
                         }}\n\
                     }}\n"
                )
            };
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(v: &serde::Value) -> ::core::result::Result<Self, serde::DeError> {{\n\
                         {unit_block}\
                         {struct_block}\
                         Err(serde::DeError::new(format!(\n\
                             \"invalid value for enum {name}: {{v:?}}\"\n\
                         )))\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().unwrap()
}
