//! Offline vendored stand-in for `serde_json`.
//!
//! Renders the workspace serde's [`Value`] model as JSON text and parses it
//! back. Floats are written with Rust's `{:?}` formatting — the shortest
//! string that round-trips exactly — so serialized models reload
//! bit-identically (the `float_roundtrip` behavior the workspace asks for).
//! Non-finite floats serialize as `null`, as in real `serde_json`.

pub use serde::DeError as Error;
pub use serde::Value;

use serde::{Deserialize, Serialize};

/// Serializes a value to compact JSON.
///
/// The `Result` mirrors the real API; this implementation cannot fail.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serializes a value to human-readable, two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

/// Parses a value from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    T::from_value(&value)
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(f: f64, out: &mut String) {
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    // `{:?}` is the shortest representation that round-trips exactly; it
    // always includes a `.` or exponent, keeping floats distinct from
    // integers in the output.
    out.push_str(&format!("{f:?}"));
}

fn write_value(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    let (nl, pad, pad_in, colon) = match indent {
        Some(w) => (
            "\n",
            " ".repeat(w * depth),
            " ".repeat(w * (depth + 1)),
            ": ",
        ),
        None => ("", String::new(), String::new(), ":"),
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Uint(u) => out.push_str(&u.to_string()),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => write_float(*f, out),
        Value::String(s) => write_escaped(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_value(item, indent, depth + 1, out);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_escaped(key, out);
                out.push_str(colon);
                write_value(item, indent, depth + 1, out);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            None => Err(Error::new("unexpected end of input")),
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::new(format!("invalid token at byte {}", self.pos)))
                }
            }
            Some(b't') => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::new(format!("invalid token at byte {}", self.pos)))
                }
            }
            Some(b'f') => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::new(format!("invalid token at byte {}", self.pos)))
                }
            }
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error::new(format!(
                "unexpected `{}` at byte {}",
                b as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            entries.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy unescaped runs as UTF-8 slices.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b't' => s.push('\t'),
                        b'r' => s.push('\r'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.eat_keyword("\\u") {
                                    return Err(Error::new("lone high surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape"))
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Some(digits) = text.strip_prefix('-') {
                if let Ok(i) = format!("-{digits}").parse::<i64>() {
                    return Ok(Value::Int(i));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Uint(u));
            }
            // Integer too large for 64 bits: fall back to f64.
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_object_round_trips() {
        let v = Value::Object(vec![
            ("name".into(), Value::String("google".into())),
            ("interval".into(), Value::Uint(60)),
            ("values".into(), Value::Array(vec![
                Value::Float(1.5),
                Value::Float(-0.25),
                Value::Uint(3),
            ])),
            ("flag".into(), Value::Bool(true)),
            ("none".into(), Value::Null),
        ]);
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn floats_round_trip_bitwise() {
        for f in [0.1, 1.0 / 3.0, f64::MIN_POSITIVE, 1e300, -2.5e-7, 0.0] {
            let text = to_string(&f).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(f.to_bits(), back.to_bits(), "float {f} mangled by {text}");
        }
    }

    #[test]
    fn large_u64_round_trips_exactly() {
        let seed: u64 = 0x9E3779B97F4A7C15; // > 2^53: would be lossy via f64
        let text = to_string(&seed).unwrap();
        assert_eq!(text, seed.to_string());
        let back: u64 = from_str(&text).unwrap();
        assert_eq!(back, seed);
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "quote \" backslash \\ newline \n tab \t unicode \u{1F600} ctrl \u{1}".to_string();
        let text = to_string(&s).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = Value::Object(vec![
            ("a".into(), Value::Array(vec![Value::Uint(1), Value::Uint(2)])),
            ("b".into(), Value::Object(vec![("c".into(), Value::Null)])),
        ]);
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains('\n'));
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
        let back: f64 = from_str("null").unwrap();
        assert!(back.is_nan());
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }
}
