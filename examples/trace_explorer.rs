//! Trace explorer: generate any of the paper's workload configurations,
//! print its statistics and sparkline, and optionally export it as plain
//! text for external tooling.
//!
//! ```sh
//! cargo run --release --example trace_explorer -- wiki-30min
//! cargo run --release --example trace_explorer -- AZ-60min /tmp/azure.txt
//! ```

use ld_traces::all_configurations;

fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-12);
    values
        .iter()
        .map(|v| BARS[((((v - lo) / span) * 7.0).round() as usize).min(7)])
        .collect()
}

fn main() {
    let label = std::env::args().nth(1).unwrap_or_else(|| "GL-30min".into());
    let out_path = std::env::args().nth(2);

    let Some(config) = all_configurations().into_iter().find(|c| c.label() == label) else {
        eprintln!("unknown configuration '{label}'. Available:");
        for c in all_configurations() {
            eprintln!("  {}", c.label());
        }
        std::process::exit(1);
    };

    let series = config.build(0);
    println!(
        "{} ({}, {}-minute intervals)",
        series.name,
        config.kind.category(),
        series.interval_mins
    );
    println!("intervals: {}", series.len());
    println!("mean JAR:  {:.1}", series.mean());
    println!("min..max:  {:.0}..{:.0}", series.min(), series.max());
    println!("CV:        {:.3}", series.coeff_of_variation());
    for lag in [1usize, 2, 4, 8] {
        println!("lag-{lag:<2} autocorrelation: {:+.3}", series.autocorrelation(lag));
    }

    // Downsample to 110 columns for the sparkline.
    let n = series.len().min(110);
    let block = (series.len() / n).max(1);
    let ds: Vec<f64> = series
        .values
        .chunks(block)
        .map(|c| c.iter().sum::<f64>() / c.len() as f64)
        .collect();
    println!("\n{}", sparkline(&ds));

    if let Some(path) = out_path {
        std::fs::write(&path, series.to_text()).expect("write trace file");
        println!("\nwrote {} values to {path}", series.len());
        println!("(reload with ld_api::Series::from_text)");
    }
}
