//! Compare LoadDynamics against the three state-of-the-art baselines on a
//! workload of your choice — a miniature of the paper's Fig. 9 experiment.
//!
//! ```sh
//! cargo run --release --example compare_predictors -- FB-10min
//! cargo run --release --example compare_predictors -- GL-30min
//! ```
//!
//! The argument is any of the paper's 14 workload configurations
//! (`wiki|LCG|AZ|GL|FB`-`<interval>min`); default `FB-10min`.

use ld_api::{walk_forward, Partition, Predictor, Series};
use ld_baselines::{CloudInsight, CloudScale, WoodPredictor};
use ld_traces::all_configurations;
use loaddynamics::{FrameworkConfig, LoadDynamics};

fn load(label: &str) -> Option<Series> {
    all_configurations()
        .into_iter()
        .find(|c| c.label() == label)
        .map(|c| c.build(0))
}

fn cap(series: Series, max_len: usize) -> Series {
    if series.len() <= max_len {
        return series;
    }
    Series::new(
        series.name.clone(),
        series.interval_mins,
        series.values[series.len() - max_len..].to_vec(),
    )
}

fn main() {
    let label = std::env::args().nth(1).unwrap_or_else(|| "FB-10min".into());
    let Some(raw) = load(&label) else {
        eprintln!("unknown configuration '{label}'. Available:");
        for c in all_configurations() {
            eprintln!("  {}", c.label());
        }
        std::process::exit(1);
    };
    // Keep the example snappy on fine-grained configurations.
    let series = cap(raw, 800);
    let partition = Partition::paper_default(series.len());
    println!(
        "workload {}: {} intervals of {} min (train {}, val {}, test {})",
        series.name,
        series.len(),
        series.interval_mins,
        partition.train_end,
        partition.val_end - partition.train_end,
        series.len() - partition.val_end,
    );

    // LoadDynamics.
    println!("\noptimizing LoadDynamics...");
    let outcome = LoadDynamics::new(FrameworkConfig::fast_preset(0)).optimize(&series);
    println!(
        "  selected {} (val MAPE {:.1}%)",
        outcome.hyperparams, outcome.val_mape
    );
    let mut rows: Vec<(String, f64, f64)> = Vec::new();
    let mut ld: Box<dyn Predictor> = Box::new(outcome.predictor);
    let r = walk_forward(ld.as_mut(), &series, partition.val_end);
    rows.push(("LoadDynamics".into(), r.mape(), r.rmse()));

    // Baselines.
    let baselines: Vec<Box<dyn Predictor>> = vec![
        Box::new(CloudInsight::new(0)),
        Box::new(CloudScale::default()),
        Box::new(WoodPredictor::default()),
    ];
    for mut b in baselines {
        println!("running {}...", b.name());
        let r = walk_forward(b.as_mut(), &series, partition.val_end);
        rows.push((b.name(), r.mape(), r.rmse()));
    }

    println!("\n{:<14} {:>8} {:>12}", "predictor", "MAPE %", "RMSE");
    println!("{}", "-".repeat(36));
    for (name, mape, rmse) in &rows {
        println!("{name:<14} {mape:>8.1} {rmse:>12.1}");
    }
    let best = rows
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .unwrap();
    println!("\nlowest error: {} ({:.1}%)", best.0, best.1);
}
