//! Online adaptive modeling — the paper's Section V future-work feature,
//! implemented: detect that the workload has drifted to a new pattern and
//! retrain the predictor automatically.
//!
//! ```sh
//! cargo run --release --example online_adaptation
//! ```
//!
//! The demo workload runs as a daily sine for a while, then abruptly
//! becomes a steep ramp (think: a service goes viral). A frozen predictor
//! keeps forecasting the old pattern; the adaptive one notices its errors
//! drifting and rebuilds itself on recent history.

use ld_api::Predictor;
use loaddynamics::{AdaptiveConfig, AdaptiveLoadDynamics, FrameworkConfig, LoadDynamics};

fn shifting_workload(len: usize) -> Vec<f64> {
    (0..len)
        .map(|i| {
            if i < len / 2 {
                1000.0 + 300.0 * (i as f64 * 0.3).sin()
            } else {
                3000.0 + 15.0 * (i - len / 2) as f64
            }
        })
        .collect()
}

fn mape(errors: &[(f64, f64)]) -> f64 {
    100.0 * errors
        .iter()
        .map(|(p, a)| ((p - a) / a).abs())
        .sum::<f64>()
        / errors.len() as f64
}

fn main() {
    let values = shifting_workload(400);
    let fit_end = 160; // entirely inside the sine regime

    // Frozen: optimized once, never retrained (the paper's base design).
    println!("building the frozen predictor...");
    let outcome = LoadDynamics::new(FrameworkConfig::fast_preset(0)).optimize(
        &ld_api::Series::new("shifting", 30, values[..fit_end].to_vec()),
    );
    let mut frozen = outcome.predictor;

    // Adaptive: same framework, plus drift detection and retraining.
    println!("building the adaptive predictor...");
    let mut adaptive = AdaptiveLoadDynamics::new(AdaptiveConfig::fast_preset(0));
    adaptive.fit(&values[..fit_end]);

    let mut frozen_late = Vec::new();
    let mut adaptive_late = Vec::new();
    for i in fit_end..values.len() {
        let pf = frozen.predict(&values[..i]);
        let pa = adaptive.predict(&values[..i]);
        // Score only the post-shift tail, after the adaptive model has had
        // a chance to notice and react.
        if i > values.len() / 2 + 60 {
            frozen_late.push((pf, values[i]));
            adaptive_late.push((pa, values[i]));
        }
    }

    println!("\nafter the pattern shift (last ~{} intervals):", frozen_late.len());
    println!("  frozen   LoadDynamics MAPE: {:>6.1}%", mape(&frozen_late));
    println!("  adaptive LoadDynamics MAPE: {:>6.1}%", mape(&adaptive_late));
    println!("  retrains triggered by drift: {}", adaptive.retrain_count());
    println!(
        "\nThe adaptive variant detected the regime change (Page-Hinkley test\n\
         on its own rolling errors) and re-ran the Bayesian-optimization\n\
         workflow on recent history, recovering accuracy the frozen model lost."
    );
}
