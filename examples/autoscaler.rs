//! Predictive auto-scaling demo — the paper's Section IV-C case study as a
//! library user would run it: tune a predictor, then drive the VM
//! provisioning policy on the simulated cloud and compare against a
//! reactive (predict-nothing) policy.
//!
//! ```sh
//! cargo run --release --example autoscaler
//! ```

use ld_api::{Partition, Predictor, Series};
use ld_autoscale::{simulate, SimConfig};
use ld_traces::{TraceConfig, WorkloadKind};
use loaddynamics::{FrameworkConfig, LoadDynamics};

/// The reactive strawman: provision for the next interval exactly what
/// arrived in the current one (pure persistence).
struct Reactive;

impl Predictor for Reactive {
    fn name(&self) -> String {
        "Reactive(last value)".into()
    }
    fn fit(&mut self, _history: &[f64]) {}
    fn predict(&mut self, history: &[f64]) -> f64 {
        *history.last().unwrap()
    }
}

fn main() {
    // Azure at 60-minute intervals, scaled to < 50 VMs per interval like
    // the paper's quota-constrained deployment.
    let raw = TraceConfig {
        kind: WorkloadKind::Azure,
        interval_mins: 60,
    }
    .build(7);
    let series: Series = raw.scaled(0.6);
    let partition = Partition::paper_default(series.len());
    let sim = SimConfig {
        test_start: partition.val_end,
        ..SimConfig::default()
    };
    println!(
        "workload {}: {} hourly intervals, mean {:.1} jobs/interval",
        series.name,
        series.len(),
        series.mean()
    );

    println!("\ntuning LoadDynamics for this workload...");
    let outcome = LoadDynamics::new(FrameworkConfig::fast_preset(7)).optimize(&series);
    println!("  selected {}", outcome.hyperparams);

    let mut tuned: Box<dyn Predictor> = Box::new(outcome.predictor);
    let predictive = simulate(tuned.as_mut(), &series, &sim);
    let reactive = simulate(&mut Reactive, &series, &sim);

    println!(
        "\n{:<22} {:>14} {:>12} {:>12}",
        "policy", "turnaround (s)", "under-prov %", "over-prov %"
    );
    println!("{}", "-".repeat(64));
    for report in [&predictive, &reactive] {
        println!(
            "{:<22} {:>14.1} {:>12.1} {:>12.1}",
            report.predictor,
            report.avg_turnaround_secs(),
            100.0 * report.under_provisioning_rate(),
            100.0 * report.over_provisioning_rate(),
        );
    }

    let saved = reactive.avg_turnaround_secs() - predictive.avg_turnaround_secs();
    println!(
        "\npredictive provisioning saves {saved:.1}s mean turnaround per job \
         ({} cold-started VMs vs {}).",
        predictive.on_demand_vm_count(),
        reactive.on_demand_vm_count()
    );
}
