//! Quickstart: tune a predictor for your own workload in a few lines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! The flow is the paper's Fig. 6: hand LoadDynamics a JAR series, let it
//! self-optimize its LSTM hyperparameters, then predict the next intervals.

use ld_api::{walk_forward, Partition, Predictor, Series};
use loaddynamics::{FrameworkConfig, LoadDynamics};

fn main() {
    // 1. Your workload: jobs (or requests) per interval, oldest first.
    //    Here: a synthetic diurnal web workload, 30-minute intervals.
    let values: Vec<f64> = (0..600)
        .map(|i| {
            let day = 2.0 * std::f64::consts::PI * i as f64 / 48.0; // 48 x 30min = 1 day
            1000.0 + 400.0 * day.sin() + 25.0 * ((i * 37) % 11) as f64
        })
        .collect();
    let series = Series::new("my-service", 30, values);

    // 2. Build the framework. `fast_preset` keeps this example snappy;
    //    `FrameworkConfig::paper_preset(false, seed)` is the full Table III
    //    configuration (100 BO iterations over n<=512, s<=100, 5 layers).
    let framework = LoadDynamics::new(FrameworkConfig::fast_preset(42));

    // 3. Self-optimize: trains LSTMs, tunes hyperparameters with Bayesian
    //    optimization, returns the best predictor.
    println!("optimizing (this trains a few LSTMs)...");
    let outcome = framework.optimize(&series);
    println!(
        "selected hyperparameters: {}  (validation MAPE {:.2}%)",
        outcome.hyperparams, outcome.val_mape
    );
    println!("trials evaluated: {}", outcome.trials.trials.len());

    // 4. Evaluate on the held-out test partition (last 20%), walking
    //    forward one interval at a time like a live deployment.
    let partition = Partition::paper_default(series.len());
    let mut predictor = outcome.predictor;
    let result = walk_forward(&mut predictor, &series, partition.val_end);
    println!(
        "test partition: {} intervals, MAPE {:.2}%, RMSE {:.1} jobs",
        result.preds.len(),
        result.mape(),
        result.rmse()
    );

    // 5. Predict the next interval from the full history.
    let next = predictor.predict(&series.values);
    println!("predicted JAR for the next interval: {next:.0} jobs");
}
