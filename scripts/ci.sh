#!/usr/bin/env bash
# CI gate for the workspace: release build, the tier-1 test suite, the
# ld-perfbench smoke run (kernel equivalence asserts + bench schema check),
# the ld-lint static-analysis gate (report left in target/lint-report.json),
# and a warning-free clippy pass. Run from the repository root:
#
#     ./scripts/ci.sh
#
# Set CI_SKIP_BUILD=1 to reuse an existing release build.
set -euo pipefail
cd "$(dirname "$0")/.."

if [ "${CI_SKIP_BUILD:-0}" != "1" ]; then
    echo "=== cargo build --release ==="
    cargo build --release
fi

echo "=== cargo test -q ==="
cargo test -q

echo "=== fault-injection & robustness suites ==="
cargo test -q -p ld-faultinject
cargo test -q --test fault_injection --test adversarial_inputs

echo "=== serving suites (pipeline equivalence, properties, fault isolation) ==="
cargo test -q --release -p ld-serve
cargo test -q --release -p ld-perfbench --test compare_gate

echo "=== ld-perfbench --smoke (kernel equivalence + bench schema + regression gate) ==="
# Tolerance 1.8: every row times its before/after legs interleaved
# round-by-round, so host frequency drift cancels out of the ratio and
# the remaining run-to-run noise is leg-local jitter. The widest swing
# observed across repeated smoke runs vs the committed full baseline is
# ~1.5x (lstm-bptt); 1.8 leaves margin while still failing on any real
# kernel regression.
cargo run -q --release -p ld-perfbench -- --smoke --compare BENCH_perf.json --tolerance 1.8

echo "=== ld-loadgen --smoke (serve replay: equivalence, determinism, shed, cache, metrics) ==="
mkdir -p target
rm -f target/ci-metrics.json target/ci-metrics.json.prom
LD_METRICS=target/ci-metrics.json cargo run -q --release -p ld-serve --bin ld-loadgen -- --smoke
cargo run -q --release --bin ld-cli -- metrics-validate target/ci-metrics.json target/ci-metrics.json.prom
cargo run -q --release -p ld-serve --bin ld-loadgen -- --check BENCH_serve.json

echo "=== ld-loadgen --chaos --smoke (chaos soak: availability, isolation, determinism) ==="
mkdir -p target
cargo run -q --release -p ld-serve --bin ld-loadgen -- --chaos --smoke --out target/ci-resilience.json
cargo run -q --release -p ld-serve --bin ld-loadgen -- --check-resilience target/ci-resilience.json
cargo run -q --release -p ld-serve --bin ld-loadgen -- --check-resilience BENCH_resilience.json

echo "=== traced fig6 smoke run (span tracing + run-manifest validation) ==="
mkdir -p target
rm -f target/ci-trace.json target/ci-trace.json.folded target/ci-trace.json.manifest.json
LD_FAST=1 LD_TRACE=target/ci-trace.json cargo run -q --release -p ld-bench --bin fig6_workflow > /dev/null
cargo run -q --release --bin ld-cli -- trace-validate target/ci-trace.json target/ci-trace.json.manifest.json

echo "=== ld-lint --deny (static analysis gate, schema_version 2) ==="
mkdir -p target
cargo run -q -p ld-lint -- --deny --format json > target/lint-report.json
cargo run -q -p ld-lint -- --check-report target/lint-report.json

echo "=== ld-lint --fix --dry-run (clean tree proposes zero edits) ==="
fix_out=$(cargo run -q -p ld-lint -- --fix --dry-run 2>&1)
echo "$fix_out"
case "$fix_out" in
    *"0 fix(es) available"*) ;;
    *) echo "ci.sh: --fix --dry-run proposed edits on a supposedly clean tree" >&2; exit 1 ;;
esac

if [ -f ld-lint.baseline.json ]; then
    echo "ci.sh: warning: ld-lint.baseline.json exists again — the debt ledger was burned to zero, keep it that way" >&2
fi

echo "=== cargo clippy --workspace -- -D warnings ==="
cargo clippy --workspace -- -D warnings

echo "ci.sh: all green"
